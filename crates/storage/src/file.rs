//! Per-locality-set paged files.
//!
//! Paper §4: "a distributed file instance that is associated with one
//! locality set is implemented using one Pangea data file and one Pangea
//! meta file on each worker node. [...] a Pangea data file instance can be
//! automatically distributed across multiple disk drives [...] The Pangea
//! meta file is simply a physical disk file used to index each page's
//! location and offset."
//!
//! A [`PagedFile`] is the on-disk image of one locality set on one node:
//! pages are appended round-robin over the node's disks; the meta index
//! (page number → disk, offset, length) lives in memory and can be
//! persisted to / recovered from the meta file on disk 0.

use crate::disk::DiskManager;
use pangea_common::{ByteReader, ByteWriter, FxHashMap, PageNum, PangeaError, Result, SetId};
use parking_lot::Mutex;
use std::sync::Arc;

/// Where one page lives on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageLoc {
    /// Disk drive index.
    pub disk: u32,
    /// Byte offset within the data file on that disk.
    pub offset: u64,
    /// Page length in bytes.
    pub len: u32,
}

#[derive(Debug, Default)]
struct Meta {
    pages: FxHashMap<PageNum, PageLoc>,
    /// Next disk for round-robin placement.
    next_disk: usize,
    /// Append cursor per disk.
    cursors: Vec<u64>,
}

/// The on-disk image of one locality set on one node.
#[derive(Debug)]
pub struct PagedFile {
    set: SetId,
    disks: Arc<DiskManager>,
    meta: Mutex<Meta>,
}

impl PagedFile {
    /// Creates an empty paged file for `set`.
    pub fn create(set: SetId, disks: Arc<DiskManager>) -> Self {
        let n = disks.num_disks();
        Self {
            set,
            disks,
            meta: Mutex::new(Meta {
                pages: FxHashMap::default(),
                next_disk: 0,
                cursors: vec![0; n],
            }),
        }
    }

    fn data_name(&self, disk: usize) -> String {
        format!("set_{}_d{}.data", self.set.raw(), disk)
    }

    fn meta_name(&self) -> String {
        format!("set_{}.meta", self.set.raw())
    }

    /// The owning locality set.
    pub fn set(&self) -> SetId {
        self.set
    }

    /// Number of pages with an on-disk image.
    pub fn page_count(&self) -> usize {
        self.meta.lock().pages.len()
    }

    /// Total bytes stored on disk for this set.
    pub fn bytes_on_disk(&self) -> u64 {
        self.meta.lock().pages.values().map(|l| l.len as u64).sum()
    }

    /// True when `num` has an on-disk image.
    pub fn contains(&self, num: PageNum) -> bool {
        self.meta.lock().pages.contains_key(&num)
    }

    /// The location of `num`, if present.
    pub fn location(&self, num: PageNum) -> Option<PageLoc> {
        self.meta.lock().pages.get(&num).copied()
    }

    /// Sorted list of page numbers present on disk.
    pub fn page_numbers(&self) -> Vec<PageNum> {
        let mut v: Vec<PageNum> = self.meta.lock().pages.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Writes (or overwrites) page `num`.
    ///
    /// First write appends to the next disk round-robin; rewrites go in
    /// place and must keep the original length (pages of a locality set are
    /// fixed-size; paper §3.2).
    pub fn write_page(&self, num: PageNum, data: &[u8]) -> Result<()> {
        let loc = {
            let mut meta = self.meta.lock();
            if let Some(loc) = meta.pages.get(&num).copied() {
                if loc.len as usize != data.len() {
                    return Err(PangeaError::usage(format!(
                        "page {num} of {} rewritten with length {} != {}",
                        self.set,
                        data.len(),
                        loc.len
                    )));
                }
                loc
            } else {
                let disk = meta.next_disk;
                meta.next_disk = (meta.next_disk + 1) % self.disks.num_disks();
                let offset = meta.cursors[disk];
                meta.cursors[disk] += data.len() as u64;
                let loc = PageLoc {
                    disk: disk as u32,
                    offset,
                    len: data.len() as u32,
                };
                meta.pages.insert(num, loc);
                loc
            }
        };
        self.disks.write_at(
            loc.disk as usize,
            &self.data_name(loc.disk as usize),
            loc.offset,
            data,
        )
    }

    /// Reads page `num` into `buf` (must be exactly the page's length).
    pub fn read_page_into(&self, num: PageNum, buf: &mut [u8]) -> Result<()> {
        let loc =
            self.location(num)
                .ok_or(PangeaError::PageNotFound(pangea_common::PageId::new(
                    self.set, num,
                )))?;
        if buf.len() != loc.len as usize {
            return Err(PangeaError::usage(format!(
                "read buffer {} B for page of {} B",
                buf.len(),
                loc.len
            )));
        }
        self.disks.read_at(
            loc.disk as usize,
            &self.data_name(loc.disk as usize),
            loc.offset,
            buf,
        )
    }

    /// Reads page `num` into a fresh buffer.
    pub fn read_page(&self, num: PageNum) -> Result<Vec<u8>> {
        let loc =
            self.location(num)
                .ok_or(PangeaError::PageNotFound(pangea_common::PageId::new(
                    self.set, num,
                )))?;
        let mut buf = vec![0u8; loc.len as usize];
        self.disks.read_at(
            loc.disk as usize,
            &self.data_name(loc.disk as usize),
            loc.offset,
            &mut buf,
        )?;
        Ok(buf)
    }

    /// Persists the meta index to the meta file on disk 0 (paper §4).
    pub fn persist_meta(&self) -> Result<()> {
        let meta = self.meta.lock();
        let mut w = ByteWriter::with_capacity(16 + meta.pages.len() * 24);
        w.write_record(&(meta.pages.len() as u64));
        w.write_record(&(meta.next_disk as u64));
        for (i, &cursor) in meta.cursors.iter().enumerate() {
            let _ = i;
            w.write_record(&cursor);
        }
        let mut nums: Vec<_> = meta.pages.iter().collect();
        nums.sort_unstable_by_key(|(n, _)| **n);
        for (&num, loc) in nums {
            w.write_record(&num);
            w.write_record(&(loc.disk as u64));
            w.write_record(&loc.offset);
            w.write_record(&(loc.len as u64));
        }
        let bytes = w.into_bytes();
        // Length-prefix the whole meta blob so partial writes are detected.
        let mut framed = (bytes.len() as u64).to_le_bytes().to_vec();
        framed.extend_from_slice(&bytes);
        self.disks.write_at(0, &self.meta_name(), 0, &framed)
    }

    /// Recovers the meta index from the meta file (used after a simulated
    /// restart).
    pub fn load_meta(set: SetId, disks: Arc<DiskManager>) -> Result<Self> {
        let name = format!("set_{}.meta", set.raw());
        let total = disks.file_len(0, &name)?;
        if total < 8 {
            return Err(PangeaError::Corruption(format!(
                "meta file for {set} missing or truncated"
            )));
        }
        let mut hdr = [0u8; 8];
        disks.read_at(0, &name, 0, &mut hdr)?;
        let body_len = u64::from_le_bytes(hdr) as usize;
        if (total - 8) < body_len as u64 {
            return Err(PangeaError::Corruption(format!(
                "meta file for {set} truncated: body {body_len} B, file {total} B"
            )));
        }
        let mut body = vec![0u8; body_len];
        disks.read_at(0, &name, 8, &mut body)?;
        let mut r = ByteReader::new(&body);
        let n_pages = r.read_record::<u64>()? as usize;
        let next_disk = r.read_record::<u64>()? as usize;
        let mut cursors = Vec::with_capacity(disks.num_disks());
        for _ in 0..disks.num_disks() {
            cursors.push(r.read_record::<u64>()?);
        }
        let mut pages = FxHashMap::default();
        pages.reserve(n_pages);
        for _ in 0..n_pages {
            let num = r.read_record::<u64>()?;
            let disk = r.read_record::<u64>()? as u32;
            let offset = r.read_record::<u64>()?;
            let len = r.read_record::<u64>()? as u32;
            pages.insert(num, PageLoc { disk, offset, len });
        }
        Ok(Self {
            set,
            disks,
            meta: Mutex::new(Meta {
                pages,
                next_disk,
                cursors,
            }),
        })
    }

    /// Deletes all data and meta files for this set.
    pub fn delete(&self) -> Result<()> {
        for d in 0..self.disks.num_disks() {
            self.disks.delete(&self.data_name(d))?;
        }
        self.disks.delete(&self.meta_name())?;
        self.meta.lock().pages.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::DiskConfig;
    use std::path::PathBuf;

    fn mgr(disks: usize) -> (Arc<DiskManager>, PathBuf) {
        let dir = std::env::temp_dir().join(format!(
            "pangea-file-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        (
            Arc::new(DiskManager::new(DiskConfig::under(&dir, disks)).unwrap()),
            dir,
        )
    }

    #[test]
    fn pages_roundtrip_and_stripe_round_robin() {
        let (dm, dir) = mgr(2);
        let f = PagedFile::create(SetId(7), Arc::clone(&dm));
        for i in 0..6u64 {
            f.write_page(i, &[i as u8; 128]).unwrap();
        }
        assert_eq!(f.page_count(), 6);
        assert_eq!(f.bytes_on_disk(), 6 * 128);
        // Round-robin: pages alternate disks.
        for i in 0..6u64 {
            assert_eq!(f.location(i).unwrap().disk as u64, i % 2);
            assert_eq!(f.read_page(i).unwrap(), vec![i as u8; 128]);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rewrite_in_place_keeps_location() {
        let (dm, dir) = mgr(2);
        let f = PagedFile::create(SetId(1), dm);
        f.write_page(0, &[1u8; 64]).unwrap();
        let loc = f.location(0).unwrap();
        f.write_page(0, &[2u8; 64]).unwrap();
        assert_eq!(f.location(0).unwrap(), loc);
        assert_eq!(f.read_page(0).unwrap(), vec![2u8; 64]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rewrite_with_different_length_rejected() {
        let (dm, dir) = mgr(1);
        let f = PagedFile::create(SetId(1), dm);
        f.write_page(0, &[0u8; 64]).unwrap();
        assert!(f.write_page(0, &[0u8; 65]).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_page_is_page_not_found() {
        let (dm, dir) = mgr(1);
        let f = PagedFile::create(SetId(3), dm);
        assert!(matches!(f.read_page(9), Err(PangeaError::PageNotFound(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn meta_persists_and_recovers() {
        let (dm, dir) = mgr(2);
        let f = PagedFile::create(SetId(11), Arc::clone(&dm));
        for i in 0..5u64 {
            f.write_page(i, &[(i * 3) as u8; 96]).unwrap();
        }
        f.persist_meta().unwrap();
        drop(f);
        // Simulated restart: reload from the meta file.
        let g = PagedFile::load_meta(SetId(11), dm).unwrap();
        assert_eq!(g.page_count(), 5);
        for i in 0..5u64 {
            assert_eq!(g.read_page(i).unwrap(), vec![(i * 3) as u8; 96]);
        }
        // Appends continue correctly after recovery.
        g.write_page(5, &[9u8; 96]).unwrap();
        assert_eq!(g.read_page(5).unwrap(), vec![9u8; 96]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_meta_of_absent_set_fails() {
        let (dm, dir) = mgr(1);
        assert!(PagedFile::load_meta(SetId(99), dm).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn delete_removes_everything() {
        let (dm, dir) = mgr(2);
        let f = PagedFile::create(SetId(4), Arc::clone(&dm));
        f.write_page(0, &[1u8; 32]).unwrap();
        f.persist_meta().unwrap();
        f.delete().unwrap();
        assert_eq!(f.page_count(), 0);
        assert!(!dm.exists(0, "set_4_d0.data").unwrap());
        assert!(!dm.exists(0, "set_4.meta").unwrap());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
