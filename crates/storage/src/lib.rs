//! # pangea-storage
//!
//! Single-node storage substrate for Pangea: the shared-memory **arena**,
//! the unified **buffer pool** (paper §5), the multi-disk **disk manager**,
//! and the per-locality-set **paged file** with its meta file (paper §4).
//!
//! This crate provides *mechanism* only. The eviction *policy* lives in
//! `pangea-paging`, and the orchestration (locality sets, services, the
//! data-aware paging loop) lives in `pangea-core`.
//!
//! ## Concurrency & safety model
//!
//! The buffer pool owns one contiguous arena, standing in for the paper's
//! anonymous-`mmap` shared-memory region. Pages are non-overlapping blocks
//! placed by a [`pangea_alloc::PoolAllocator`]. Page bytes are only
//! reachable through [`pool::PageReadGuard`] / [`pool::PageWriteGuard`],
//! which hold a per-frame reader-writer lock, so the usual Rust aliasing
//! rules are enforced dynamically per page. All `unsafe` in the workspace's
//! storage layer is confined to [`arena`] and the guard constructors in
//! [`pool`], with invariants documented at each site.

pub mod arena;
pub mod disk;
pub mod file;
pub mod pool;

pub use arena::Arena;
pub use disk::{DiskConfig, DiskManager};
pub use file::{PageLoc, PagedFile};
pub use pool::{
    BufferPool, BufferPoolConfig, EvictedFrame, PagePin, PageReadGuard, PageWriteGuard, PoolStats,
};
