//! The unified buffer pool (paper §5).
//!
//! One pool per node caches *all* data — user data, job data, shuffle data,
//! hash data — in a single shared-memory arena. Pages are variable-sized
//! blocks placed by a TLSF (default) or slab allocator. Each cached page has
//! a pinned/unpinned state driven by reference counting, a dirty/clean flag,
//! and an access-recency stamp from the node's logical [`AccessClock`].
//!
//! The pool is *mechanism only*: when an allocation fails it reports
//! [`PangeaError::OutOfMemory`] and the caller (the storage node in
//! `pangea-core`) asks the paging system for victims, evicts them through
//! [`BufferPool::evict`], and retries — mirroring the paper's flow where
//! "the paging system will evict one or more unpinned pages and recycle
//! their memory".

use crate::arena::Arena;
use pangea_alloc::{allocator_by_name, PoolAllocator};
use pangea_common::{AccessClock, FxHashMap, IoStats, PageId, PangeaError, Result, SetId, Tick};
use parking_lot::{ArcRwLockReadGuard, ArcRwLockWriteGuard, Mutex, RawRwLock, RwLock};
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// Buffer pool construction parameters.
#[derive(Debug, Clone)]
pub struct BufferPoolConfig {
    /// Arena size in bytes (the paper configures 50 GB per worker; tests and
    /// benches use a few MB).
    pub capacity: usize,
    /// `"tlsf"` (default) or `"slab"` — paper §5 supports both.
    pub allocator: String,
}

impl BufferPoolConfig {
    /// A TLSF-backed pool of `capacity` bytes.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            allocator: "tlsf".to_string(),
        }
    }

    /// Switches to the slab allocator.
    pub fn with_slab_allocator(mut self) -> Self {
        self.allocator = "slab".to_string();
        self
    }
}

/// Frame bookkeeping for one cached page.
#[derive(Debug)]
pub(crate) struct Frame {
    page: PageId,
    offset: usize,
    len: usize,
    pin_count: AtomicU32,
    dirty: AtomicBool,
    last_access: AtomicU64,
    /// Guards the page's bytes in the arena.
    lock: Arc<RwLock<()>>,
}

#[derive(Debug)]
struct PoolInner {
    arena: Arena,
    alloc: Mutex<Box<dyn PoolAllocator>>,
    frames: Mutex<FxHashMap<PageId, Arc<Frame>>>,
    clock: AccessClock,
    stats: Arc<IoStats>,
    capacity: usize,
}

/// A node's unified buffer pool. Cheap to clone (shared handle).
#[derive(Debug, Clone)]
pub struct BufferPool {
    inner: Arc<PoolInner>,
}

/// Point-in-time pool statistics (feeds the Fig. 4 memory report).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Arena capacity in bytes.
    pub capacity: usize,
    /// Bytes currently allocated to frames.
    pub used: usize,
    /// Number of resident pages.
    pub resident_pages: usize,
    /// Number of resident pages with at least one pin.
    pub pinned_pages: usize,
    /// Bytes belonging to pinned pages.
    pub pinned_bytes: usize,
}

impl BufferPool {
    /// Creates a pool with the given configuration.
    pub fn new(config: BufferPoolConfig) -> Result<Self> {
        if config.capacity == 0 {
            return Err(PangeaError::config("buffer pool capacity must be > 0"));
        }
        let alloc = allocator_by_name(&config.allocator, config.capacity)?;
        Ok(Self {
            inner: Arc::new(PoolInner {
                arena: Arena::new(config.capacity),
                alloc: Mutex::new(alloc),
                frames: Mutex::new(FxHashMap::default()),
                clock: AccessClock::new(),
                stats: Arc::new(IoStats::new()),
                capacity: config.capacity,
            }),
        })
    }

    /// Arena capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// The pool's logical access clock.
    pub fn clock(&self) -> &AccessClock {
        &self.inner.clock
    }

    /// The pool's I/O counters (evictions, flushes).
    pub fn stats(&self) -> &Arc<IoStats> {
        &self.inner.stats
    }

    /// Bytes currently allocated to frames.
    pub fn used(&self) -> usize {
        self.inner.alloc.lock().used()
    }

    /// Creates a brand-new page and returns it pinned.
    ///
    /// Fresh pages start dirty (they have no on-disk image yet). Fails with
    /// [`PangeaError::OutOfMemory`] when the arena cannot fit the page; the
    /// caller is expected to evict and retry.
    pub fn create_page(&self, page: PageId, len: usize) -> Result<PagePin> {
        if len == 0 {
            return Err(PangeaError::usage("page length must be > 0"));
        }
        let mut frames = self.inner.frames.lock();
        if frames.contains_key(&page) {
            return Err(PangeaError::usage(format!("page {page} already resident")));
        }
        // Bind before matching: a guard temporary in the match scrutinee
        // would live across the arms and deadlock with the re-lock below.
        let allocated = self.inner.alloc.lock().alloc(len);
        let offset = match allocated {
            Some(o) => o,
            None => {
                let stats = self.stats_snapshot_locked(&frames);
                return Err(PangeaError::OutOfMemory {
                    requested: len,
                    capacity: self.inner.capacity,
                    pinned: stats.pinned_bytes,
                });
            }
        };
        let tick = self.inner.clock.advance();
        let frame = Arc::new(Frame {
            page,
            offset,
            len,
            pin_count: AtomicU32::new(1),
            dirty: AtomicBool::new(true),
            last_access: AtomicU64::new(tick),
            lock: Arc::new(RwLock::new(())),
        });
        frames.insert(page, Arc::clone(&frame));
        Ok(PagePin {
            frame,
            pool: Arc::clone(&self.inner),
        })
    }

    /// Creates a page and fills it from `data` (used when caching a page
    /// read from disk). The page starts *clean*.
    pub fn insert_from_disk(&self, page: PageId, data: &[u8]) -> Result<PagePin> {
        let pin = self.create_page(page, data.len())?;
        pin.write().copy_from_slice(data);
        pin.frame.dirty.store(false, Ordering::Release);
        Ok(pin)
    }

    /// Pins an already-resident page, bumping its access recency.
    pub fn pin_existing(&self, page: PageId) -> Option<PagePin> {
        let frames = self.inner.frames.lock();
        let frame = frames.get(&page)?;
        frame.pin_count.fetch_add(1, Ordering::AcqRel);
        frame
            .last_access
            .store(self.inner.clock.advance(), Ordering::Relaxed);
        Some(PagePin {
            frame: Arc::clone(frame),
            pool: Arc::clone(&self.inner),
        })
    }

    /// True when the page is resident.
    pub fn contains(&self, page: PageId) -> bool {
        self.inner.frames.lock().contains_key(&page)
    }

    /// Access metadata for one resident page: `(pin_count, dirty,
    /// last_access)`. Used by the paging system's cost model.
    pub fn page_meta(&self, page: PageId) -> Option<(u32, bool, Tick)> {
        let frames = self.inner.frames.lock();
        let f = frames.get(&page)?;
        Some((
            f.pin_count.load(Ordering::Acquire),
            f.dirty.load(Ordering::Acquire),
            f.last_access.load(Ordering::Relaxed),
        ))
    }

    /// Resident page numbers of one set, unsorted.
    pub fn resident_of_set(&self, set: SetId) -> Vec<pangea_common::PageNum> {
        self.inner
            .frames
            .lock()
            .keys()
            .filter(|p| p.set == set)
            .map(|p| p.num)
            .collect()
    }

    /// All resident pages, unsorted.
    pub fn resident_pages(&self) -> Vec<PageId> {
        self.inner.frames.lock().keys().copied().collect()
    }

    /// Removes an unpinned page from the pool, handing its bytes (and dirty
    /// state) to the caller for optional flushing. Returns `Ok(None)` when
    /// the page is not resident, `Err(InvalidUsage)` when it is pinned.
    ///
    /// The arena block is recycled when the returned [`EvictedFrame`] is
    /// dropped, after any flush completes.
    pub fn evict(&self, page: PageId) -> Result<Option<EvictedFrame>> {
        let mut frames = self.inner.frames.lock();
        let Some(frame) = frames.get(&page) else {
            return Ok(None);
        };
        if frame.pin_count.load(Ordering::Acquire) > 0 {
            return Err(PangeaError::usage(format!(
                "cannot evict pinned page {page}"
            )));
        }
        let frame = frames.remove(&page).expect("checked above");
        self.inner.stats.record_eviction();
        Ok(Some(EvictedFrame {
            frame,
            pool: Arc::clone(&self.inner),
        }))
    }

    /// Discards an unpinned page without offering its bytes back (used for
    /// lifetime-ended transient data, which is never flushed).
    pub fn drop_page(&self, page: PageId) -> Result<bool> {
        Ok(self.evict(page)?.is_some())
    }

    fn stats_snapshot_locked(&self, frames: &FxHashMap<PageId, Arc<Frame>>) -> PoolStats {
        let mut pinned_pages = 0;
        let mut pinned_bytes = 0;
        for f in frames.values() {
            if f.pin_count.load(Ordering::Acquire) > 0 {
                pinned_pages += 1;
                pinned_bytes += f.len;
            }
        }
        PoolStats {
            capacity: self.inner.capacity,
            used: self.inner.alloc.lock().used(),
            resident_pages: frames.len(),
            pinned_pages,
            pinned_bytes,
        }
    }

    /// Point-in-time pool statistics.
    pub fn pool_stats(&self) -> PoolStats {
        let frames = self.inner.frames.lock();
        self.stats_snapshot_locked(&frames)
    }
}

/// RAII pin on a resident page. While any pin exists the page cannot be
/// evicted. Cloning a pin increments the pin count.
#[derive(Debug)]
pub struct PagePin {
    frame: Arc<Frame>,
    pool: Arc<PoolInner>,
}

impl PagePin {
    /// The pinned page's id.
    pub fn page_id(&self) -> PageId {
        self.frame.page
    }

    /// The page length in bytes.
    pub fn len(&self) -> usize {
        self.frame.len
    }

    /// Always false; pages are non-empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// True when the page has unflushed modifications.
    pub fn is_dirty(&self) -> bool {
        self.frame.dirty.load(Ordering::Acquire)
    }

    /// Marks the page clean (after the caller flushed it).
    pub fn mark_clean(&self) {
        self.frame.dirty.store(false, Ordering::Release);
    }

    /// Marks the page dirty without writing through a guard.
    pub fn mark_dirty(&self) {
        self.frame.dirty.store(true, Ordering::Release);
    }

    /// Last access tick of this page.
    pub fn last_access(&self) -> Tick {
        self.frame.last_access.load(Ordering::Relaxed)
    }

    /// Acquires shared read access to the page bytes, bumping recency.
    pub fn read(&self) -> PageReadGuard {
        self.frame
            .last_access
            .store(self.pool.clock.advance(), Ordering::Relaxed);
        let guard = RwLock::read_arc(&self.frame.lock);
        // SAFETY: the frame's arena block [offset, offset+len) is exclusive
        // to this frame (allocator non-overlap), the arena outlives the
        // guard (guard holds `pool`, which owns the arena), and mutation is
        // excluded by the held read lock.
        let slice = unsafe { self.pool.arena.slice(self.frame.offset, self.frame.len) };
        PageReadGuard {
            _lock: guard,
            _pool: Arc::clone(&self.pool),
            ptr: slice.as_ptr(),
            len: self.frame.len,
        }
    }

    /// Acquires exclusive write access to the page bytes, bumping recency
    /// and marking the page dirty.
    pub fn write(&self) -> PageWriteGuard {
        self.frame
            .last_access
            .store(self.pool.clock.advance(), Ordering::Relaxed);
        self.frame.dirty.store(true, Ordering::Release);
        let guard = RwLock::write_arc(&self.frame.lock);
        // SAFETY: as in `read`, plus exclusivity from the held write lock.
        let slice = unsafe { self.pool.arena.slice_mut(self.frame.offset, self.frame.len) };
        PageWriteGuard {
            _lock: guard,
            _pool: Arc::clone(&self.pool),
            ptr: slice.as_mut_ptr(),
            len: self.frame.len,
        }
    }
}

impl Clone for PagePin {
    fn clone(&self) -> Self {
        self.frame.pin_count.fetch_add(1, Ordering::AcqRel);
        Self {
            frame: Arc::clone(&self.frame),
            pool: Arc::clone(&self.pool),
        }
    }
}

impl Drop for PagePin {
    fn drop(&mut self) {
        self.frame.pin_count.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Shared read access to a page's bytes.
pub struct PageReadGuard {
    _lock: ArcRwLockReadGuard<RawRwLock, ()>,
    _pool: Arc<PoolInner>,
    ptr: *const u8,
    len: usize,
}

impl Deref for PageReadGuard {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        // SAFETY: constructed from a valid arena slice; read lock held.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

/// Exclusive write access to a page's bytes.
pub struct PageWriteGuard {
    _lock: ArcRwLockWriteGuard<RawRwLock, ()>,
    _pool: Arc<PoolInner>,
    ptr: *mut u8,
    len: usize,
}

impl Deref for PageWriteGuard {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        // SAFETY: constructed from a valid arena slice; write lock held.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

impl DerefMut for PageWriteGuard {
    fn deref_mut(&mut self) -> &mut [u8] {
        // SAFETY: constructed from a valid arena slice; write lock held.
        unsafe { std::slice::from_raw_parts_mut(self.ptr, self.len) }
    }
}

/// A page removed from the pool, alive until its (optional) flush is done.
/// Dropping it recycles the arena block.
pub struct EvictedFrame {
    frame: Arc<Frame>,
    pool: Arc<PoolInner>,
}

impl EvictedFrame {
    /// The evicted page's id.
    pub fn page_id(&self) -> PageId {
        self.frame.page
    }

    /// True when the page holds unflushed modifications and must be written
    /// back before its memory is reused.
    pub fn is_dirty(&self) -> bool {
        self.frame.dirty.load(Ordering::Acquire)
    }

    /// The evicted page's bytes (for flushing).
    pub fn bytes(&self) -> PageReadGuard {
        let guard = RwLock::read_arc(&self.frame.lock);
        // SAFETY: the block is still reserved in the allocator until this
        // EvictedFrame drops; no pins exist (checked at eviction).
        let slice = unsafe { self.pool.arena.slice(self.frame.offset, self.frame.len) };
        PageReadGuard {
            _lock: guard,
            _pool: Arc::clone(&self.pool),
            ptr: slice.as_ptr(),
            len: self.frame.len,
        }
    }

    /// Page length in bytes.
    pub fn len(&self) -> usize {
        self.frame.len
    }

    /// Always false; pages are non-empty.
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl Drop for EvictedFrame {
    fn drop(&mut self) {
        self.pool.alloc.lock().free(self.frame.offset);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(cap: usize) -> BufferPool {
        BufferPool::new(BufferPoolConfig::new(cap)).unwrap()
    }

    fn pid(set: u64, num: u64) -> PageId {
        PageId::new(SetId(set), num)
    }

    #[test]
    fn create_write_read_roundtrip() {
        let p = pool(1 << 16);
        let pin = p.create_page(pid(1, 0), 4096).unwrap();
        assert!(pin.is_dirty(), "fresh pages start dirty");
        pin.write()[..5].copy_from_slice(b"hello");
        assert_eq!(&pin.read()[..5], b"hello");
        assert_eq!(pin.len(), 4096);
        assert!(p.contains(pid(1, 0)));
    }

    #[test]
    fn duplicate_create_rejected() {
        let p = pool(1 << 16);
        let _a = p.create_page(pid(1, 0), 128).unwrap();
        assert!(matches!(
            p.create_page(pid(1, 0), 128),
            Err(PangeaError::InvalidUsage(_))
        ));
    }

    #[test]
    fn pinned_pages_cannot_be_evicted() {
        let p = pool(1 << 16);
        let pin = p.create_page(pid(1, 0), 128).unwrap();
        assert!(p.evict(pid(1, 0)).is_err());
        drop(pin);
        let ev = p.evict(pid(1, 0)).unwrap().expect("now evictable");
        assert!(ev.is_dirty());
        drop(ev);
        assert_eq!(p.used(), 0, "arena block recycled after eviction");
    }

    #[test]
    fn clone_pin_keeps_page_pinned() {
        let p = pool(1 << 16);
        let pin = p.create_page(pid(1, 0), 128).unwrap();
        let pin2 = pin.clone();
        drop(pin);
        assert!(p.evict(pid(1, 0)).is_err(), "clone still pins");
        drop(pin2);
        assert!(p.evict(pid(1, 0)).unwrap().is_some());
    }

    #[test]
    fn oom_when_all_pages_pinned() {
        let p = pool(8192);
        let _a = p.create_page(pid(1, 0), 4096).unwrap();
        let _b = p.create_page(pid(1, 1), 4096).unwrap();
        match p.create_page(pid(1, 2), 4096) {
            Err(PangeaError::OutOfMemory {
                requested, pinned, ..
            }) => {
                assert_eq!(requested, 4096);
                assert_eq!(pinned, 8192);
            }
            other => panic!("expected OOM, got {other:?}"),
        }
    }

    #[test]
    fn evicting_makes_room_again() {
        let p = pool(8192);
        let a = p.create_page(pid(1, 0), 4096).unwrap();
        let _b = p.create_page(pid(1, 1), 4096).unwrap();
        drop(a);
        let ev = p.evict(pid(1, 0)).unwrap().unwrap();
        drop(ev); // recycles
        assert!(p.create_page(pid(1, 2), 4096).is_ok());
    }

    #[test]
    fn insert_from_disk_is_clean_and_correct() {
        let p = pool(1 << 16);
        let data: Vec<u8> = (0..=255u8).cycle().take(1024).collect();
        let pin = p.insert_from_disk(pid(2, 0), &data).unwrap();
        assert!(!pin.is_dirty(), "disk-loaded pages start clean");
        assert_eq!(&*pin.read(), &data[..]);
    }

    #[test]
    fn evicted_frame_exposes_bytes_for_flush() {
        let p = pool(1 << 16);
        let pin = p.create_page(pid(1, 0), 64).unwrap();
        pin.write().copy_from_slice(&[7u8; 64]);
        drop(pin);
        let ev = p.evict(pid(1, 0)).unwrap().unwrap();
        assert_eq!(&*ev.bytes(), &[7u8; 64]);
        assert_eq!(ev.page_id(), pid(1, 0));
        assert_eq!(ev.len(), 64);
    }

    #[test]
    fn recency_advances_on_access() {
        let p = pool(1 << 16);
        let a = p.create_page(pid(1, 0), 64).unwrap();
        let t0 = a.last_access();
        let _ = a.read();
        let t1 = a.last_access();
        assert!(t1 > t0);
        let _ = a.write();
        assert!(a.last_access() > t1);
    }

    #[test]
    fn pin_existing_bumps_recency_and_counts() {
        let p = pool(1 << 16);
        let a = p.create_page(pid(1, 0), 64).unwrap();
        let t0 = a.last_access();
        drop(a);
        let b = p.pin_existing(pid(1, 0)).unwrap();
        assert!(b.last_access() > t0);
        assert!(p.pin_existing(pid(9, 9)).is_none());
    }

    #[test]
    fn page_meta_reports_state() {
        let p = pool(1 << 16);
        let a = p.create_page(pid(1, 0), 64).unwrap();
        let (pins, dirty, _) = p.page_meta(pid(1, 0)).unwrap();
        assert_eq!(pins, 1);
        assert!(dirty);
        a.mark_clean();
        drop(a);
        let (pins, dirty, _) = p.page_meta(pid(1, 0)).unwrap();
        assert_eq!(pins, 0);
        assert!(!dirty);
    }

    #[test]
    fn resident_listing_per_set() {
        let p = pool(1 << 16);
        let _a = p.create_page(pid(1, 0), 64).unwrap();
        let _b = p.create_page(pid(1, 3), 64).unwrap();
        let _c = p.create_page(pid(2, 0), 64).unwrap();
        let mut s1 = p.resident_of_set(SetId(1));
        s1.sort_unstable();
        assert_eq!(s1, vec![0, 3]);
        assert_eq!(p.resident_pages().len(), 3);
    }

    #[test]
    fn pool_stats_track_pins() {
        let p = pool(1 << 16);
        let a = p.create_page(pid(1, 0), 4096).unwrap();
        let b = p.create_page(pid(1, 1), 4096).unwrap();
        drop(b);
        let s = p.pool_stats();
        assert_eq!(s.resident_pages, 2);
        assert_eq!(s.pinned_pages, 1);
        assert_eq!(s.pinned_bytes, 4096);
        assert!(s.used >= 8192);
        drop(a);
    }

    #[test]
    fn concurrent_writers_to_distinct_pages() {
        let p = pool(1 << 20);
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let p = p.clone();
            handles.push(std::thread::spawn(move || {
                let pin = p.create_page(pid(5, t), 4096).unwrap();
                pin.write().fill(t as u8);
                // Re-read and verify.
                assert!(pin.read().iter().all(|&b| b == t as u8));
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(p.resident_pages().len(), 8);
    }

    #[test]
    fn concurrent_readers_share_a_page() {
        let p = pool(1 << 16);
        let pin = p.create_page(pid(1, 0), 1024).unwrap();
        pin.write().fill(0xAB);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let pin = pin.clone();
            handles.push(std::thread::spawn(move || {
                let g = pin.read();
                assert!(g.iter().all(|&b| b == 0xAB));
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn zero_capacity_rejected() {
        assert!(BufferPool::new(BufferPoolConfig::new(0)).is_err());
    }

    #[test]
    fn slab_pool_also_works() {
        let p = BufferPool::new(BufferPoolConfig::new(1 << 16).with_slab_allocator()).unwrap();
        let pin = p.create_page(pid(1, 0), 100).unwrap();
        pin.write().fill(3);
        assert!(pin.read().iter().all(|&b| b == 3));
    }
}
