//! The multi-disk disk manager.
//!
//! Each worker node owns a set of disk drives (the paper's experiments use
//! one or two SSD instance stores). A disk is a directory plus a bandwidth
//! throttle; the throttle stands in for the physical device's transfer rate
//! so bandwidth-bound shapes reproduce on any host (see DESIGN.md §2).
//!
//! The paper's Pangea uses direct I/O to bypass the OS buffer cache (§4).
//! We reproduce the *effect* (every read/write pays the device cost, no
//! double caching) by charging the throttle for every byte moved, whether
//! or not the host page cache would have absorbed it.

use pangea_common::{IoStats, PangeaError, Result, Throttle};
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Configuration for a node's disks.
#[derive(Debug, Clone)]
pub struct DiskConfig {
    /// One directory per simulated disk drive.
    pub dirs: Vec<PathBuf>,
    /// Per-disk bandwidth in bytes/second; `None` disables throttling
    /// (unit tests). The paper's r4.2xlarge SSDs sustain a few hundred MB/s.
    pub bytes_per_sec: Option<u64>,
}

impl DiskConfig {
    /// A config with `n` disk subdirectories under `root`, unthrottled.
    pub fn under(root: &Path, n: usize) -> Self {
        Self {
            dirs: (0..n).map(|i| root.join(format!("disk{i}"))).collect(),
            bytes_per_sec: None,
        }
    }

    /// Sets the per-disk bandwidth.
    pub fn with_bandwidth(mut self, bytes_per_sec: u64) -> Self {
        self.bytes_per_sec = Some(bytes_per_sec);
        self
    }
}

struct DiskDrive {
    dir: PathBuf,
    throttle: Throttle,
    /// Open-file cache so repeated page I/O does not re-open files.
    handles: Mutex<pangea_common::FxHashMap<String, Arc<File>>>,
}

impl std::fmt::Debug for DiskDrive {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiskDrive").field("dir", &self.dir).finish()
    }
}

impl DiskDrive {
    fn handle(&self, name: &str) -> Result<Arc<File>> {
        let mut handles = self.handles.lock();
        if let Some(f) = handles.get(name) {
            return Ok(Arc::clone(f));
        }
        let path = self.dir.join(name);
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let file = Arc::new(file);
        handles.insert(name.to_string(), Arc::clone(&file));
        Ok(file)
    }

    fn drop_handle(&self, name: &str) {
        self.handles.lock().remove(name);
    }
}

/// Manages a node's simulated disk drives.
#[derive(Debug)]
pub struct DiskManager {
    drives: Vec<DiskDrive>,
    stats: Arc<IoStats>,
}

impl DiskManager {
    /// Creates the manager, creating each disk directory if needed.
    pub fn new(config: DiskConfig) -> Result<Self> {
        if config.dirs.is_empty() {
            return Err(PangeaError::config("disk manager needs at least one disk"));
        }
        let mut drives = Vec::with_capacity(config.dirs.len());
        for dir in &config.dirs {
            std::fs::create_dir_all(dir)?;
            drives.push(DiskDrive {
                dir: dir.clone(),
                throttle: match config.bytes_per_sec {
                    Some(r) => Throttle::bytes_per_sec(r),
                    None => Throttle::unlimited(),
                },
                handles: Mutex::new(pangea_common::FxHashMap::default()),
            });
        }
        Ok(Self {
            drives,
            stats: Arc::new(IoStats::new()),
        })
    }

    /// Number of disk drives.
    pub fn num_disks(&self) -> usize {
        self.drives.len()
    }

    /// The manager's I/O counters.
    pub fn stats(&self) -> &Arc<IoStats> {
        &self.stats
    }

    fn drive(&self, disk: usize) -> Result<&DiskDrive> {
        self.drives
            .get(disk)
            .ok_or_else(|| PangeaError::config(format!("disk index {disk} out of range")))
    }

    /// Writes `data` to `name` on `disk` at byte `offset`.
    pub fn write_at(&self, disk: usize, name: &str, offset: u64, data: &[u8]) -> Result<()> {
        let drive = self.drive(disk)?;
        drive.throttle.consume(data.len());
        drive.handle(name)?.write_all_at(data, offset)?;
        self.stats.record_disk_write(data.len());
        Ok(())
    }

    /// Reads exactly `buf.len()` bytes from `name` on `disk` at `offset`.
    pub fn read_at(&self, disk: usize, name: &str, offset: u64, buf: &mut [u8]) -> Result<()> {
        let drive = self.drive(disk)?;
        drive.throttle.consume(buf.len());
        drive.handle(name)?.read_exact_at(buf, offset)?;
        self.stats.record_disk_read(buf.len());
        Ok(())
    }

    /// Current length of `name` on `disk` (0 when absent).
    pub fn file_len(&self, disk: usize, name: &str) -> Result<u64> {
        let drive = self.drive(disk)?;
        let path = drive.dir.join(name);
        match std::fs::metadata(&path) {
            Ok(m) => Ok(m.len()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(0),
            Err(e) => Err(e.into()),
        }
    }

    /// True when `name` exists on `disk`.
    pub fn exists(&self, disk: usize, name: &str) -> Result<bool> {
        let drive = self.drive(disk)?;
        Ok(drive.dir.join(name).exists())
    }

    /// Deletes `name` on every disk where it exists.
    pub fn delete(&self, name: &str) -> Result<()> {
        for drive in &self.drives {
            drive.drop_handle(name);
            let path = drive.dir.join(name);
            match std::fs::remove_file(&path) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(e.into()),
            }
        }
        Ok(())
    }

    /// Flushes the open-handle cache (used by failure-injection tests to
    /// simulate a node process dying).
    pub fn drop_all_handles(&self) {
        for drive in &self.drives {
            drive.handles.lock().clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp() -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "pangea-disk-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn write_read_roundtrip_across_disks() {
        let root = tmp();
        let dm = DiskManager::new(DiskConfig::under(&root, 2)).unwrap();
        dm.write_at(0, "a.data", 0, b"hello").unwrap();
        dm.write_at(1, "a.data", 10, b"world").unwrap();
        let mut buf = [0u8; 5];
        dm.read_at(0, "a.data", 0, &mut buf).unwrap();
        assert_eq!(&buf, b"hello");
        dm.read_at(1, "a.data", 10, &mut buf).unwrap();
        assert_eq!(&buf, b"world");
        assert_eq!(dm.file_len(1, "a.data").unwrap(), 15);
        let snap = dm.stats().snapshot();
        assert_eq!(snap.disk_writes, 2);
        assert_eq!(snap.disk_reads, 2);
        assert_eq!(snap.disk_write_bytes, 10);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn delete_removes_from_all_disks() {
        let root = tmp();
        let dm = DiskManager::new(DiskConfig::under(&root, 3)).unwrap();
        dm.write_at(0, "x", 0, b"1").unwrap();
        dm.write_at(2, "x", 0, b"2").unwrap();
        assert!(dm.exists(0, "x").unwrap());
        dm.delete("x").unwrap();
        for d in 0..3 {
            assert!(!dm.exists(d, "x").unwrap());
        }
        assert_eq!(dm.file_len(0, "x").unwrap(), 0);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn no_disks_is_a_config_error() {
        let cfg = DiskConfig {
            dirs: vec![],
            bytes_per_sec: None,
        };
        assert!(matches!(
            DiskManager::new(cfg),
            Err(PangeaError::InvalidConfig(_))
        ));
    }

    #[test]
    fn out_of_range_disk_is_rejected() {
        let root = tmp();
        let dm = DiskManager::new(DiskConfig::under(&root, 1)).unwrap();
        assert!(dm.write_at(5, "x", 0, b"y").is_err());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn reading_missing_range_errors() {
        let root = tmp();
        let dm = DiskManager::new(DiskConfig::under(&root, 1)).unwrap();
        dm.write_at(0, "short", 0, b"ab").unwrap();
        let mut buf = [0u8; 10];
        assert!(dm.read_at(0, "short", 0, &mut buf).is_err());
        let _ = std::fs::remove_dir_all(&root);
    }
}
