//! Fixture-based rule tests: each rule runs over a known-bad file
//! (exact `file:line` assertions — the fixtures document their own
//! line numbers) and a known-good file (zero diagnostics).

use pangea_lint::{lint_file, lint_project, LintedFile, OpcodeCtx};

/// Diagnostics for one rule only, as `(line, ..)` pairs.
fn lines_for(f: &LintedFile, rule: &str) -> Vec<u32> {
    lint_file(f)
        .into_iter()
        .filter(|d| d.rule == rule)
        .map(|d| d.line)
        .collect()
}

fn fixture(rel: &str, src: &str) -> LintedFile {
    LintedFile::parse(rel, src)
}

// ---------------------------------------------------------------- guard

#[test]
fn guard_across_io_flags_all_bad_shapes() {
    let f = fixture(
        "crates/example/src/lib.rs",
        include_str!("../fixtures/guard_across_io_bad.rs"),
    );
    assert_eq!(
        lines_for(&f, "guard-across-io"),
        vec![6, 12, 18, 27],
        "named guard, if-let scrutinee (the PR 3 shape), match scrutinee, \
         unwrap-wrapped guard"
    );
}

#[test]
fn guard_across_io_accepts_disciplined_code() {
    let f = fixture(
        "crates/example/src/lib.rs",
        include_str!("../fixtures/guard_across_io_good.rs"),
    );
    assert_eq!(lines_for(&f, "guard-across-io"), Vec::<u32>::new());
}

/// The acceptance scenario: a scratch diff reintroducing PR 3's exact
/// bug — an `if let` over a `.lock()` chain with a client call in the
/// body — must be caught.
#[test]
fn pr3_style_scratch_diff_is_caught() {
    let scratch = r#"
impl Recovery {
    fn on_repair(&self, node: u32) {
        if let Some(hook) = self.recovery_hook.lock().as_ref() {
            self.client.call(&hook.encode(node));
        }
    }
}
"#;
    let f = fixture("crates/coord/src/remote.rs", scratch);
    assert_eq!(lines_for(&f, "guard-across-io"), vec![4]);
}

#[test]
fn guard_rule_skips_out_of_scope_paths() {
    let bad = include_str!("../fixtures/guard_across_io_bad.rs");
    for rel in ["crates/shims/parking_lot/src/lib.rs", "tests/e2e.rs"] {
        let f = fixture(rel, bad);
        assert_eq!(lines_for(&f, "guard-across-io"), Vec::<u32>::new(), "{rel}");
    }
}

// ------------------------------------------------------------- checkout

#[test]
fn checkout_pairing_flags_all_leak_shapes() {
    let f = fixture(
        "crates/example/src/lib.rs",
        include_str!("../fixtures/checkout_pairing_bad.rs"),
    );
    assert_eq!(
        lines_for(&f, "checkout-pairing"),
        vec![6, 13, 22, 27],
        "`?` leak, early-return leak, never consumed, not let-bound"
    );
}

#[test]
fn checkout_pairing_accepts_paired_code() {
    let f = fixture(
        "crates/example/src/lib.rs",
        include_str!("../fixtures/checkout_pairing_good.rs"),
    );
    assert_eq!(lines_for(&f, "checkout-pairing"), Vec::<u32>::new());
}

// --------------------------------------------------------- metric names

#[test]
fn metric_name_registry_flags_literals_and_formats() {
    let f = fixture(
        "crates/example/src/lib.rs",
        include_str!("../fixtures/metric_names_bad.rs"),
    );
    assert_eq!(
        lines_for(&f, "metric-name-registry"),
        vec![5, 6, 7],
        "counter literal, gauge literal, histogram &format!"
    );
}

#[test]
fn metric_name_registry_accepts_names_constants() {
    let f = fixture(
        "crates/example/src/lib.rs",
        include_str!("../fixtures/metric_names_good.rs"),
    );
    assert_eq!(lines_for(&f, "metric-name-registry"), Vec::<u32>::new());
}

// ------------------------------------------------------------ no-unwrap

#[test]
fn no_unwrap_flags_daemon_paths_only() {
    let bad = include_str!("../fixtures/no_unwrap_bad.rs");
    let daemon = fixture("crates/net/src/server.rs", bad);
    assert_eq!(
        lines_for(&daemon, "no-unwrap-in-daemon"),
        vec![6, 7],
        "unwrap and expect in a request path"
    );
    // The same code outside the daemon scope is not this rule's business.
    let elsewhere = fixture("crates/query/src/planner.rs", bad);
    assert_eq!(
        lines_for(&elsewhere, "no-unwrap-in-daemon"),
        Vec::<u32>::new()
    );
}

#[test]
fn no_unwrap_accepts_typed_errors_tests_and_allows() {
    let f = fixture(
        "crates/coord/src/daemon.rs",
        include_str!("../fixtures/no_unwrap_good.rs"),
    );
    assert_eq!(lines_for(&f, "no-unwrap-in-daemon"), Vec::<u32>::new());
}

// ------------------------------------------------------ opcode coverage

#[test]
fn opcode_coverage_joins_handlers_roundtrips_and_docs() {
    let proto = fixture(
        "crates/net/src/proto.rs",
        include_str!("../fixtures/opcode/proto.rs"),
    );
    let server = fixture(
        "crates/net/src/server.rs",
        include_str!("../fixtures/opcode/server.rs"),
    );
    let ctx = OpcodeCtx {
        proto: &proto,
        handlers: vec![&server],
        roundtrips: vec![&proto],
        design: "The Ping probe returns Ok.",
    };
    let mut out = Vec::new();
    pangea_lint::rules::opcode_coverage(&ctx, &mut out);
    let got: Vec<(u32, String)> = out.iter().map(|d| (d.line, d.msg.clone())).collect();
    assert_eq!(
        got,
        vec![
            (
                7,
                "Request::Orphan is missing a handler arm, a wire roundtrip test, \
                 a DESIGN.md mention"
                    .to_string()
            ),
            (
                14,
                "Response::Lost is missing a handler arm, a wire roundtrip test, \
                 a DESIGN.md mention"
                    .to_string()
            ),
        ],
        "Ping/Ok are covered, Waived is allow-annotated, Orphan/Lost fire"
    );
}

// ---------------------------------------------------------- whole-tree

/// The real tree must lint clean through the same entry point CI uses —
/// this is the test that keeps the repo's own invariants enforced even
/// if someone breaks the CI wiring.
#[test]
fn the_workspace_lints_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut files = Vec::new();
    collect(&root, &root, &mut files);
    assert!(files.len() > 100, "walker should see the whole workspace");
    let design = std::fs::read_to_string(root.join("DESIGN.md")).unwrap_or_default();
    let diags = lint_project(&files, &design);
    assert!(
        diags.is_empty(),
        "workspace has lint diagnostics:\n{}",
        diags
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

fn collect(root: &std::path::Path, dir: &std::path::Path, out: &mut Vec<LintedFile>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy().into_owned();
        if path.is_dir() {
            if name == "target" || name == ".git" || path.ends_with("crates/lint/fixtures") {
                continue;
            }
            collect(root, &path, out);
        } else if name.ends_with(".rs") {
            let Ok(src) = std::fs::read_to_string(&path) else {
                continue;
            };
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(LintedFile::parse(&rel, &src));
        }
    }
}
