// Known-good fixture for the guard-across-io rule: every shape here is
// deliberate and must produce zero diagnostics.

impl Node {
    fn drops_before_io(&self) {
        let g = self.state.lock();
        let payload = g.payload.clone();
        drop(g);
        self.client.call(&payload);
    }

    fn io_through_the_guard_itself(&self) {
        let mut w = self.writer.lock();
        write_frame(&mut *w, b"frame");
    }

    fn copies_value_out(&self) {
        let cursor = *self.cursor.lock();
        self.client.call(cursor);
    }

    fn guard_scoped_in_block(&self) {
        {
            let g = self.state.lock();
            g.tick();
        }
        self.client.call(b"after");
    }

    fn benign_methods_on_io_names(&self) {
        let g = self.state.lock();
        let n = self.client.clone();
        let _ = n.is_some();
        drop(g);
    }

    fn annotated_hold(&self) {
        // Held across IO on purpose: this lock serializes the handshake. lint:allow(guard-across-io)
        let g = self.state.lock();
        self.client.call(&g.payload);
    }
}
