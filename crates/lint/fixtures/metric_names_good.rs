// Known-good fixture for the metric-name-registry rule: constants and
// helpers from pangea_obs::names, plus test-module literals (which the
// rule skips — tests cross-check spellings on purpose).

use pangea_obs::names;

fn register(reg: &Registry, node: &str) {
    reg.counter(names::IO_DISK_READS).inc();
    reg.gauge(names::NET_CONNS_OPEN).set(1);
    reg.histogram(&names::rpc_latency_ns("ping")).observe(5);
    reg.gauge(&names::fleet(node, names::FLEET_RPC_PER_SEC)).set(2);
}

#[cfg(test)]
mod tests {
    #[test]
    fn literals_fine_in_tests() {
        let reg = Registry::default();
        reg.counter("io.disk_reads").inc();
    }
}
