// Known-good fixture for the checkout-pairing rule: zero diagnostics.

impl Pool {
    fn pairs_on_all_paths(&self, addr: &str) -> Result<u64> {
        let conn = self.checkout_peer(addr)?;
        match conn.hash_list("set") {
            Ok(h) => {
                self.checkin_peer(addr, conn);
                Ok(h)
            }
            Err(e) => {
                self.discard_peer(conn);
                Err(e)
            }
        }
    }

    fn discards_before_fallible_exit(&self, addr: &str) -> Result<()> {
        let conn = self.checkout_peer(addr)?;
        self.discard_peer(conn);
        self.audit()?;
        Ok(())
    }
}
