// Known-bad/known-good mix for the opcode-coverage rule: `Ping` is
// fully covered, `Orphan` is missing everything, `Waived` carries an
// allow. Line numbers are asserted exactly by tests/rules.rs.

pub enum Request {
    Ping,
    Orphan { payload: Vec<u8> },
    // Decoder-internal pseudo-opcode, never dispatched. lint:allow(opcode-coverage)
    Waived,
}

pub enum Response {
    Ok,
    Lost(u32),
}

#[cfg(test)]
mod tests {
    #[test]
    fn ping_roundtrips() {
        roundtrip(Request::Ping);
        roundtrip_resp(Response::Ok);
    }
}
