// Handler file for the opcode-coverage fixture tree: dispatches Ping
// and produces Ok, never touches Orphan or Lost.

fn dispatch(req: Request) -> Response {
    match req {
        Request::Ping => Response::Ok,
        other => Response::Ok,
    }
}
