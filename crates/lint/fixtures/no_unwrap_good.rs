// Known-good fixture for the no-unwrap-in-daemon rule: typed errors,
// non-panicking adapters, test-module unwraps, and one justified allow.

fn handle(req: Request) -> Result<Response> {
    let body = req.body.ok_or(PangeaError::Malformed)?;
    let size = body.len().min(u32::MAX as usize);
    // Startup-only invariant: the listener was bound two lines up. lint:allow(no-unwrap-in-daemon)
    let addr = listener.local_addr().unwrap();
    let fallback = req.hint.unwrap_or_default();
    Ok(Response::ok(size, addr, fallback))
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        handle(Request::default()).unwrap();
    }
}
