// Known-bad fixture for the guard-across-io rule. Line numbers are
// asserted exactly by tests/rules.rs — keep edits in sync.

impl Node {
    fn named_guard_across_io(&self) {
        let g = self.state.lock();
        self.client.call(&g.payload);
        drop(g);
    }

    fn scrutinee_guard_across_io(&self) {
        if let Some(hook) = self.hook.lock().as_ref() {
            self.client.call(hook);
        }
    }

    fn match_guard_across_io(&self) {
        match self.peers.read().first() {
            Some(peer) => {
                write_frame(&mut self.out, peer);
            }
            None => {}
        }
    }

    fn io_base_method_across_io(&self) {
        let table = self.routes.lock().unwrap();
        self.transport.send_bytes(&table[0]);
    }
}
