// Known-bad fixture for the metric-name-registry rule. Line numbers
// are asserted exactly by tests/rules.rs — keep edits in sync.

fn register(reg: &Registry, node: &str) {
    reg.counter("io.disk_reads").inc();
    reg.gauge("net.conns_open").set(1);
    reg.histogram(&format!("rpc.latency_ns.{node}")).observe(5);
}
