// Known-bad fixture for the checkout-pairing rule. Line numbers are
// asserted exactly by tests/rules.rs — keep edits in sync.

impl Pool {
    fn leaks_on_question_mark(&self, addr: &str) -> Result<()> {
        let conn = self.checkout_peer(addr)?;
        let hashes = conn.hash_list("set")?;
        self.checkin_peer(addr, conn);
        Ok(hashes)
    }

    fn leaks_on_early_return(&self, addr: &str) -> Result<()> {
        let conn = self.checkout_peer(addr)?;
        if self.closed() {
            return Ok(());
        }
        self.checkin_peer(addr, conn);
        Ok(())
    }

    fn never_consumed(&self, addr: &str) {
        let conn = self.checkout_peer(addr);
        conn.set_trace(None);
    }

    fn not_bound(&self, addr: &str) {
        self.checkout_peer(addr);
    }
}
