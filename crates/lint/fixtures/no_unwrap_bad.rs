// Known-bad fixture for the no-unwrap-in-daemon rule (linted under a
// daemon rel-path). Line numbers are asserted exactly by
// tests/rules.rs — keep edits in sync.

fn handle(req: Request) -> Response {
    let body = req.body.unwrap();
    let size = body.len().try_into().expect("fits in u32");
    Response::ok(size)
}
