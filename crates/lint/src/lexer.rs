//! A lightweight Rust lexer: just enough token structure for the rule
//! engine — identifiers, string literals, lifetimes, and single-char
//! punctuation, each tagged with its source line.
//!
//! This is deliberately *not* a parser. The rules work on token
//! patterns plus brace/paren matching, which keeps the pass
//! zero-dependency (no `syn`; the build environment is offline) and
//! fast. The lexer's only hard obligations are the ones that would
//! otherwise corrupt every downstream rule: comments (line, nested
//! block), string literals (escaped, raw, byte), and the char-literal
//! vs. lifetime ambiguity must all be consumed correctly so a `"...{"`
//! inside a string can never unbalance the brace tracker.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier, keyword, or number ([A-Za-z0-9_]+).
    Ident(String),
    /// A string literal's raw (unescaped) contents.
    Str(String),
    /// A lifetime (`'a`, `'static`, `'_`).
    Lifetime,
    /// Any other single character.
    Punct(char),
}

/// A token plus the 1-based line it starts on.
#[derive(Debug, Clone)]
pub struct Tok {
    pub line: u32,
    pub kind: TokKind,
}

impl Tok {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// True if this token is the punctuation `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// Lexer output: the token stream plus every `lint:allow(...)`
/// directive found in comments, as `(line, rule)` pairs.
#[derive(Debug, Default)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub allows: Vec<(u32, String)>,
}

fn collect_allows(comment: &str, line: u32, allows: &mut Vec<(u32, String)>) {
    let mut rest = comment;
    while let Some(pos) = rest.find("lint:allow(") {
        rest = &rest[pos + "lint:allow(".len()..];
        let Some(close) = rest.find(')') else { return };
        for rule in rest[..close].split(',') {
            let rule = rule.trim();
            if !rule.is_empty() {
                allows.push((line, rule.to_string()));
            }
        }
        rest = &rest[close..];
    }
}

fn is_ident_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Lexes `src`. Invalid UTF-8 boundaries cannot occur (input is `&str`);
/// genuinely malformed Rust degrades to punct soup, never a panic.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut out = Lexed::default();
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            _ if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                collect_allows(&src[start..i], line, &mut out.allows);
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let (start, start_line) = (i, line);
                let mut depth = 1u32;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                collect_allows(&src[start..i.min(b.len())], start_line, &mut out.allows);
            }
            b'"' => {
                i += 1;
                let (start, start_line) = (i, line);
                while i < b.len() {
                    match b[i] {
                        b'\\' => i += 2,
                        b'"' => break,
                        b'\n' => {
                            line += 1;
                            i += 1;
                        }
                        _ => i += 1,
                    }
                }
                out.toks.push(Tok {
                    line: start_line,
                    kind: TokKind::Str(src[start..i.min(b.len())].to_string()),
                });
                i += 1; // closing quote
            }
            b'\'' => {
                // Lifetime or char literal. `'x'` (anything then a quote)
                // is a char; `'\...'` is a char; otherwise a lifetime.
                if b.get(i + 1) == Some(&b'\\') {
                    i += 2; // skip the escape lead-in
                    while i < b.len() && b[i] != b'\'' {
                        i += 1;
                    }
                    i += 1;
                } else if i + 2 < b.len() && b[i + 2] == b'\'' {
                    i += 3; // 'c'
                } else if b.get(i + 1).is_some_and(|&n| is_ident_char(n)) {
                    i += 1;
                    while i < b.len() && is_ident_char(b[i]) {
                        i += 1;
                    }
                    out.toks.push(Tok {
                        line,
                        kind: TokKind::Lifetime,
                    });
                } else {
                    // Multi-byte char literal like '€': skip to close.
                    i += 1;
                    while i < b.len() && b[i] != b'\'' {
                        i += 1;
                    }
                    i += 1;
                }
            }
            _ if is_ident_char(c) => {
                // Raw/byte string prefixes lex as part of the ident
                // branch: `r"..."`, `r#"..."#`, `b"..."`, `br#"..."#`.
                let start = i;
                while i < b.len() && is_ident_char(b[i]) {
                    i += 1;
                }
                let word = &src[start..i];
                let raw_capable = word == "r" || word == "b" || word == "br";
                if raw_capable && matches!(b.get(i), Some(&b'"') | Some(&b'#')) {
                    let mut hashes = 0usize;
                    while b.get(i) == Some(&b'#') {
                        hashes += 1;
                        i += 1;
                    }
                    if b.get(i) == Some(&b'"') {
                        i += 1;
                        let (s_start, s_line) = (i, line);
                        'scan: while i < b.len() {
                            if b[i] == b'\n' {
                                line += 1;
                            } else if b[i] == b'"' {
                                let mut ok = true;
                                for k in 0..hashes {
                                    if b.get(i + 1 + k) != Some(&b'#') {
                                        ok = false;
                                        break;
                                    }
                                }
                                if ok {
                                    out.toks.push(Tok {
                                        line: s_line,
                                        kind: TokKind::Str(src[s_start..i].to_string()),
                                    });
                                    i += 1 + hashes;
                                    break 'scan;
                                }
                            }
                            i += 1;
                        }
                    } else {
                        // `r#ident` raw identifier or stray hashes: emit
                        // the word, rewind to re-lex what followed.
                        i -= hashes;
                        out.toks.push(Tok {
                            line,
                            kind: TokKind::Ident(word.to_string()),
                        });
                    }
                } else {
                    out.toks.push(Tok {
                        line,
                        kind: TokKind::Ident(word.to_string()),
                    });
                }
            }
            _ => {
                out.toks.push(Tok {
                    line,
                    kind: TokKind::Punct(c as char),
                });
                i += 1;
            }
        }
    }
    out
}

/// For each token, whether it lies inside `#[cfg(test)]`-gated code or a
/// `#[test]` function. Rules that police production invariants skip
/// these regions — tests unwrap and hold locks on purpose.
pub fn test_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if is_test_attr(toks, i) {
            let start = i;
            let mut j = skip_attr(toks, i);
            while j < toks.len()
                && toks[j].is_punct('#')
                && toks.get(j + 1).is_some_and(|t| t.is_punct('['))
            {
                j = skip_attr(toks, j);
            }
            // The gated item runs to the matching `}` of its first brace,
            // or to a top-level `;` (e.g. a cfg-gated `use`).
            let mut depth = 0i32;
            let mut end = j;
            while end < toks.len() {
                match &toks[end].kind {
                    TokKind::Punct('{') => depth += 1,
                    TokKind::Punct('}') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    TokKind::Punct(';') if depth == 0 => break,
                    _ => {}
                }
                end += 1;
            }
            let end = end.min(toks.len().saturating_sub(1));
            for slot in &mut mask[start..=end] {
                *slot = true;
            }
            i = end + 1;
        } else {
            i += 1;
        }
    }
    mask
}

/// `#[cfg(test)]`, `#[cfg(all(test, ...))]`, or `#[test]` at `i`.
fn is_test_attr(toks: &[Tok], i: usize) -> bool {
    if !(toks[i].is_punct('#') && toks.get(i + 1).is_some_and(|t| t.is_punct('['))) {
        return false;
    }
    match toks.get(i + 2).and_then(Tok::ident) {
        Some("test") => toks.get(i + 3).is_some_and(|t| t.is_punct(']')),
        Some("cfg") => {
            let close = attr_end(toks, i);
            toks[i..close].iter().any(|t| t.ident() == Some("test"))
        }
        _ => false,
    }
}

/// Index just past an attribute's closing `]` (brackets nest).
fn skip_attr(toks: &[Tok], i: usize) -> usize {
    attr_end(toks, i)
}

fn attr_end(toks: &[Tok], i: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i + 1;
    while j < toks.len() {
        if toks[j].is_punct('[') {
            depth += 1;
        } else if toks[j].is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    toks.len()
}

/// Index of the `)`/`]`/`}` matching the opener at `open` (which must
/// be an opening punct), or `toks.len()` when unbalanced.
pub fn matching_close(toks: &[Tok], open: usize) -> usize {
    let (o, c) = match &toks[open].kind {
        TokKind::Punct('(') => ('(', ')'),
        TokKind::Punct('[') => ('[', ']'),
        TokKind::Punct('{') => ('{', '}'),
        _ => return toks.len(),
    };
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct(o) {
            depth += 1;
        } else if t.is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    toks.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_do_not_leak_tokens() {
        let src = r##"
            // a { stray " brace
            /* nested /* block } */ still comment */
            let s = "quoted { brace \" escaped";
            let r = r#"raw " string { here"#;
            let b = b"bytes {";
        "##;
        let lexed = lex(src);
        let braces = lexed
            .toks
            .iter()
            .filter(|t| t.is_punct('{') || t.is_punct('}'))
            .count();
        assert_eq!(braces, 0);
        assert_eq!(
            lexed
                .toks
                .iter()
                .filter(|t| matches!(t.kind, TokKind::Str(_)))
                .count(),
            3
        );
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) { let c = 'x'; let u = '_'; let l: &'_ str = x; }");
        let lifetimes = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        // 'a twice, plus '_ in type position; 'x' and '_' are chars.
        assert_eq!(lifetimes, 3);
    }

    #[test]
    fn allow_directives_are_collected() {
        let lexed =
            lex("let x = 1; // lint:allow(guard-across-io, no-unwrap-in-daemon)\nlet y = 2;");
        assert_eq!(
            lexed.allows,
            vec![
                (1, "guard-across-io".to_string()),
                (1, "no-unwrap-in-daemon".to_string())
            ]
        );
    }

    #[test]
    fn test_mask_covers_cfg_test_modules() {
        let src = "fn prod() { x.unwrap(); }\n#[cfg(test)]\nmod tests { fn t() { y.unwrap(); } }";
        let lexed = lex(src);
        let mask = test_mask(&lexed.toks);
        for (t, in_test) in lexed.toks.iter().zip(&mask) {
            if t.ident() == Some("y") {
                assert!(*in_test);
            }
            if t.ident() == Some("x") {
                assert!(!*in_test);
            }
        }
    }

    #[test]
    fn lines_survive_multiline_strings() {
        let src = "let a = \"one\ntwo\";\nlet b = 3;";
        let lexed = lex(src);
        let b_tok = lexed.toks.iter().find(|t| t.ident() == Some("b")).unwrap();
        assert_eq!(b_tok.line, 3);
    }
}
