//! CLI: walks the workspace, runs every rule, prints diagnostics as
//! `path:line: [rule] msg`, and exits nonzero if anything fired.
//!
//! Usage: `cargo run -p pangea-lint [workspace-root]` — the root
//! defaults to the workspace this binary was built from.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use pangea_lint::{lint_project, LintedFile, RULE_NAMES};

fn main() -> ExitCode {
    let root = match std::env::args().nth(1) {
        Some(arg) => PathBuf::from(arg),
        None => Path::new(env!("CARGO_MANIFEST_DIR")).join("../.."),
    };
    let root = root.canonicalize().unwrap_or(root);

    let mut files = Vec::new();
    collect(&root, &root, &mut files);
    files.sort_by(|a, b| a.rel.cmp(&b.rel));

    let design = std::fs::read_to_string(root.join("DESIGN.md")).unwrap_or_default();
    let diags = lint_project(&files, &design);

    for d in &diags {
        println!("{d}");
    }
    let mut counts: Vec<(&str, usize)> = RULE_NAMES
        .iter()
        .map(|r| (*r, diags.iter().filter(|d| d.rule == *r).count()))
        .collect();
    counts.retain(|(_, n)| *n > 0);
    if diags.is_empty() {
        println!(
            "pangea-lint: clean ({} files, {} rules)",
            files.len(),
            RULE_NAMES.len()
        );
        ExitCode::SUCCESS
    } else {
        println!("\npangea-lint: {} diagnostic(s):", diags.len());
        for (rule, n) in counts {
            println!("  {n:>4}  {rule}");
        }
        ExitCode::FAILURE
    }
}

/// Recursively collects `.rs` files under `dir`, skipping build output,
/// VCS metadata, and the lint fixtures (which are known-bad on purpose).
fn collect(root: &Path, dir: &Path, out: &mut Vec<LintedFile>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" || path.ends_with("crates/lint/fixtures") {
                continue;
            }
            collect(root, &path, out);
        } else if name.ends_with(".rs") {
            let Ok(src) = std::fs::read_to_string(&path) else {
                continue;
            };
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(LintedFile::parse(&rel, &src));
        }
    }
}
