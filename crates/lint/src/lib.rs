//! pangea-lint: in-house static analysis for the Pangea workspace.
//!
//! Checks cross-cutting project invariants the compiler cannot see —
//! each one is a bug class that actually shipped (or nearly shipped) in
//! an earlier PR, promoted to a machine-checked rule. Zero external
//! dependencies: a small hand-rolled Rust lexer (`lexer`) feeds a
//! token-pattern rule engine (`rules`). Run it with
//! `cargo run -p pangea-lint`; CI gates on a clean exit.
//!
//! Suppress a diagnostic with `// lint:allow(<rule>)` on the flagged
//! line or the line directly above it. Allows are deliberate,
//! reviewable artifacts — each should carry a justification comment.
//! See DESIGN.md §2j for the invariant catalogue and allow policy.

pub mod lexer;
pub mod rules;

pub use rules::{Diagnostic, OpcodeCtx, RULE_NAMES};

use lexer::{lex, test_mask, Tok};

/// A source file prepared for linting: tokens, allow directives, and a
/// per-token "inside `#[cfg(test)]` / `#[test]`" mask.
pub struct LintedFile {
    /// Workspace-relative path with forward slashes (rules match on it).
    pub rel: String,
    pub toks: Vec<Tok>,
    /// `(line, rule)` pairs from `lint:allow(...)` comments.
    pub allows: Vec<(u32, String)>,
    /// `in_test[i]` ⇔ `toks[i]` is inside a test-gated item.
    pub in_test: Vec<bool>,
}

impl LintedFile {
    pub fn parse(rel: &str, src: &str) -> Self {
        let lexed = lex(src);
        let in_test = test_mask(&lexed.toks);
        LintedFile {
            rel: rel.to_string(),
            toks: lexed.toks,
            allows: lexed.allows,
            in_test,
        }
    }
}

/// Runs every per-file rule on `f`.
pub fn lint_file(f: &LintedFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    rules::guard_across_io(f, &mut out);
    rules::checkout_pairing(f, &mut out);
    rules::metric_name_registry(f, &mut out);
    rules::no_unwrap_in_daemon(f, &mut out);
    out
}

/// Runs per-file rules on every file plus the project-wide opcode rule,
/// returning diagnostics sorted by (file, line).
pub fn lint_project(files: &[LintedFile], design: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for f in files {
        out.extend(lint_file(f));
    }
    let find = |rel: &str| files.iter().find(|f| f.rel == rel);
    if let Some(proto) = find("crates/net/src/proto.rs") {
        let handlers: Vec<&LintedFile> = [
            "crates/net/src/server.rs",
            "crates/net/src/client.rs",
            "crates/coord/src/daemon.rs",
            "crates/coord/src/client.rs",
            "crates/coord/src/remote.rs",
        ]
        .iter()
        .filter_map(|r| find(r))
        .collect();
        let roundtrips: Vec<&LintedFile> =
            ["crates/net/tests/frame_props.rs", "crates/net/src/proto.rs"]
                .iter()
                .filter_map(|r| find(r))
                .collect();
        let ctx = OpcodeCtx {
            proto,
            handlers,
            roundtrips,
            design,
        };
        rules::opcode_coverage(&ctx, &mut out);
    }
    out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    out
}
