//! The rule engine: five project invariants, each with a
//! `// lint:allow(<rule>)` escape hatch (same line or the line above).
//!
//! | rule                   | invariant                                              |
//! |------------------------|--------------------------------------------------------|
//! | `guard-across-io`      | no lock guard live across a socket/client call         |
//! | `checkout-pairing`     | every peer checkout reaches checkin/discard on all paths|
//! | `opcode-coverage`      | every wire opcode is handled, roundtripped, documented  |
//! | `metric-name-registry` | metric names come from `pangea_obs::names`, not literals|
//! | `no-unwrap-in-daemon`  | no `unwrap`/`expect` in daemon request-handling paths   |
//!
//! Everything here is heuristic token-pattern matching — sound enough
//! to have zero false positives on the tree (anything intentional is
//! annotated), sharp enough to catch each rule's shipped-bug class
//! (see DESIGN.md §2j for the history).

use crate::lexer::{matching_close, Tok, TokKind};
use crate::LintedFile;

/// One diagnostic: a rule violation at `file:line`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub file: String,
    pub line: u32,
    pub rule: &'static str,
    pub msg: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.msg
        )
    }
}

/// Every rule name, in report order.
pub const RULE_NAMES: &[&str] = &[
    "guard-across-io",
    "checkout-pairing",
    "opcode-coverage",
    "metric-name-registry",
    "no-unwrap-in-daemon",
];

/// True when `f` carries a `lint:allow(rule)` on `line` or the line
/// directly above it.
fn allowed(f: &LintedFile, line: u32, rule: &str) -> bool {
    f.allows
        .iter()
        .any(|(l, r)| r == rule && (*l == line || *l + 1 == line))
}

fn push(f: &LintedFile, line: u32, rule: &'static str, msg: String, out: &mut Vec<Diagnostic>) {
    if !allowed(f, line, rule) {
        out.push(Diagnostic {
            file: f.rel.clone(),
            line,
            rule,
            msg,
        });
    }
}

// ---------------------------------------------------------------------
// shared token helpers
// ---------------------------------------------------------------------

/// Methods whose *final* call produces a lock guard. `read`/`write`
/// count only with empty argument lists (`io::Read::read(&mut buf)`
/// always takes one).
const LOCK_METHODS: &[&str] = &[
    "lock",
    "try_lock",
    "lock_arc",
    "read_arc",
    "write_arc",
    "upgradable_read",
];
const LOCK_METHODS_EMPTY_ONLY: &[&str] = &["read", "write"];

/// Result/Option adapters that may wrap a guard-producing call without
/// changing what the binding holds.
const GUARD_WRAPPERS: &[&str] = &["unwrap", "expect", "unwrap_or_else", "ok"];

/// Method names that are IO wherever they appear: the wire client's
/// RPC surface plus connection setup.
const IO_METHODS: &[&str] = &[
    "call",
    "submit",
    "await_response",
    "connect",
    "connect_with",
    "connect_with_secret",
    "transfer",
    "checkout_peer",
    "dial_peer",
    "ping",
    "hash_list",
    "metrics_dump",
    "metrics_dump_since",
    "trace_push",
    "ingest_append_submit",
    "ingest_append_await",
    "recover_append_submit",
    "recover_append_await",
];

/// Free functions that perform socket IO directly.
const IO_FNS: &[&str] = &[
    "write_frame",
    "write_frame_corr",
    "read_frame",
    "read_frame_corr",
];

/// Receiver identifiers that name an IO object: any non-benign method
/// call on these under a held guard is a violation.
const IO_BASES: &[&str] = &[
    "client",
    "peer",
    "stream",
    "sock",
    "socket",
    "transport",
    "mgr",
];

/// Local-state methods that touch no socket even on an IO-named
/// receiver.
const BENIGN_METHODS: &[&str] = &[
    "clone",
    "len",
    "is_empty",
    "as_ref",
    "as_mut",
    "as_str",
    "to_string",
    "to_owned",
    "is_some",
    "is_none",
    "take",
    "set_trace",
    "pipelined",
    "local_addr",
    "shutdown",
];

/// Is `toks[i]` an identifier immediately followed by `(`?
fn is_call(toks: &[Tok], i: usize) -> bool {
    toks[i].ident().is_some() && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
}

/// For a method call at `i` (ident followed by `(`), the chain of
/// receiver identifiers walking backwards over `.`-separated segments:
/// `self.a.b.call(...)` at `call` yields `["self", "a", "b"]` (base
/// first). Stops at anything that is not `ident .`; a call or index in
/// the chain yields a shorter (possibly empty) chain.
fn receiver_chain(toks: &[Tok], i: usize) -> Vec<String> {
    let mut chain = Vec::new();
    let mut j = i;
    loop {
        if j == 0 || !toks[j - 1].is_punct('.') {
            break;
        }
        let Some(prev) = j.checked_sub(2) else { break };
        match toks[prev].ident() {
            Some(seg) => {
                chain.push(seg.to_string());
                j = prev;
            }
            None => break,
        }
    }
    chain.reverse();
    chain
}

/// Classifies the call at `i` as IO under the rule's definition,
/// returning a human-readable description when it is. Calls whose
/// receiver chain is rooted at one of `exempt` (the guard itself — the
/// lock *owns* the IO object, serialization is the point) are not IO.
fn io_call(toks: &[Tok], i: usize, exempt: &[String]) -> Option<String> {
    if !is_call(toks, i) {
        return None;
    }
    let name = toks[i].ident().unwrap_or_default();
    let method = i > 0 && toks[i - 1].is_punct('.');
    if method {
        let chain = receiver_chain(toks, i);
        if chain
            .first()
            .is_some_and(|base| exempt.iter().any(|g| g == base))
        {
            return None;
        }
        if IO_METHODS.contains(&name) {
            return Some(match chain.last() {
                Some(recv) => format!("{recv}.{name}(...)"),
                None => format!(".{name}(...)"),
            });
        }
        if let Some(recv) = chain.last() {
            if IO_BASES.contains(&recv.as_str()) && !BENIGN_METHODS.contains(&name) {
                return Some(format!("{recv}.{name}(...)"));
            }
        }
        None
    } else {
        if !IO_FNS.contains(&name) {
            return None;
        }
        // Function-form IO (`write_frame(&mut *w, ...)`): exempt when
        // the guard itself is an argument — the guard IS the writer.
        let close = matching_close(toks, i + 1);
        let args_have_exempt = toks[i + 1..close]
            .iter()
            .any(|t| t.ident().is_some_and(|id| exempt.iter().any(|g| g == id)));
        if args_have_exempt {
            None
        } else {
            Some(format!("{name}(...)"))
        }
    }
}

/// Does the token range contain a guard-producing method call?
/// (Used on `if let`/`while let`/`match` scrutinees, where *any*
/// intermediate guard temporary lives for the whole body.)
fn range_acquires_lock(toks: &[Tok]) -> Option<&str> {
    for i in 0..toks.len() {
        if i == 0 || !toks[i - 1].is_punct('.') {
            continue;
        }
        if !is_call(toks, i) {
            continue;
        }
        let name = toks[i].ident().unwrap_or_default();
        let empty = toks.get(i + 2).is_some_and(|t| t.is_punct(')'));
        if LOCK_METHODS.contains(&name) || (LOCK_METHODS_EMPTY_ONLY.contains(&name) && empty) {
            return toks[i].ident();
        }
    }
    None
}

/// The final call of an expression's token slice, unwrapping trailing
/// `?` and Result/Option adapters: for `self.m.lock().unwrap()` this is
/// `("lock", true)`. Returns `(name, has_empty_args)`.
fn final_call(mut toks: &[Tok]) -> Option<(String, bool)> {
    loop {
        while toks.last().is_some_and(|t| t.is_punct('?')) {
            toks = &toks[..toks.len() - 1];
        }
        if !toks.last().is_some_and(|t| t.is_punct(')')) {
            return None;
        }
        // Find the `(` matching the trailing `)`.
        let mut depth = 0i32;
        let mut open = None;
        for (j, t) in toks.iter().enumerate().rev() {
            if t.is_punct(')') {
                depth += 1;
            } else if t.is_punct('(') {
                depth -= 1;
                if depth == 0 {
                    open = Some(j);
                    break;
                }
            }
        }
        let open = open?;
        let name_idx = open.checked_sub(1)?;
        let name = toks[name_idx].ident()?.to_string();
        if GUARD_WRAPPERS.contains(&name.as_str()) {
            // Strip `.unwrap()` and retry on what precedes it.
            let cut = name_idx.checked_sub(1)?; // the `.`
            if !toks[cut].is_punct('.') {
                return None;
            }
            toks = &toks[..cut];
            continue;
        }
        let empty = open + 1 == toks.len() - 1;
        return Some((name, empty));
    }
}

fn is_guard_final_call(toks: &[Tok]) -> bool {
    match final_call(toks) {
        Some((name, empty)) => {
            LOCK_METHODS.contains(&name.as_str())
                || (LOCK_METHODS_EMPTY_ONLY.contains(&name.as_str()) && empty)
        }
        None => false,
    }
}

/// Statement end: first `;` at relative bracket depth 0 from `start`.
fn stmt_end(toks: &[Tok], start: usize) -> usize {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(start) {
        match &t.kind {
            TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => depth += 1,
            TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => {
                depth -= 1;
                if depth < 0 {
                    return j;
                }
            }
            TokKind::Punct(';') if depth == 0 => return j,
            _ => {}
        }
    }
    toks.len()
}

/// End (exclusive) of the block enclosing `i`: the `}` that first
/// brings brace depth below the level at `i`.
fn enclosing_block_end(toks: &[Tok], i: usize) -> usize {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(i) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth < 0 {
                return j;
            }
        }
    }
    toks.len()
}

/// End of the `fn` item enclosing `i`, or `toks.len()`. Closures don't
/// count — only `fn` items delimit pairing scopes.
fn enclosing_fn_end(toks: &[Tok], i: usize) -> usize {
    // Walk every fn item; keep the innermost one whose body spans `i`.
    let mut best = toks.len();
    let mut j = 0usize;
    while j < toks.len() {
        if toks[j].ident() == Some("fn") {
            // Find the body's `{` (skipping the signature; generics use
            // `<>`, which never contains braces).
            let mut k = j + 1;
            let mut pdepth = 0i32;
            while k < toks.len() {
                match &toks[k].kind {
                    TokKind::Punct('(') | TokKind::Punct('[') => pdepth += 1,
                    TokKind::Punct(')') | TokKind::Punct(']') => pdepth -= 1,
                    TokKind::Punct('{') if pdepth == 0 => break,
                    TokKind::Punct(';') if pdepth == 0 => break, // trait fn, no body
                    _ => {}
                }
                k += 1;
            }
            if k < toks.len() && toks[k].is_punct('{') {
                let close = matching_close(toks, k);
                if (k..=close).contains(&i) {
                    best = close; // innermost wins: later fns that still span i are nested
                }
                j = k + 1;
                continue;
            }
        }
        j += 1;
    }
    best
}

/// Identifiers bound by the pattern between `let` and `=`, minus
/// keywords.
fn pattern_names(toks: &[Tok]) -> Vec<String> {
    toks.iter()
        .filter_map(Tok::ident)
        .filter(|id| !matches!(*id, "mut" | "ref" | "let" | "Some" | "Ok" | "Err" | "box"))
        .map(str::to_string)
        .collect()
}

// ---------------------------------------------------------------------
// rule: guard-across-io
// ---------------------------------------------------------------------

fn in_scope_src(rel: &str) -> bool {
    rel.starts_with("crates/")
        && rel.contains("/src/")
        && !rel.starts_with("crates/shims/")
        && !rel.starts_with("crates/lint/")
}

/// A `lock()`/`read()`/`write()` guard binding live across a
/// socket/client call — the PR 3 bug class (a recovery hook invoked
/// under an `if let`-held mutex serialized "parallel" repairs).
pub fn guard_across_io(f: &LintedFile, out: &mut Vec<Diagnostic>) {
    if !in_scope_src(&f.rel) {
        return;
    }
    let toks = &f.toks;
    let mut i = 0usize;
    while i < toks.len() {
        if f.in_test[i] {
            i += 1;
            continue;
        }
        // -- form 1: `let g = <...>.lock();` — guard lives to block end.
        if toks[i].ident() == Some("let")
            && (i == 0 || toks[i - 1].ident() != Some("while") && toks[i - 1].ident() != Some("if"))
        {
            let end = stmt_end(toks, i);
            if let Some(eq) = find_binding_eq(toks, i, end) {
                // `let ... else { }` drops its scrutinee temporaries at
                // statement end, same as a plain let.
                let rhs_end = toks[eq + 1..end]
                    .iter()
                    .position(|t| t.ident() == Some("else"))
                    .map(|p| eq + 1 + p)
                    .unwrap_or(end);
                // A leading `*` copies the value *out* of the guard
                // (`let n = *m.lock();`): the guard is a temporary
                // dropped at the `;`, nothing stays live.
                let derefs_out = toks.get(eq + 1).is_some_and(|t| t.is_punct('*'));
                if !derefs_out && is_guard_final_call(&toks[eq + 1..rhs_end]) {
                    let guards = pattern_names(&toks[i + 1..eq]);
                    if !guards.is_empty() {
                        scan_live_range(f, toks, end, &guards, toks[i].line, out);
                    }
                }
            }
            i = end + 1;
            continue;
        }
        // -- form 2: `if let`/`while let`/`match` whose scrutinee
        // acquires a lock — the guard temporary lives for the whole
        // body (Rust extends scrutinee temporaries to the full
        // expression), exactly the PR 3 shape.
        let (scrut_start, head_line) = match toks[i].ident() {
            Some("match") => (i + 1, toks[i].line),
            Some("if") | Some("while") if toks.get(i + 1).and_then(Tok::ident) == Some("let") => {
                match find_binding_eq(toks, i + 1, toks.len()) {
                    Some(eq) => (eq + 1, toks[i].line),
                    None => {
                        i += 1;
                        continue;
                    }
                }
            }
            _ => {
                i += 1;
                continue;
            }
        };
        let Some(body_open) = scrutinee_body_open(toks, scrut_start) else {
            i += 1;
            continue;
        };
        if let Some(m) = range_acquires_lock(&toks[scrut_start..body_open]) {
            let body_close = matching_close(toks, body_open);
            let mut hits = Vec::new();
            for j in body_open..body_close.min(toks.len()) {
                if let Some(desc) = io_call(toks, j, &[]) {
                    hits.push((toks[j].line, desc));
                }
            }
            if let Some((io_line, desc)) = hits.first() {
                push(
                    f,
                    head_line,
                    "guard-across-io",
                    format!(
                        "`{m}()` guard in this scrutinee is held for the whole body \
                         (scrutinee temporaries live to the end of the expression), \
                         which performs IO: {desc} at line {io_line}; \
                         bind the guard, extract what you need, drop it before the IO"
                    ),
                    out,
                );
            }
            i = body_close.min(toks.len() - 1) + 1;
            continue;
        }
        i += 1;
    }
}

/// The `=` of a let binding starting at `let_idx` (skipping `==`, type
/// annotations with defaults can't appear in let patterns).
fn find_binding_eq(toks: &[Tok], let_idx: usize, end: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut j = let_idx + 1;
    while j < end.min(toks.len()) {
        match &toks[j].kind {
            TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('<') => depth += 1,
            TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('>') => depth -= 1,
            TokKind::Punct('=') if depth <= 0 => {
                // `==` can't start a binding initializer; `=` followed
                // by `=` is comparison (can't appear before the first
                // `=` of a let anyway).
                if toks.get(j + 1).is_some_and(|t| t.is_punct('=')) {
                    j += 2;
                    continue;
                }
                return Some(j);
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// First `{` at relative bracket depth 0 after a scrutinee start.
fn scrutinee_body_open(toks: &[Tok], start: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(start) {
        match &t.kind {
            TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
            TokKind::Punct(')') | TokKind::Punct(']') => depth -= 1,
            TokKind::Punct('{') if depth == 0 => return Some(j),
            TokKind::Punct(';') if depth == 0 => return None,
            _ => {}
        }
    }
    None
}

/// Scans a named guard's live range (statement end → enclosing block
/// end, cut short by `drop(guard)`) for IO calls.
fn scan_live_range(
    f: &LintedFile,
    toks: &[Tok],
    from: usize,
    guards: &[String],
    bind_line: u32,
    out: &mut Vec<Diagnostic>,
) {
    let block_end = enclosing_block_end(toks, from);
    let mut j = from;
    while j < block_end.min(toks.len()) {
        // `drop(g)` / `mem::drop(g)` ends the guard's life.
        if toks[j].ident() == Some("drop")
            && toks.get(j + 1).is_some_and(|t| t.is_punct('('))
            && toks
                .get(j + 2)
                .and_then(Tok::ident)
                .is_some_and(|id| guards.iter().any(|g| g == id))
            && toks.get(j + 3).is_some_and(|t| t.is_punct(')'))
        {
            return;
        }
        if let Some(desc) = io_call(toks, j, guards) {
            push(
                f,
                bind_line,
                "guard-across-io",
                format!(
                    "guard `{}` (bound here) is still live across IO: {desc} at line {}; \
                     drop the guard (or clone what you need out of it) before the call",
                    guards.join("/"),
                    toks[j].line
                ),
                out,
            );
            return; // one diagnostic per binding is enough
        }
        j += 1;
    }
}

// ---------------------------------------------------------------------
// rule: checkout-pairing
// ---------------------------------------------------------------------

/// Every `checkout_peer` must reach `checkin_peer` or `discard_peer` on
/// all paths — PR 8 shipped the bug where a failed `RecoverPush`
/// stranded its checked-out peer connection.
pub fn checkout_pairing(f: &LintedFile, out: &mut Vec<Diagnostic>) {
    if !in_scope_src(&f.rel) {
        return;
    }
    let toks = &f.toks;
    for i in 0..toks.len() {
        if f.in_test[i] || toks[i].ident() != Some("checkout_peer") || !is_call(toks, i) {
            continue;
        }
        // Skip the definition itself (`fn checkout_peer(...)`).
        if i > 0 && toks[i - 1].ident() == Some("fn") {
            continue;
        }
        let line = toks[i].line;
        // The checkout must be let-bound (a bare `self.checkout_peer(a)?;`
        // leaks the connection immediately).
        let let_idx = (0..i).rev().find(|&j| {
            toks[j].ident() == Some("let")
                || toks[j].is_punct(';')
                || toks[j].is_punct('{')
                || toks[j].is_punct('}')
        });
        match let_idx {
            Some(j) if toks[j].ident() == Some("let") => {}
            _ => {
                push(
                    f,
                    line,
                    "checkout-pairing",
                    "checkout_peer result must be let-bound so it can reach \
                     checkin_peer or discard_peer"
                        .to_string(),
                    out,
                );
                continue;
            }
        }
        let after = stmt_end(toks, i) + 1;
        let fn_end = enclosing_fn_end(toks, i);
        // Scan to the first consumption; any `?`/`return` before it can
        // exit the function with the connection neither checked in nor
        // discarded.
        let mut consumed = false;
        for tok in toks.iter().take(fn_end.min(toks.len())).skip(after) {
            match tok.ident() {
                Some("checkin_peer") | Some("discard_peer") => {
                    consumed = true;
                    break;
                }
                Some("return") => {
                    push(
                        f,
                        line,
                        "checkout-pairing",
                        format!(
                            "`return` at line {} exits before this checkout reaches \
                             checkin_peer/discard_peer",
                            tok.line
                        ),
                        out,
                    );
                    consumed = true; // one diagnostic per checkout
                    break;
                }
                _ => {}
            }
            if tok.is_punct('?') {
                push(
                    f,
                    line,
                    "checkout-pairing",
                    format!(
                        "`?` at line {} can exit before this checkout reaches \
                         checkin_peer/discard_peer",
                        tok.line
                    ),
                    out,
                );
                consumed = true;
                break;
            }
        }
        if !consumed {
            push(
                f,
                line,
                "checkout-pairing",
                "checkout never reaches checkin_peer/discard_peer in this function".to_string(),
                out,
            );
        }
    }
}

// ---------------------------------------------------------------------
// rule: metric-name-registry
// ---------------------------------------------------------------------

/// Metric names are join keys (scrape store, `top`, bench diff all
/// match on them); literals drift, constants can't. Names live in
/// `pangea_obs::names`.
pub fn metric_name_registry(f: &LintedFile, out: &mut Vec<Diagnostic>) {
    if !in_scope_src(&f.rel) || f.rel == "crates/obs/src/names.rs" {
        return;
    }
    let toks = &f.toks;
    for i in 0..toks.len() {
        if f.in_test[i] {
            continue;
        }
        let name = match toks[i].ident() {
            Some(n @ ("counter" | "gauge" | "histogram")) => n,
            _ => continue,
        };
        // Method-call position only: `reg.counter(...)`.
        if i == 0 || !toks[i - 1].is_punct('.') || !toks.get(i + 1).is_some_and(|t| t.is_punct('('))
        {
            continue;
        }
        let bad = match toks.get(i + 2).map(|t| &t.kind) {
            Some(TokKind::Str(s)) => Some(format!("\"{s}\"")),
            Some(TokKind::Punct('&'))
                if toks.get(i + 3).and_then(Tok::ident) == Some("format")
                    && toks.get(i + 4).is_some_and(|t| t.is_punct('!')) =>
            {
                Some("&format!(...)".to_string())
            }
            _ => None,
        };
        if let Some(what) = bad {
            push(
                f,
                toks[i].line,
                "metric-name-registry",
                format!(
                    "`{name}({what})` uses a raw metric name; use a constant or \
                     helper from `pangea_obs::names` so scrape/top/bench can't drift"
                ),
                out,
            );
        }
    }
}

// ---------------------------------------------------------------------
// rule: no-unwrap-in-daemon
// ---------------------------------------------------------------------

/// Daemon request paths must degrade to typed errors, not panics: a
/// panicking worker thread takes its whole connection (and any queued
/// requests) with it.
const DAEMON_PATHS: &[&str] = &[
    "crates/net/src/server.rs",
    "crates/coord/src/daemon.rs",
    "crates/coord/src/scrape.rs",
    "crates/coord/src/membership.rs",
    "crates/coord/src/signals.rs",
    "crates/coord/src/bin/pangead.rs",
    "crates/coord/src/bin/pangea-mgr.rs",
];

pub fn no_unwrap_in_daemon(f: &LintedFile, out: &mut Vec<Diagnostic>) {
    if !DAEMON_PATHS.contains(&f.rel.as_str()) {
        return;
    }
    let toks = &f.toks;
    for i in 0..toks.len() {
        if f.in_test[i] {
            continue;
        }
        let name = match toks[i].ident() {
            Some(n @ ("unwrap" | "expect")) => n,
            _ => continue,
        };
        if i == 0 || !toks[i - 1].is_punct('.') || !toks.get(i + 1).is_some_and(|t| t.is_punct('('))
        {
            continue;
        }
        push(
            f,
            toks[i].line,
            "no-unwrap-in-daemon",
            format!(
                "`.{name}()` in a daemon request path: return a typed error instead \
                 (a panic here kills the worker thread and its queued requests)"
            ),
            out,
        );
    }
}

// ---------------------------------------------------------------------
// rule: opcode-coverage (project-wide)
// ---------------------------------------------------------------------

/// The inputs the opcode rule joins across.
pub struct OpcodeCtx<'a> {
    /// The protocol definition (`pub enum Request` / `pub enum Response`).
    pub proto: &'a LintedFile,
    /// Files whose non-test code must mention `Enum::Variant` for the
    /// variant to count as handled (server dispatch + manager dispatch
    /// for requests; producers/consumers for responses).
    pub handlers: Vec<&'a LintedFile>,
    /// Files whose *mentions* count as roundtrip coverage: the
    /// frame_props property suite (whole file) plus proto.rs's own test
    /// module (test regions only).
    pub roundtrips: Vec<&'a LintedFile>,
    /// DESIGN.md text.
    pub design: &'a str,
}

/// Every `Request`/`Response` variant needs a handler arm, a wire
/// roundtrip case, and a DESIGN.md mention — opcodes can't land
/// half-wired.
pub fn opcode_coverage(ctx: &OpcodeCtx<'_>, out: &mut Vec<Diagnostic>) {
    for enum_name in ["Request", "Response"] {
        for (variant, line) in enum_variants(ctx.proto, enum_name) {
            if allowed(ctx.proto, line, "opcode-coverage") {
                continue;
            }
            let mut missing = Vec::new();
            let handled = ctx
                .handlers
                .iter()
                .any(|f| mentions_variant(f, enum_name, &variant, Some(false)));
            if !handled {
                missing.push("a handler arm");
            }
            // proto.rs only counts in its own test module (the codec
            // arms would make the check vacuous); a dedicated roundtrip
            // suite counts anywhere.
            let roundtripped = ctx.roundtrips.iter().any(|f| {
                let region = if f.rel.ends_with("proto.rs") {
                    Some(true)
                } else {
                    None
                };
                mentions_variant(f, enum_name, &variant, region)
            });
            if !roundtripped {
                missing.push("a wire roundtrip test");
            }
            if !word_mentioned(ctx.design, &variant) {
                missing.push("a DESIGN.md mention");
            }
            if !missing.is_empty() {
                out.push(Diagnostic {
                    file: ctx.proto.rel.clone(),
                    line,
                    rule: "opcode-coverage",
                    msg: format!("{enum_name}::{variant} is missing {}", missing.join(", ")),
                });
            }
        }
    }
}

/// `(variant, line)` pairs of `pub enum <name>`'s variants.
fn enum_variants(f: &LintedFile, name: &str) -> Vec<(String, u32)> {
    let toks = &f.toks;
    let mut found = Vec::new();
    for i in 0..toks.len() {
        if toks[i].ident() != Some("enum") || toks.get(i + 1).and_then(Tok::ident) != Some(name) {
            continue;
        }
        let Some(open) = (i..toks.len()).find(|&j| toks[j].is_punct('{')) else {
            continue;
        };
        let close = matching_close(toks, open);
        let mut j = open + 1;
        let mut expect_variant = true;
        while j < close {
            match &toks[j].kind {
                TokKind::Punct('#') if toks.get(j + 1).is_some_and(|t| t.is_punct('[')) => {
                    // Skip variant attributes.
                    let mut depth = 0i32;
                    j += 1;
                    while j < close {
                        if toks[j].is_punct('[') {
                            depth += 1;
                        } else if toks[j].is_punct(']') {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        j += 1;
                    }
                    j += 1;
                }
                TokKind::Ident(v) if expect_variant => {
                    found.push((v.clone(), toks[j].line));
                    expect_variant = false;
                    j += 1;
                    // Skip the payload `{...}` / `(...)`.
                    if j < close && (toks[j].is_punct('{') || toks[j].is_punct('(')) {
                        j = matching_close(toks, j) + 1;
                    }
                }
                TokKind::Punct(',') => {
                    expect_variant = true;
                    j += 1;
                }
                _ => j += 1,
            }
        }
        break;
    }
    found
}

/// Does `f` contain `enum_name :: variant`? `region` restricts where
/// the mention may live: `Some(true)` = test-gated regions only,
/// `Some(false)` = non-test code only, `None` = anywhere.
fn mentions_variant(f: &LintedFile, enum_name: &str, variant: &str, region: Option<bool>) -> bool {
    let toks = &f.toks;
    for i in 0..toks.len().saturating_sub(3) {
        if region.is_some_and(|tests| f.in_test[i] != tests) {
            continue;
        }
        if toks[i].ident() == Some(enum_name)
            && toks[i + 1].is_punct(':')
            && toks[i + 2].is_punct(':')
            && toks[i + 3].ident() == Some(variant)
        {
            return true;
        }
    }
    false
}

/// Word-boundary mention of `word` in free text.
fn word_mentioned(text: &str, word: &str) -> bool {
    let b = text.as_bytes();
    let mut from = 0usize;
    while let Some(pos) = text[from..].find(word) {
        let start = from + pos;
        let end = start + word.len();
        let left_ok = start == 0 || !(b[start - 1].is_ascii_alphanumeric() || b[start - 1] == b'_');
        let right_ok = end >= b.len() || !(b[end].is_ascii_alphanumeric() || b[end] == b'_');
        if left_ok && right_ok {
            return true;
        }
        from = end;
    }
    false
}
