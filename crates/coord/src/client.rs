//! Typed clients for `pangea-mgr`: the [`ManagerClient`] RPC wrapper and
//! the [`RemoteCatalog`] implementation of the engine's catalog seam.

use pangea_cluster::engine::Catalog;
use pangea_cluster::{CatalogEntry, PartitionScheme, SetStats};
use pangea_common::{Epoch, NodeId, PangeaError, ReplicaGroupId, Result};
use pangea_net::{PangeaClient, Request, Response, SchemeSpec, WireSpan, WireWorker};
use parking_lot::Mutex;
use std::net::ToSocketAddrs;

/// A connected manager client: one connection, typed manager RPCs.
#[derive(Debug)]
pub struct ManagerClient {
    client: PangeaClient,
}

impl ManagerClient {
    /// Connects to a `pangea-mgr` at `addr`, performing the handshake
    /// when a secret is given.
    pub fn connect(addr: impl ToSocketAddrs, secret: Option<&str>) -> Result<Self> {
        Ok(Self {
            client: PangeaClient::connect_with_secret(addr, secret)?,
        })
    }

    fn unexpected(resp: Response) -> PangeaError {
        PangeaError::Remote(format!("unexpected manager response: {resp:?}"))
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<()> {
        self.client.ping()
    }

    /// Registers a worker advertising `addr`, optionally pinning a slot.
    pub fn register_worker(&mut self, addr: &str, slot: Option<NodeId>) -> Result<(NodeId, Epoch)> {
        let req = Request::MgrRegisterWorker {
            addr: addr.to_string(),
            slot: slot.map(|n| n.raw() as u64),
        };
        match self.client.call(&req)? {
            Response::WorkerRegistered { node, epoch } => Ok((NodeId(node), Epoch(epoch))),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Sends one heartbeat for `(node, epoch)`.
    pub fn heartbeat(&mut self, node: NodeId, epoch: Epoch) -> Result<()> {
        let req = Request::MgrHeartbeat {
            node: node.raw(),
            epoch: epoch.raw(),
        };
        match self.client.call(&req)? {
            Response::Ok => Ok(()),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Deregisters `(node, epoch)` on clean shutdown.
    pub fn deregister_worker(&mut self, node: NodeId, epoch: Epoch) -> Result<()> {
        let req = Request::MgrDeregisterWorker {
            node: node.raw(),
            epoch: epoch.raw(),
        };
        match self.client.call(&req)? {
            Response::Ok => Ok(()),
            other => Err(Self::unexpected(other)),
        }
    }

    /// The manager's membership snapshot (liveness swept server-side).
    pub fn list_workers(&mut self) -> Result<Vec<WireWorker>> {
        match self.client.call(&Request::MgrListWorkers)? {
            Response::Workers { workers } => Ok(workers),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Registers a distributed set in the wire-served catalog.
    pub fn register_set(&mut self, name: &str, scheme: &SchemeSpec) -> Result<()> {
        let req = Request::MgrRegisterSet {
            name: name.to_string(),
            scheme: scheme.clone(),
        };
        match self.client.call(&req)? {
            Response::Ok => Ok(()),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Removes a set from the catalog.
    pub fn deregister_set(&mut self, name: &str) -> Result<()> {
        let req = Request::MgrDeregisterSet {
            name: name.to_string(),
        };
        match self.client.call(&req)? {
            Response::Ok => Ok(()),
            other => Err(Self::unexpected(other)),
        }
    }

    /// One catalog entry, if registered.
    pub fn entry(&mut self, name: &str) -> Result<Option<pangea_net::WireCatalogEntry>> {
        let req = Request::MgrEntry {
            name: name.to_string(),
        };
        match self.client.call(&req)? {
            Response::CatalogEntry { entry } => Ok(entry),
            other => Err(Self::unexpected(other)),
        }
    }

    /// All registered set names, sorted.
    pub fn set_names(&mut self) -> Result<Vec<String>> {
        match self.client.call(&Request::MgrSetNames)? {
            Response::Names { names } => Ok(names),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Adds dispatch counts to a set's statistics.
    pub fn add_stats(&mut self, name: &str, objects: u64, bytes: u64) -> Result<()> {
        let req = Request::MgrAddStats {
            name: name.to_string(),
            objects,
            bytes,
        };
        match self.client.call(&req)? {
            Response::Ok => Ok(()),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Puts `a` and `b` in the same replica group.
    pub fn link_replicas(&mut self, a: &str, b: &str) -> Result<ReplicaGroupId> {
        let req = Request::MgrLinkReplicas {
            a: a.to_string(),
            b: b.to_string(),
        };
        match self.client.call(&req)? {
            Response::Group { group } => Ok(ReplicaGroupId(group)),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Members of a replica group.
    pub fn group_members(&mut self, group: ReplicaGroupId) -> Result<Vec<String>> {
        let req = Request::MgrGroupMembers { group: group.raw() };
        match self.client.call(&req)? {
            Response::Names { names } => Ok(names),
            other => Err(Self::unexpected(other)),
        }
    }

    /// All replica groups, ascending.
    pub fn groups(&mut self) -> Result<Vec<ReplicaGroupId>> {
        match self.client.call(&Request::MgrGroups)? {
            Response::Groups { groups } => Ok(groups.into_iter().map(ReplicaGroupId).collect()),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Contributes locally recorded spans to the manager's fleet span
    /// store under the display name `node`. Drivers push their
    /// `DriverRpc` root spans this way — the scrape loop only reaches
    /// registered workers, and every cross-node trace roots in a
    /// driver's ring.
    pub fn trace_push(&mut self, node: &str, spans: Vec<WireSpan>) -> Result<()> {
        let req = Request::TracePush {
            node: node.to_string(),
            spans,
        };
        match self.client.call(&req)? {
            Response::Ok => Ok(()),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Pulls one job's fleet-wide spans from the manager's retained
    /// store, following the index cursor until the manager reports no
    /// more (with the same no-progress corruption guard the other
    /// paginated pulls use). Returns the `(node, span)` pairs plus the
    /// fleet's dropped-span count at query time — nonzero means the
    /// stitched tree may be missing history.
    pub fn trace_query(&mut self, job: u64) -> Result<(Vec<(String, WireSpan)>, u64)> {
        let mut all = Vec::new();
        let mut start = 0u64;
        loop {
            let req = Request::TraceQuery { job, start };
            match self.client.call(&req)? {
                Response::Trace {
                    spans,
                    dropped,
                    next,
                } => {
                    let advanced = !spans.is_empty();
                    all.extend(spans);
                    match next {
                        Some(n) => {
                            if !advanced && n <= start {
                                return Err(PangeaError::Corruption(format!(
                                    "trace-query cursor did not advance past {start}"
                                )));
                            }
                            start = n;
                        }
                        None => return Ok((all, dropped)),
                    }
                }
                other => return Err(Self::unexpected(other)),
            }
        }
    }

    /// The statistics service's best-replica answer.
    pub fn best_replica(&mut self, set: &str, key: &str) -> Result<Option<String>> {
        let req = Request::MgrBestReplica {
            set: set.to_string(),
            key: key.to_string(),
        };
        match self.client.call(&req)? {
            Response::MaybeName { name } => Ok(name),
            other => Err(Self::unexpected(other)),
        }
    }
}

/// A reconnecting handle to one `pangea-mgr`: holds at most one idle
/// connection, *checked out* for the duration of each RPC so the lock
/// is never held across socket I/O (a wedged manager socket blocks its
/// own caller, not every other thread's manager traffic). A failed
/// call drops the connection; the next call reconnects.
#[derive(Debug)]
pub struct MgrConn {
    addr: String,
    secret: Option<String>,
    idle: Mutex<Option<ManagerClient>>,
}

impl MgrConn {
    /// Connects once (validating address + handshake) and keeps the
    /// connection as the idle one.
    pub fn connect(addr: &str, secret: Option<&str>) -> Result<Self> {
        let client = ManagerClient::connect(addr, secret)?;
        Ok(Self {
            addr: addr.to_string(),
            secret: secret.map(str::to_string),
            idle: Mutex::new(Some(client)),
        })
    }

    /// Runs `f` with a checked-out manager client, reconnecting when no
    /// idle connection exists. The connection returns to the pool only
    /// on success.
    pub fn with<T>(&self, f: impl FnOnce(&mut ManagerClient) -> Result<T>) -> Result<T> {
        let cached = self.idle.lock().take();
        let mut client = match cached {
            Some(c) => c,
            None => ManagerClient::connect(self.addr.as_str(), self.secret.as_deref())?,
        };
        let out = f(&mut client);
        if out.is_ok() {
            // A concurrent caller may have checked its own connection
            // back in first; last one in wins the single idle slot.
            *self.idle.lock() = Some(client);
        }
        out
    }
}

/// The wire-served implementation of the engine's [`Catalog`] seam:
/// every lookup and registration is an RPC against `pangea-mgr`.
/// Schemes must be declarative ([`PartitionScheme::hash_field`] /
/// [`PartitionScheme::hash_whole`] / round-robin) — closure-keyed UDF
/// schemes cannot cross the wire.
#[derive(Debug)]
pub struct RemoteCatalog {
    mgr: MgrConn,
}

impl RemoteCatalog {
    /// Wraps a manager connection.
    pub fn new(mgr: MgrConn) -> Self {
        Self { mgr }
    }

    fn entry_from_wire(e: pangea_net::WireCatalogEntry) -> CatalogEntry {
        CatalogEntry {
            name: e.name,
            scheme: PartitionScheme::from_spec(&e.scheme),
            group: e.group.map(ReplicaGroupId),
            stats: SetStats {
                objects: e.objects,
                bytes: e.bytes,
            },
        }
    }
}

impl Catalog for RemoteCatalog {
    fn register_set(&self, name: &str, scheme: PartitionScheme) -> Result<()> {
        let spec = scheme.to_spec()?;
        self.mgr.with(|m| m.register_set(name, &spec))
    }

    fn deregister_set(&self, name: &str) -> Result<()> {
        self.mgr.with(|m| m.deregister_set(name))
    }

    fn entry(&self, name: &str) -> Result<Option<CatalogEntry>> {
        Ok(self.mgr.with(|m| m.entry(name))?.map(Self::entry_from_wire))
    }

    fn set_names(&self) -> Result<Vec<String>> {
        self.mgr.with(|m| m.set_names())
    }

    fn add_stats(&self, name: &str, objects: u64, bytes: u64) -> Result<()> {
        self.mgr.with(|m| m.add_stats(name, objects, bytes))
    }

    fn link_replicas(&self, a: &str, b: &str) -> Result<ReplicaGroupId> {
        self.mgr.with(|m| m.link_replicas(a, b))
    }

    fn group_members(&self, group: ReplicaGroupId) -> Result<Vec<String>> {
        self.mgr.with(|m| m.group_members(group))
    }

    fn groups(&self) -> Result<Vec<ReplicaGroupId>> {
        self.mgr.with(|m| m.groups())
    }

    fn best_replica(&self, set: &str, key: &str) -> Result<Option<String>> {
        self.mgr.with(|m| m.best_replica(set, key))
    }
}
