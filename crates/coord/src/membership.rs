//! Cluster membership: worker registration, heartbeats, and liveness.
//!
//! The manager (paper §3.3) tracks which workers exist, where their
//! `pangead` serves, and whether they are alive. Liveness is heartbeat
//! based: a worker that misses heartbeats for longer than the configured
//! timeout is swept to [`WorkerState::Dead`], which is what feeds the
//! replica-based recovery path (§7/§8) — a dead slot keeps its node id
//! so a replacement can re-register *the same slot* and recovery can
//! restore its share in place.
//!
//! Every (re-)registration gets a fresh, strictly increasing
//! [`Epoch`]. Heartbeats and deregistrations must present the slot's
//! current epoch; anything older is a zombie incarnation and is rejected
//! with [`PangeaError::StaleEpoch`].

use pangea_common::{Epoch, NodeId, PangeaError, Result};
use pangea_net::{WireWorker, WorkerState};
use parking_lot::Mutex;
use std::time::{Duration, Instant};

#[derive(Debug, Clone)]
struct Slot {
    addr: String,
    epoch: Epoch,
    state: WorkerState,
    last_beat: Instant,
}

#[derive(Debug, Default)]
struct Inner {
    slots: Vec<Slot>,
    next_epoch: u64,
}

/// The manager's membership table.
#[derive(Debug)]
pub struct Membership {
    inner: Mutex<Inner>,
    liveness_timeout: Duration,
}

impl Membership {
    /// An empty table sweeping workers dead after `liveness_timeout`
    /// without a heartbeat.
    pub fn new(liveness_timeout: Duration) -> Self {
        Self {
            inner: Mutex::new(Inner::default()),
            liveness_timeout,
        }
    }

    /// The configured liveness timeout.
    pub fn liveness_timeout(&self) -> Duration {
        self.liveness_timeout
    }

    /// The longest interval any currently-alive worker has gone without
    /// a heartbeat — the fleet's heartbeat staleness. `None` with no
    /// alive workers. Feeds the manager's `mgr.heartbeat_staleness_ms`
    /// gauge: a value creeping toward the liveness timeout flags a
    /// worker about to be swept dead.
    pub fn max_staleness(&self) -> Option<Duration> {
        let inner = self.inner.lock();
        inner
            .slots
            .iter()
            .filter(|slot| slot.state == WorkerState::Alive)
            .map(|slot| slot.last_beat.elapsed())
            .max()
    }

    /// Per-worker heartbeat staleness in milliseconds, for every
    /// currently-Alive slot. The max gauge above says *that* a worker
    /// lags; this says *which* — the scrape loop folds it into each
    /// worker's retained series so `top --watch` can name the laggard.
    pub fn staleness_by_node(&self) -> Vec<(NodeId, u64)> {
        let inner = self.inner.lock();
        inner
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.state == WorkerState::Alive)
            .map(|(i, s)| (NodeId(i as u32), s.last_beat.elapsed().as_millis() as u64))
            .collect()
    }

    /// Registers a worker serving at `addr`. With `slot = None` the next
    /// free node id is assigned; with an explicit slot, a replacement
    /// re-registers a Dead/Left slot (bumping its epoch). Registering
    /// over an Alive slot is an error — kill or deregister it first.
    /// Liveness is swept first, so a replacement for a silent worker is
    /// accepted even when no other request has triggered a sweep (the
    /// single-worker-fleet case).
    pub fn register(&self, addr: &str, slot: Option<NodeId>) -> Result<(NodeId, Epoch)> {
        let mut inner = self.inner.lock();
        Self::sweep_locked(&mut inner, self.liveness_timeout);
        inner.next_epoch += 1;
        let epoch = Epoch(inner.next_epoch);
        let fresh = Slot {
            addr: addr.to_string(),
            epoch,
            state: WorkerState::Alive,
            last_beat: Instant::now(),
        };
        let node = match slot {
            None => {
                inner.slots.push(fresh);
                NodeId(inner.slots.len() as u32 - 1)
            }
            Some(n) => {
                let i = n.raw() as usize;
                match i.cmp(&inner.slots.len()) {
                    std::cmp::Ordering::Less => {
                        let existing = &mut inner.slots[i];
                        if existing.state == WorkerState::Alive {
                            return Err(PangeaError::usage(format!(
                                "slot {n} is occupied by an alive worker at {}",
                                existing.addr
                            )));
                        }
                        *existing = fresh;
                        n
                    }
                    std::cmp::Ordering::Equal => {
                        inner.slots.push(fresh);
                        n
                    }
                    std::cmp::Ordering::Greater => {
                        return Err(PangeaError::usage(format!(
                            "slot {n} is beyond the next free slot ({})",
                            inner.slots.len()
                        )))
                    }
                }
            }
        };
        Ok((node, epoch))
    }

    /// Validates `(node, epoch)` against the table, returning the slot
    /// index on success.
    fn check_epoch(inner: &Inner, node: NodeId, epoch: Epoch) -> Result<usize> {
        let i = node.raw() as usize;
        let slot = inner
            .slots
            .get(i)
            .ok_or(PangeaError::NodeUnavailable(node))?;
        if slot.epoch != epoch {
            return Err(PangeaError::StaleEpoch {
                node,
                held: epoch,
                current: slot.epoch,
            });
        }
        Ok(i)
    }

    /// Records a heartbeat. A slot swept Dead that heartbeats again with
    /// its *current* epoch revives (it was a pause, not a machine loss);
    /// once a replacement has re-registered the slot, the old
    /// incarnation's epoch is stale and its heartbeats are rejected.
    pub fn heartbeat(&self, node: NodeId, epoch: Epoch) -> Result<()> {
        let mut inner = self.inner.lock();
        let i = Self::check_epoch(&inner, node, epoch)?;
        let slot = &mut inner.slots[i];
        if slot.state == WorkerState::Left {
            return Err(PangeaError::usage(format!("{node} has deregistered")));
        }
        slot.state = WorkerState::Alive;
        slot.last_beat = Instant::now();
        Ok(())
    }

    /// Clean shutdown: marks the slot Left so it is not fed to recovery.
    pub fn deregister(&self, node: NodeId, epoch: Epoch) -> Result<()> {
        let mut inner = self.inner.lock();
        let i = Self::check_epoch(&inner, node, epoch)?;
        inner.slots[i].state = WorkerState::Left;
        Ok(())
    }

    /// Sweeps liveness: Alive slots whose last heartbeat is older than
    /// the timeout become Dead. Returns the newly dead nodes.
    pub fn sweep(&self) -> Vec<NodeId> {
        Self::sweep_locked(&mut self.inner.lock(), self.liveness_timeout)
    }

    fn sweep_locked(inner: &mut Inner, timeout: Duration) -> Vec<NodeId> {
        let mut newly_dead = Vec::new();
        for (i, slot) in inner.slots.iter_mut().enumerate() {
            if slot.state == WorkerState::Alive && slot.last_beat.elapsed() > timeout {
                slot.state = WorkerState::Dead;
                newly_dead.push(NodeId(i as u32));
            }
        }
        newly_dead
    }

    /// A snapshot of every slot, ascending by node id.
    pub fn workers(&self) -> Vec<WireWorker> {
        self.inner
            .lock()
            .slots
            .iter()
            .enumerate()
            .map(|(i, s)| WireWorker {
                node: i as u32,
                addr: s.addr.clone(),
                epoch: s.epoch.raw(),
                state: s.state,
            })
            .collect()
    }

    /// Total slots ever registered.
    pub fn num_slots(&self) -> u32 {
        self.inner.lock().slots.len() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_assigns_dense_slots_and_fresh_epochs() {
        let m = Membership::new(Duration::from_secs(60));
        let (n0, e0) = m.register("127.0.0.1:1", None).unwrap();
        let (n1, e1) = m.register("127.0.0.1:2", None).unwrap();
        assert_eq!((n0, n1), (NodeId(0), NodeId(1)));
        assert!(e1 > e0, "epochs strictly increase");
        assert_eq!(m.num_slots(), 2);
        assert!(m.workers().iter().all(|w| w.state == WorkerState::Alive));
    }

    #[test]
    fn explicit_slot_registration_replaces_dead_only() {
        let m = Membership::new(Duration::from_millis(50));
        let (n0, e0) = m.register("127.0.0.1:1", None).unwrap();
        // Alive slot cannot be stolen.
        assert!(m.register("127.0.0.1:9", Some(n0)).is_err());
        std::thread::sleep(Duration::from_millis(80));
        // No explicit sweep: register itself sweeps, so a replacement
        // for a silent worker is accepted (the single-worker case).
        let (n0b, e0b) = m.register("127.0.0.1:9", Some(n0)).unwrap();
        assert_eq!(n0b, n0);
        assert!(e0b > e0);
        // The zombie's old epoch is now stale.
        assert!(matches!(
            m.heartbeat(n0, e0),
            Err(PangeaError::StaleEpoch { .. })
        ));
        m.heartbeat(n0, e0b).unwrap();
    }

    #[test]
    fn missed_heartbeats_sweep_dead_and_a_beat_revives() {
        let m = Membership::new(Duration::from_millis(10));
        let (n, e) = m.register("127.0.0.1:1", None).unwrap();
        assert!(m.sweep().is_empty(), "fresh registration counts as a beat");
        std::thread::sleep(Duration::from_millis(25));
        assert_eq!(m.sweep(), vec![n]);
        assert_eq!(m.workers()[0].state, WorkerState::Dead);
        assert!(m.sweep().is_empty(), "already dead; not newly dead");
        // Same-epoch heartbeat revives (GC pause, not machine loss).
        m.heartbeat(n, e).unwrap();
        assert_eq!(m.workers()[0].state, WorkerState::Alive);
    }

    #[test]
    fn deregistered_workers_leave_and_stay_left() {
        let m = Membership::new(Duration::from_secs(60));
        let (n, e) = m.register("127.0.0.1:1", None).unwrap();
        m.deregister(n, e).unwrap();
        assert_eq!(m.workers()[0].state, WorkerState::Left);
        assert!(m.heartbeat(n, e).is_err(), "left workers cannot beat");
        assert!(m.sweep().is_empty(), "left is not dead; recovery skips it");
    }

    #[test]
    fn staleness_is_reported_per_alive_slot() {
        let m = Membership::new(Duration::from_secs(60));
        let (n0, _) = m.register("127.0.0.1:1", None).unwrap();
        let (n1, e1) = m.register("127.0.0.1:2", None).unwrap();
        std::thread::sleep(Duration::from_millis(30));
        m.heartbeat(n1, e1).unwrap();
        let by_node: std::collections::BTreeMap<_, _> = m.staleness_by_node().into_iter().collect();
        assert!(by_node[&n0] >= 30, "silent worker shows its lag");
        assert!(by_node[&n1] < by_node[&n0], "fresh beat resets");
        // Left slots disappear from the staleness report.
        m.deregister(n1, e1).unwrap();
        assert_eq!(m.staleness_by_node().len(), 1);
    }

    #[test]
    fn unknown_slots_and_gaps_are_errors() {
        let m = Membership::new(Duration::from_secs(60));
        assert!(matches!(
            m.heartbeat(NodeId(3), Epoch(1)),
            Err(PangeaError::NodeUnavailable(_))
        ));
        assert!(m.register("a", Some(NodeId(2))).is_err(), "gap");
        // Registering the next slot explicitly is allowed (deterministic
        // bring-up).
        assert_eq!(m.register("a", Some(NodeId(0))).unwrap().0, NodeId(0));
    }
}
