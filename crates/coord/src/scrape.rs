//! The manager's fleet scrape loop — continuous telemetry collection.
//!
//! A background thread (spawned by [`MgrServer::bind_full`]) wakes every
//! scrape interval and:
//!
//! 1. **Self-scrapes** the manager: its own registry snapshot and span
//!    ring fold into the retained [`ScrapeStore`] as node `mgr`.
//! 2. **Scrapes every alive worker** with the *incremental*
//!    `MetricsDump` form: each worker's span cursor persists across
//!    scrapes, so a quiet fleet ships metrics but zero spans, scrape
//!    after scrape. A ring that wrapped past the cursor surfaces as a
//!    sequence gap — the loss is counted into the store's dropped
//!    ledger and logged, never silently absorbed into a
//!    complete-looking trace.
//! 3. **Exports windowed rates** back into the manager's own registry
//!    as `fleet.<node>.*` gauges (RPCs/s, bytes/s, latency p50/p99 over
//!    the window, resource gauges, per-worker heartbeat staleness).
//!    `top --watch` reads them with the ordinary `MetricsDump` RPC —
//!    continuous rates cost no new wire surface.
//!
//! Scrape failures are per-worker and non-fatal: a dead daemon costs
//! one `mgr.scrape.errors` increment and its connection, nothing else.
//!
//! [`MgrServer::bind_full`]: crate::daemon::MgrServer::bind_full
//! [`ScrapeStore`]: pangea_obs::ScrapeStore

use crate::daemon::ManagerDaemon;
use pangea_common::{FxHashMap, Result};
use pangea_net::{PangeaClient, WireMetric, WireSpan, WorkerState};
use pangea_obs::timeseries::{ROLLUP_RPC_BYTES, ROLLUP_RPC_COUNT, ROLLUP_RPC_LATENCY};
use pangea_obs::{names, MetricSnapshot, MetricValue, SpanRecord};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The series name per-worker heartbeat staleness is retained under in
/// each worker's scrape store slice. The manager is the one measuring —
/// no worker registry carries this metric.
pub const STALENESS_SERIES: &str = "heartbeat.staleness_ms";

/// Converts scraped wire metrics back into registry-shaped snapshots.
pub(crate) fn snapshot_of(metrics: &[WireMetric]) -> Vec<MetricSnapshot> {
    metrics
        .iter()
        .map(|m| match m {
            WireMetric::Counter { name, value } => MetricSnapshot {
                name: name.clone(),
                value: MetricValue::Counter(*value),
            },
            WireMetric::Gauge { name, value } => MetricSnapshot {
                name: name.clone(),
                value: MetricValue::Gauge(*value),
            },
            WireMetric::Histogram {
                name,
                count,
                sum,
                buckets,
            } => MetricSnapshot {
                name: name.clone(),
                value: MetricValue::Histogram {
                    count: *count,
                    sum: *sum,
                    buckets: buckets.clone(),
                },
            },
        })
        .collect()
}

/// Converts one scraped wire span into the store's `(seq, record)` form.
pub(crate) fn record_of(s: WireSpan) -> (u64, SpanRecord) {
    (
        s.seq,
        SpanRecord {
            job: s.job,
            span: s.span,
            parent: s.parent,
            op: s.op,
            peer: s.peer,
            start_ns: s.start_ns,
            end_ns: s.end_ns,
            bytes: s.bytes,
            outcome: s.outcome,
        },
    )
}

/// The inverse of [`record_of`] — serving a stored span back out over
/// the `TraceQuery` RPC.
pub(crate) fn wire_of(seq: u64, r: SpanRecord) -> WireSpan {
    WireSpan {
        seq,
        job: r.job,
        span: r.span,
        parent: r.parent,
        op: r.op,
        peer: r.peer,
        start_ns: r.start_ns,
        end_ns: r.end_ns,
        bytes: r.bytes,
        outcome: r.outcome,
    }
}

/// Per-worker scraper state that must survive between ticks: the pooled
/// connection (keyed by the address it was opened against, so a slot
/// replacement at a new address reconnects) and the incremental span
/// cursor.
#[derive(Default)]
struct ScraperState {
    clients: FxHashMap<u32, (String, PangeaClient)>,
    cursors: FxHashMap<u32, u64>,
    mgr_cursor: u64,
}

/// Spawns the scrape thread; `stop` is shared with the liveness ticker.
pub(crate) fn spawn(
    daemon: Arc<ManagerDaemon>,
    secret: Option<String>,
    interval: Duration,
    stop: Arc<AtomicBool>,
) -> Result<JoinHandle<()>> {
    let interval = interval.max(Duration::from_millis(10));
    Ok(std::thread::Builder::new()
        .name("pangea-mgr-scrape".into())
        .spawn(move || {
            let mut state = ScraperState::default();
            loop {
                let deadline = Instant::now() + interval;
                while Instant::now() < deadline {
                    if stop.load(Ordering::SeqCst) {
                        return;
                    }
                    std::thread::sleep(
                        Duration::from_millis(5)
                            .min(deadline.saturating_duration_since(Instant::now())),
                    );
                }
                scrape_once(&daemon, secret.as_deref(), interval, &mut state);
            }
        })?)
}

/// One full scrape pass (see the module docs for the three stages).
fn scrape_once(
    daemon: &ManagerDaemon,
    secret: Option<&str>,
    interval: Duration,
    state: &mut ScraperState,
) {
    let store = daemon.scrape_store();
    let reg = daemon.obs().registry();
    let at = store.now_ms();

    // -- 1. the manager itself ------------------------------------------
    // Freshen the fleet-max staleness gauge exactly like the MetricsDump
    // arm, then snapshot: the retained series must match what an RPC
    // dump at this instant would have shown.
    let staleness = daemon
        .membership()
        .max_staleness()
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    reg.gauge(names::MGR_HEARTBEAT_STALENESS_MS).set(staleness);
    store.record_metrics("mgr", at, &reg.snapshot());
    let (spans, gap) = daemon.obs().ring().since_with_gap(state.mgr_cursor);
    if gap > 0 {
        store.note_dropped("mgr", gap);
    }
    if let Some((last_seq, _)) = spans.last() {
        state.mgr_cursor = last_seq + 1;
    }
    store.record_spans("mgr", spans);

    // -- 2. every alive worker ------------------------------------------
    let workers = daemon.membership().workers();
    for w in &workers {
        if w.state != WorkerState::Alive {
            state.clients.remove(&w.node);
            continue;
        }
        let name = format!("worker{}", w.node);
        let cached = match state.clients.remove(&w.node) {
            Some((addr, client)) if addr == w.addr => Some(client),
            _ => None,
        };
        let client = match cached {
            Some(c) => Ok(c),
            None => PangeaClient::connect_with_secret(&w.addr, secret),
        };
        let from = state.cursors.get(&w.node).copied().unwrap_or(0);
        let scraped = client.and_then(|mut c| {
            c.metrics_dump_since(from)
                .map(|(metrics, spans, cursor)| (c, metrics, spans, cursor))
        });
        match scraped {
            Ok((client, metrics, spans, cursor)) => {
                // A first span sequence beyond the cursor means the
                // worker's ring wrapped past us: that history is gone.
                // Count and log it — a trace stitched later must be
                // able to say "incomplete" instead of looking whole.
                let gap = spans
                    .first()
                    .map(|s| s.seq.saturating_sub(from))
                    .unwrap_or(0);
                if gap > 0 {
                    store.note_dropped(&name, gap);
                    reg.counter(names::MGR_SCRAPE_DROPPED_SPANS).add(gap);
                    eprintln!(
                        "pangea-mgr: scrape of {name} lost {gap} spans \
                         (ring wrapped past cursor {from})"
                    );
                }
                store.record_metrics(&name, at, &snapshot_of(&metrics));
                store.record_spans(&name, spans.into_iter().map(record_of).collect());
                state.cursors.insert(w.node, cursor);
                state.clients.insert(w.node, (w.addr.clone(), client));
            }
            Err(e) => {
                reg.counter(names::MGR_SCRAPE_ERRORS).inc();
                eprintln!("pangea-mgr: scrape of {name} at {} failed: {e}", w.addr);
            }
        }
    }

    // Per-worker heartbeat staleness, measured manager-side, folded into
    // each worker's series — `top --watch` names the laggard, not just
    // the fleet max.
    for (node, ms) in daemon.membership().staleness_by_node() {
        store.record_metrics(
            &format!("worker{}", node.raw()),
            at,
            &[MetricSnapshot {
                name: STALENESS_SERIES.to_string(),
                value: MetricValue::Gauge(ms),
            }],
        );
    }

    // -- 3. windowed rates back out as fleet.* gauges -------------------
    let window_ms = (interval.as_millis() as u64).saturating_mul(5).max(10_000);
    for node in store.nodes() {
        let rate = store.counter_rate_per_sec(&node, ROLLUP_RPC_COUNT, window_ms);
        reg.gauge(&names::fleet(&node, names::FLEET_RPC_PER_SEC))
            .set(rate.round() as u64);
        let rate = store.counter_rate_per_sec(&node, ROLLUP_RPC_BYTES, window_ms);
        reg.gauge(&names::fleet(&node, names::FLEET_BYTES_PER_SEC))
            .set(rate.round() as u64);
        reg.gauge(&names::fleet(&node, names::FLEET_RPC_P50_NS))
            .set(store.histogram_window_quantile(&node, ROLLUP_RPC_LATENCY, window_ms, 0.50));
        reg.gauge(&names::fleet(&node, names::FLEET_RPC_P99_NS))
            .set(store.histogram_window_quantile(&node, ROLLUP_RPC_LATENCY, window_ms, 0.99));
        for (series, gauge) in [
            (names::MEM_SHARE_BYTES, "share_bytes"),
            (names::MEM_SESSION_BYTES, "session_bytes"),
            (names::POOL_PEERS, "pool_peers"),
            (STALENESS_SERIES, "staleness_ms"),
            (names::TRACE_DROPPED_SPANS, "ring_dropped_spans"),
            (names::PAGING_HITS, "paging_hits"),
            (names::PAGING_MISSES, "paging_misses"),
            (names::PAGING_EVICTIONS, "paging_evictions"),
            (names::PAGING_SPILL_BYTES, "spill_bytes"),
            (names::PAGING_POOL_USED_BYTES, "pool_used"),
            (names::PAGING_POOL_CAPACITY_BYTES, "pool_capacity"),
        ] {
            if let Some(v) = store.latest_scalar(&node, series) {
                reg.gauge(&names::fleet(&node, gauge)).set(v);
            }
        }
        let lost = store.node_dropped(&node);
        if lost > 0 {
            reg.gauge(&names::fleet(&node, names::FLEET_SCRAPE_DROPPED_SPANS))
                .set(lost);
        }
    }
    reg.counter(names::MGR_SCRAPE_TICKS).inc();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_and_record_forms_convert_losslessly() {
        let w = WireSpan {
            seq: 9,
            job: 1,
            span: 2,
            parent: 3,
            op: "TaskRun".into(),
            peer: "p".into(),
            start_ns: 4,
            end_ns: 5,
            bytes: 6,
            outcome: "ok".into(),
        };
        let (seq, rec) = record_of(w.clone());
        assert_eq!(wire_of(seq, rec), w);
    }

    #[test]
    fn snapshots_convert_all_three_kinds() {
        let wire = vec![
            WireMetric::Counter {
                name: "c".into(),
                value: 1,
            },
            WireMetric::Gauge {
                name: "g".into(),
                value: 2,
            },
            WireMetric::Histogram {
                name: "h".into(),
                count: 3,
                sum: 4,
                buckets: vec![0, 3],
            },
        ];
        let snaps = snapshot_of(&wire);
        assert_eq!(snaps.len(), 3);
        assert_eq!(snaps[0].value, MetricValue::Counter(1));
        assert_eq!(snaps[1].value, MetricValue::Gauge(2));
        assert!(matches!(
            &snaps[2].value,
            MetricValue::Histogram { count: 3, sum: 4, buckets } if buckets == &vec![0, 3]
        ));
    }
}
