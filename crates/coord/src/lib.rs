//! # pangea-coord
//!
//! The cluster control plane of the Pangea reproduction (paper §3.3):
//! everything that turns a pile of `pangead` storage daemons into a
//! managed deployment.
//!
//! * [`ManagerDaemon`] / [`MgrServer`] — `pangea-mgr`, the light-weight
//!   manager daemon: serves the locality-set catalog + statistics
//!   database and tracks cluster membership (registration, heartbeats,
//!   liveness sweeping, epochs) over the same framed protocol `pangead`
//!   speaks. Also available as the `pangea-mgr` binary.
//! * [`Membership`] — the registration/heartbeat/epoch table behind the
//!   daemon; dead-worker detection feeds the recovery path (§7/§8).
//! * [`ManagerClient`] / [`RemoteCatalog`] — typed manager RPCs, and the
//!   wire-served implementation of the engine's catalog seam.
//! * [`RemoteCluster`] / [`RemoteWorkers`] — the client frontend driving
//!   N real `pangead` processes through `pangea-cluster`'s generic
//!   engine: create distributed sets via the wire catalog, dispatch with
//!   per-destination batching, run distributed map-shuffles (the driver
//!   ships declarative tasks; workers stream the mapped output straight
//!   to each other), and recover dead workers — with no shared memory
//!   anywhere.
//! * [`WorkerAgent`] — the worker-side agent: registers the local
//!   `pangead`, heartbeats in the background, deregisters on clean exit.
//!
//! The `pangead` binary also lives here (it grew `--manager` /
//! `--advertise` / `--slot` / `--secret` flags), so both daemons ship
//! from one crate.

pub mod cli;
pub mod client;
pub mod daemon;
pub mod membership;
pub mod remote;
pub mod scrape;
pub mod signals;
pub mod top;
pub mod trace;

pub use client::{ManagerClient, MgrConn, RemoteCatalog};
pub use daemon::{
    ManagerDaemon, MgrServer, DEFAULT_LIVENESS_TIMEOUT, DEFAULT_SCRAPE_INTERVAL, TRACE_CHUNK,
};
pub use membership::Membership;
pub use remote::{RemoteCluster, RemoteShuffle, RemoteWorkers, WorkerAgent, DEFAULT_HEARTBEAT};
pub use signals::wait_for_termination;
