//! [`RemoteCluster`] — the client frontend that drives a real Pangea
//! deployment: N `pangead` processes plus one `pangea-mgr`, with no
//! shared memory anywhere. It speaks only `PangeaClient`/manager RPCs
//! and reuses `pangea-cluster`'s generic engine, so distributed-set
//! dispatch (batched), replication, and recovery are the *same code*
//! that runs in `SimCluster` — only the [`WorkerBackend`] and catalog
//! seams differ.
//!
//! Byte accounting: every record appended to a remote worker counts its
//! payload length once in the shared client-side ledger (and once in
//! the receiving daemon's counters), exactly like a `SimNetwork`
//! transfer of the same record — so a load measured here matches the
//! same load on the simulation. Scans, which are free shared-memory
//! reads in the simulation, *do* cross the wire here and are charged to
//! the same ledger (the driver-mediated recovery cost; see DESIGN.md
//! §control-plane).

use crate::client::{ManagerClient, MgrConn, RemoteCatalog};
use pangea_cluster::engine::{
    Catalog, ClusterCore, DispatchConfig, EngineSet, MapShuffleReport, PeerRepair, RecordSink,
    RecoveryReport, ReplicaReport, TaskExec, WorkerBackend,
};
use pangea_cluster::{PartitionKind, PartitionScheme};
use pangea_common::ReplicaGroupId;
use pangea_common::{fx_hash64, Epoch, FxHashMap, IoStats, NodeId, PangeaError, Result};
use pangea_net::{
    MapSpec, PangeaClient, ReduceSpec, RepairFilter, RepairPushReport, SchemeSpec, TaskReport,
    TaskSpec, WireSpan, WireWorker, WorkerState,
};
use pangea_obs::{Obs, SpanRecord, TraceCtx};
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Default heartbeat cadence for [`WorkerAgent`]s.
pub const DEFAULT_HEARTBEAT: Duration = Duration::from_millis(500);

struct RemoteWorkersInner {
    /// Slot `i` holds the advertised address of worker `i` while it is
    /// alive; `None` marks a dead/left slot.
    slots: RwLock<Vec<Option<String>>>,
    /// One pooled idle client per worker, keyed with the advertised
    /// address it was opened against (so a slot replacement at a new
    /// address never reuses a stale connection). The pool holds only
    /// *idle* connections: a client is checked out for the duration of
    /// an RPC, so one slow or hung worker never blocks RPCs to others.
    clients: Mutex<FxHashMap<NodeId, (String, PangeaClient)>>,
    secret: Option<String>,
    /// Shared payload-byte ledger across all per-worker clients.
    stats: Arc<IoStats>,
    /// Driver-side observability bundle over the same registry as
    /// `stats`: every RPC the driver issues lands one span in its ring,
    /// correlated by the active job id.
    obs: Obs,
    /// The `(job id, job-root span id)` for the RPCs currently in
    /// flight (set for the duration of a `map_shuffle`/`map_reduce`/
    /// recovery call, `None` between jobs). Shared across the per-slot
    /// orchestration threads. Every driver RPC span parents under the
    /// job root, so one job stitches into exactly one tree.
    job: Mutex<Option<(u64, u64)>>,
    /// The most recently allocated job id — what a caller correlates
    /// worker-side spans against after a job returns.
    last_job: Mutex<Option<u64>>,
    /// The driver ring's incremental export cursor: spans below it have
    /// already been pushed to the manager's fleet span store. Drivers
    /// are transient and unscrapable, so they *push* their `DriverRpc`
    /// root spans after each traced job instead of being polled.
    trace_cursor: Mutex<u64>,
    /// Test-only rendezvous invoked at the start of each worker's map
    /// task (before the `TaskRun` RPC is issued) — lets a fault-injection
    /// test prove per-worker tasks genuinely overlap, and inject a kill
    /// at a deterministic point. Mirrors `RemoteCluster`'s recovery hook.
    task_hook: Mutex<Option<Arc<dyn Fn(NodeId) + Send + Sync>>>,
    /// Pipeline window stamped on every shipped `TaskSpec`: how many
    /// ingest batches each mapper may keep in flight per destination.
    /// `0` (the default) defers to the executing daemon's own default;
    /// `1` forces strict-serial round trips — the pre-pipelining wire
    /// behavior, kept addressable for A/B benchmarks.
    pipeline_window: AtomicU32,
}

impl std::fmt::Debug for RemoteWorkersInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteWorkersInner")
            .field("slots", &self.slots)
            .finish()
    }
}

/// The remote [`WorkerBackend`]: every operation is an RPC against the
/// slot's `pangead`. Cheap to clone.
#[derive(Debug, Clone)]
pub struct RemoteWorkers {
    inner: Arc<RemoteWorkersInner>,
}

impl RemoteWorkers {
    fn new(secret: Option<&str>) -> Self {
        let stats = Arc::new(IoStats::new());
        Self {
            inner: Arc::new(RemoteWorkersInner {
                slots: RwLock::new(Vec::new()),
                clients: Mutex::new(FxHashMap::default()),
                secret: secret.map(str::to_string),
                stats: Arc::clone(&stats),
                obs: Obs::with_registry(stats.registry().clone()),
                job: Mutex::new(None),
                last_job: Mutex::new(None),
                trace_cursor: Mutex::new(0),
                task_hook: Mutex::new(None),
                pipeline_window: AtomicU32::new(0),
            }),
        }
    }

    /// Sets the pipeline window shipped with every task (`0` = let each
    /// daemon use its default, `1` = strict-serial). Takes effect on
    /// the next job; in-flight tasks keep the window they shipped with.
    pub fn set_pipeline_window(&self, window: u32) {
        self.inner.pipeline_window.store(window, Ordering::Relaxed);
    }

    /// The shared client-side wire ledger (payload net bytes).
    pub fn stats(&self) -> &Arc<IoStats> {
        &self.inner.stats
    }

    /// The driver-side observability bundle: the metrics registry shared
    /// with [`RemoteWorkers::stats`] plus the span ring holding one
    /// driver span per RPC issued under a traced job.
    pub fn obs(&self) -> &Obs {
        &self.inner.obs
    }

    /// The id of the most recently traced job (`map_shuffle`,
    /// `map_reduce`, or a recovery), or `None` before the first one.
    /// Worker-side `MetricsDump` spans carry the same id.
    pub fn last_job(&self) -> Option<u64> {
        *self.inner.last_job.lock()
    }

    /// Drains the driver ring's spans past the export cursor into wire
    /// form, advancing the cursor. Returns the spans plus the number of
    /// spans the ring evicted before they could be exported (nonzero
    /// when jobs outpace pushes — the manager counts the loss so traces
    /// can report themselves incomplete).
    fn drain_trace(&self) -> (Vec<WireSpan>, u64) {
        let mut cursor = self.inner.trace_cursor.lock();
        let (spans, gap) = self.inner.obs.ring().since_with_gap(*cursor);
        if let Some((last_seq, _)) = spans.last() {
            *cursor = last_seq + 1;
        }
        let wire = spans
            .into_iter()
            .map(|(seq, r)| WireSpan {
                seq,
                job: r.job,
                span: r.span,
                parent: r.parent,
                op: r.op,
                peer: r.peer,
                start_ns: r.start_ns,
                end_ns: r.end_ns,
                bytes: r.bytes,
                outcome: r.outcome,
            })
            .collect();
        (wire, gap)
    }

    /// Scopes a fresh trace job id around `f`: every RPC issued from
    /// any thread while `f` runs carries `TraceCtx { job, .. }` on the
    /// wire and records a driver span under it. The whole scope is
    /// itself recorded as one `DriverJob` root span; per-RPC driver
    /// spans parent under it, so a job's fleet-wide spans stitch into
    /// exactly one tree with the driver at the root.
    fn with_job<T>(&self, f: impl FnOnce() -> T) -> T {
        let job = pangea_obs::next_job_id();
        let root = pangea_obs::next_span_id();
        *self.inner.job.lock() = Some((job, root));
        *self.inner.last_job.lock() = Some(job);
        let start = self.inner.obs.now_ns();
        let out = f();
        *self.inner.job.lock() = None;
        self.inner.obs.ring().record(SpanRecord {
            job,
            span: root,
            parent: 0,
            op: "DriverJob".to_string(),
            peer: String::new(),
            start_ns: start,
            end_ns: self.inner.obs.now_ns(),
            bytes: 0,
            outcome: "ok".to_string(),
        });
        out
    }

    fn addr_of(&self, n: NodeId) -> Result<String> {
        self.inner
            .slots
            .read()
            .get(n.raw() as usize)
            .and_then(Clone::clone)
            .ok_or(PangeaError::NodeUnavailable(n))
    }

    /// Installs a fresh membership snapshot: alive slots keep (or gain)
    /// their address, everything else is evicted along with its cached
    /// client connection.
    fn install_membership(&self, workers: &[WireWorker]) {
        let len = workers
            .iter()
            .map(|w| w.node as usize + 1)
            .max()
            .unwrap_or(0);
        let mut slots = vec![None; len];
        for w in workers {
            if w.state == WorkerState::Alive {
                slots[w.node as usize] = Some(w.addr.clone());
            }
        }
        let mut clients = self.inner.clients.lock();
        clients.retain(|n, (opened_against, _)| {
            slots
                .get(n.raw() as usize)
                .and_then(|s| s.as_deref())
                .is_some_and(|addr| addr == opened_against)
        });
        *self.inner.slots.write() = slots;
    }

    /// Runs `f` (a single RPC — it may be retried once) with the slot's
    /// pooled client, connecting on first use. The client is checked
    /// *out* of the pool for the call — the pool lock is never held
    /// across socket I/O, so a hung worker cannot wedge RPCs to other
    /// workers (or membership refreshes).
    ///
    /// A *pooled* connection may have gone stale while idle (worker
    /// restarted at the same address). An `Io` failure on a pooled
    /// connection means the request got no response byte — `pangead`
    /// always writes a response before closing, and mid-response
    /// failures surface as `Corruption` — so, exactly like
    /// `TcpTransport::request`, the call is retried once on a fresh
    /// connection.
    ///
    /// A fresh connection that *also* fails at the socket level (refused,
    /// reset, EOF mid-request) means the worker process is gone even if
    /// the membership snapshot still lists it: the error surfaces as the
    /// typed [`PangeaError::NodeUnavailable`], so a batched dispatch
    /// flushing into a freshly-dead worker fails the same way it would
    /// against an evicted slot — callers dispatch on the variant, not on
    /// error prose. Non-I/O failures propagate unchanged.
    fn with_client<T>(&self, n: NodeId, f: impl Fn(&mut PangeaClient) -> Result<T>) -> Result<T> {
        let addr = self.addr_of(n)?;
        let job = *self.inner.job.lock();
        let ctx = job.map(|(job, _)| TraceCtx {
            job,
            span: pangea_obs::next_span_id(),
        });
        let start = self.inner.obs.now_ns();
        let out = self.with_client_at(n, &addr, ctx, f);
        if let Some(ctx) = ctx {
            // One driver span per RPC: the root of the worker-side span
            // tree this request grows (the receiving daemon records its
            // own child span with `parent = ctx.span`). The outcome is
            // the *final* result after the stale-connection retry — a
            // killed worker surfaces here as the typed
            // `NodeUnavailable` text.
            self.inner.obs.ring().record(SpanRecord {
                job: ctx.job,
                span: ctx.span,
                parent: job.map(|(_, root)| root).unwrap_or(0),
                op: "DriverRpc".to_string(),
                peer: addr,
                start_ns: start,
                end_ns: self.inner.obs.now_ns(),
                bytes: 0,
                outcome: match &out {
                    Ok(_) => "ok".to_string(),
                    Err(e) => e.to_string(),
                },
            });
        }
        out
    }

    /// The untraced body of [`RemoteWorkers::with_client`]: pool
    /// checkout, the stale-idle-connection retry, and the Io →
    /// `NodeUnavailable` mapping.
    fn with_client_at<T>(
        &self,
        n: NodeId,
        addr: &str,
        ctx: Option<TraceCtx>,
        f: impl Fn(&mut PangeaClient) -> Result<T>,
    ) -> Result<T> {
        let cached = self.inner.clients.lock().remove(&n);
        if let Some((opened_against, mut client)) = cached {
            if opened_against == addr {
                client.set_trace(ctx);
                match f(&mut client) {
                    Ok(out) => {
                        self.check_in(n, addr.to_string(), client);
                        return Ok(out);
                    }
                    // Stale idle connection: provably unprocessed, retry
                    // below on a fresh one.
                    Err(PangeaError::Io(_)) => {}
                    Err(e) => return Err(e),
                }
            }
        }
        let mut client = PangeaClient::connect_with(
            addr,
            self.inner.secret.as_deref(),
            Some(Arc::clone(&self.inner.stats)),
        )
        .map_err(|e| match e {
            PangeaError::Io(_) => PangeaError::NodeUnavailable(n),
            other => PangeaError::Remote(format!("connecting {n} at {addr}: {other}")),
        })?;
        client.set_trace(ctx);
        let out = f(&mut client);
        match out {
            Ok(out) => {
                self.check_in(n, addr.to_string(), client);
                Ok(out)
            }
            Err(PangeaError::Io(_)) => Err(PangeaError::NodeUnavailable(n)),
            Err(e) => Err(e),
        }
    }

    /// Returns an idle connection to the pool. Concurrent callers may
    /// have raced a connection in; last one in wins the single idle
    /// slot, the loser just closes.
    fn check_in(&self, n: NodeId, addr: String, mut client: PangeaClient) {
        client.set_trace(None);
        self.inner.clients.lock().insert(n, (addr, client));
    }

    fn shuffle_create(&self, n: NodeId, name: &str, partitions: u32) -> Result<()> {
        self.with_client(n, |c| c.shuffle_create(name, partitions, None))
    }

    fn shuffle_send(
        &self,
        n: NodeId,
        name: &str,
        partition: u32,
        records: &[Vec<u8>],
    ) -> Result<()> {
        self.with_client(n, |c| c.shuffle_send(name, partition, records).map(|_| ()))
    }

    fn shuffle_finish(&self, n: NodeId, name: &str) -> Result<()> {
        self.with_client(n, |c| c.shuffle_finish(name))
    }
}

/// A sink appending to one remote set: each batch is one `Append` RPC
/// (the daemon seals its write after every request, so `finish` is a
/// no-op here).
#[derive(Debug)]
struct RemoteSink {
    workers: RemoteWorkers,
    node: NodeId,
    set: String,
}

impl RecordSink for RemoteSink {
    fn append(&mut self, _from: NodeId, records: &[Vec<u8>]) -> Result<()> {
        if records.is_empty() {
            return Ok(());
        }
        // The RPC *is* the wire: the client charges the batch's payload
        // bytes to the shared ledger, mirroring a SimNetwork transfer.
        self.workers
            .with_client(self.node, |c| c.append(&self.set, records))?;
        Ok(())
    }

    fn finish(self: Box<Self>) -> Result<()> {
        Ok(())
    }
}

impl WorkerBackend for RemoteWorkers {
    fn num_nodes(&self) -> u32 {
        self.inner.slots.read().len() as u32
    }

    fn alive_nodes(&self) -> Vec<NodeId> {
        self.inner
            .slots
            .read()
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|_| NodeId(i as u32)))
            .collect()
    }

    fn create_set(&self, n: NodeId, name: &str) -> Result<()> {
        self.with_client(n, |c| c.create_set(name, "write-through", None))?;
        Ok(())
    }

    fn drop_set(&self, n: NodeId, name: &str) -> Result<()> {
        // DropSet is idempotent on the daemon: nodes that never held
        // the set answer Ok (mirrors SimWorkers).
        self.with_client(n, |c| c.drop_set(name))
    }

    fn open_sink(&self, n: NodeId, set: &str) -> Result<Box<dyn RecordSink>> {
        // Fail early if the slot has no address.
        self.addr_of(n)?;
        Ok(Box::new(RemoteSink {
            workers: self.clone(),
            node: n,
            set: set.to_string(),
        }))
    }

    fn scan(&self, n: NodeId, set: &str, f: &mut dyn FnMut(&[u8]) -> Result<()>) -> Result<()> {
        // Prefer the one-shot scan RPC (exact record-byte accounting);
        // fall back to the page-by-page recovery read path when the set
        // no longer fits one reply frame.
        let records = match self.with_client(n, |c| c.scan(set)) {
            Ok(records) => records,
            Err(PangeaError::ScanTooLarge { .. }) => {
                return self.scan_pages(n, set, f);
            }
            Err(e) => return Err(e),
        };
        for rec in &records {
            f(rec)?;
        }
        Ok(())
    }

    fn count(&self, n: NodeId, set: &str) -> Result<u64> {
        // Server-side count: no record payload crosses the wire, so
        // diagnostics like `total_records` stay O(1) in wire bytes and
        // never inflate the shared payload ledger.
        self.with_client(n, |c| c.count(set))
    }

    fn net_bytes(&self) -> u64 {
        self.inner.stats.snapshot().net_bytes
    }

    fn peer_repair(&self) -> Option<&dyn PeerRepair> {
        Some(self)
    }

    fn task_exec(&self) -> Option<&dyn TaskExec> {
        Some(self)
    }
}

/// The remote task-shipping capability: every operation is a control
/// RPC (no record payload on the driver's connections) — each worker
/// scans its own share and streams the mapped output straight to the
/// destination workers' ingest sessions.
impl TaskExec for RemoteWorkers {
    fn ingest_begin(&self, dest: NodeId, set: &str, reduce: Option<&ReduceSpec>) -> Result<()> {
        self.with_client(dest, |c| c.ingest_begin(set, reduce))
    }

    fn map_task(
        &self,
        worker: NodeId,
        input: &str,
        output: &str,
        map: &MapSpec,
        reduce: Option<&ReduceSpec>,
        scheme: &SchemeSpec,
        nodes: u32,
    ) -> Result<TaskReport> {
        // Clone the hook out before invoking it (never hold the lock
        // across the call — it would serialize "parallel" tasks).
        let hook = self.inner.task_hook.lock().clone();
        if let Some(hook) = hook {
            hook(worker);
        }
        // The engine hands logical job parameters; this backend owns the
        // address book, so it fills in the wire task's destinations and
        // the executing worker's provenance slot.
        let dests: Vec<(u32, String)> = self
            .inner
            .slots
            .read()
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|addr| (i as u32, addr.clone())))
            .collect();
        let spec = TaskSpec {
            input: input.to_string(),
            output: output.to_string(),
            map: map.clone(),
            reduce: reduce.cloned(),
            scheme: scheme.clone(),
            nodes,
            source: worker.raw(),
            dests,
            window: self.inner.pipeline_window.load(Ordering::Relaxed),
        };
        self.with_client(worker, |c| c.run_task(&spec))
    }

    fn ingest_end(&self, dest: NodeId, set: &str) -> Result<(u64, u64)> {
        self.with_client(dest, |c| c.ingest_end(set))
    }

    fn set_pipeline_window(&self, window: u32) {
        self.inner.pipeline_window.store(window, Ordering::Relaxed);
    }
}

/// The remote peer-repair capability: every operation is a control RPC
/// (no record payload on the driver's connections) — survivors and the
/// replacement move the data among themselves.
impl PeerRepair for RemoteWorkers {
    fn repair_begin(&self, target: NodeId, target_set: &str, present_on: &[NodeId]) -> Result<()> {
        let peers: Vec<String> = present_on
            .iter()
            .map(|&n| self.addr_of(n))
            .collect::<Result<_>>()?;
        self.with_client(target, |c| c.recover_begin(target_set, &peers))
    }

    fn repair_push(
        &self,
        survivor: NodeId,
        source_set: &str,
        target: NodeId,
        target_set: &str,
        filter: &RepairFilter,
    ) -> Result<RepairPushReport> {
        let target_addr = self.addr_of(target)?;
        self.with_client(survivor, |c| {
            c.recover_push(source_set, target_set, &target_addr, filter)
        })
    }

    fn repair_end(&self, target: NodeId, target_set: &str) -> Result<(u64, u64)> {
        self.with_client(target, |c| c.recover_end(target_set))
    }
}

impl RemoteWorkers {
    /// The page-level scan: fetch raw pages and parse them with the page
    /// codec, as a recovering node would (the `FetchPage` read path).
    fn scan_pages(
        &self,
        n: NodeId,
        set: &str,
        f: &mut dyn FnMut(&[u8]) -> Result<()>,
    ) -> Result<()> {
        let nums = self.with_client(n, |c| c.page_numbers(set))?;
        for num in nums {
            let bytes = self.with_client(n, |c| c.fetch_page(set, num))?;
            for rec in pangea_core::RecordSlices::new(&bytes) {
                f(rec)?;
            }
        }
        Ok(())
    }
}

/// A handle to a real Pangea deployment: one `pangea-mgr` plus N
/// `pangead` workers, driven entirely over the wire.
pub struct RemoteCluster {
    core: ClusterCore,
    workers: RemoteWorkers,
    mgr: MgrConn,
    /// Highest epoch at which each slot was ever *observed* Dead. A
    /// slot is only recoverable once it is Alive at a *newer* epoch —
    /// a genuine replacement — never when the same incarnation merely
    /// resumed heartbeating after a pause.
    dead_epochs: Mutex<FxHashMap<NodeId, u64>>,
    /// Test-only rendezvous invoked at the start of each slot's repair
    /// (after validation, before any data moves) — lets a fault-injection
    /// test prove two slot recoveries genuinely overlap in time.
    recovery_hook: Mutex<Option<Arc<dyn Fn(NodeId) + Send + Sync>>>,
}

impl std::fmt::Debug for RemoteCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteCluster")
            .field("workers", &self.workers)
            .finish()
    }
}

impl RemoteCluster {
    /// Connects to the manager, fetches the membership snapshot, and
    /// builds the engine over the remote seams.
    pub fn connect(mgr_addr: &str, secret: Option<&str>) -> Result<Self> {
        let mgr = MgrConn::connect(mgr_addr, secret)?;
        let catalog = Arc::new(RemoteCatalog::new(MgrConn::connect(mgr_addr, secret)?));
        let workers = RemoteWorkers::new(secret);
        let core = ClusterCore::new(
            Arc::new(workers.clone()) as Arc<dyn WorkerBackend>,
            catalog as Arc<dyn Catalog>,
        );
        let cluster = Self {
            core,
            workers,
            mgr,
            dead_epochs: Mutex::new(FxHashMap::default()),
            recovery_hook: Mutex::new(None),
        };
        cluster.refresh_membership()?;
        Ok(cluster)
    }

    /// The generic engine (shared with `SimCluster`).
    pub fn core(&self) -> &ClusterCore {
        &self.core
    }

    /// The remote worker backend (for its shared wire ledger).
    pub fn workers(&self) -> &RemoteWorkers {
        &self.workers
    }

    /// Sets the per-destination pipeline window shipped with every task
    /// this cluster runs (`0` = daemon default, `1` = strict-serial).
    /// Routed through the engine's [`TaskExec`] seam — the shared
    /// backend is this cluster's [`RemoteWorkers`], so the hint lands
    /// in every subsequent `TaskRun`'s wire spec.
    pub fn set_pipeline_window(&self, window: u32) {
        let accepted = self.core.set_task_pipeline_window(window);
        debug_assert!(accepted, "the remote backend always ships tasks");
    }

    /// Re-reads membership from the manager (sweeping liveness there)
    /// and installs it into the backend. Returns the snapshot.
    pub fn refresh_membership(&self) -> Result<Vec<WireWorker>> {
        let workers = self.mgr.with(|m| m.list_workers())?;
        self.workers.install_membership(&workers);
        let mut dead = self.dead_epochs.lock();
        for w in &workers {
            if w.state == WorkerState::Dead {
                let e = dead.entry(NodeId(w.node)).or_insert(0);
                *e = (*e).max(w.epoch);
            }
        }
        Ok(workers)
    }

    /// Total node slots the manager knows.
    pub fn num_nodes(&self) -> u32 {
        self.workers.num_nodes()
    }

    /// Alive workers per the last membership refresh.
    pub fn alive_nodes(&self) -> Vec<NodeId> {
        self.workers.alive_nodes()
    }

    /// Workers the manager has declared dead (missed heartbeats) —
    /// the trigger for [`RemoteCluster::recover_worker`].
    pub fn dead_workers(&self) -> Result<Vec<NodeId>> {
        Ok(self
            .refresh_membership()?
            .into_iter()
            .filter(|w| w.state == WorkerState::Dead)
            .map(|w| NodeId(w.node))
            .collect())
    }

    /// Creates a distributed set via the wire catalog: registered at the
    /// manager, materialized on every alive worker. The scheme must be
    /// declarative (`hash_field`/`hash_whole`/round-robin).
    pub fn create_dist_set(&self, name: &str, scheme: PartitionScheme) -> Result<EngineSet> {
        self.core.create_dist_set(name, scheme)
    }

    /// Looks up a cataloged distributed set.
    pub fn get_dist_set(&self, name: &str) -> Result<Option<EngineSet>> {
        self.core.get_dist_set(name)
    }

    /// Drops a distributed set everywhere.
    pub fn drop_dist_set(&self, name: &str) -> Result<()> {
        self.core.drop_dist_set(name)
    }

    /// Registers `target` as a replica of `source` (default `r = 1`).
    pub fn register_replica(
        &self,
        source: &str,
        target: &str,
        scheme: PartitionScheme,
    ) -> Result<ReplicaReport> {
        self.core.register_replica_with_r(source, target, scheme, 1)
    }

    /// The statistics service's best-replica answer, straight from the
    /// manager (§9.1.2).
    pub fn best_replica(&self, set: &str, key: &str) -> Result<Option<String>> {
        self.mgr.with(|m| m.best_replica(set, key))
    }

    /// Installs (or clears) the test-only recovery rendezvous. Hidden:
    /// fault-injection instrumentation, not API.
    #[doc(hidden)]
    pub fn set_recovery_hook(&self, hook: Option<Arc<dyn Fn(NodeId) + Send + Sync>>) {
        *self.recovery_hook.lock() = hook;
    }

    /// Recovers a dead worker whose slot a replacement `pangead` has
    /// already re-registered (same slot, fresh epoch): re-creates every
    /// cataloged set on the replacement, then restores its lost data
    /// from surviving replicas — the data flows worker→worker (survivors
    /// stream their shares straight to the replacement, one push in
    /// flight per survivor); this driver only orchestrates and never
    /// touches a record payload.
    pub fn recover_worker(&self, failed: NodeId) -> Result<RecoveryReport> {
        let out = self.workers.with_job(|| {
            self.ensure_replacement(failed)?;
            self.core.provision_node(failed)?;
            self.repair_slot(failed)
        });
        self.push_driver_trace();
        out
    }

    /// Pushes the driver ring's unexported spans to the manager's fleet
    /// span store (node `driver`), so `pangea-mgr trace` can root the
    /// cross-node tree — the scrape loop only reaches registered
    /// workers, and this driver is neither. Best-effort by design: a
    /// trace push must never fail a job that already succeeded, so
    /// errors are logged and the spans retry with the next job's push
    /// (the export cursor only advances on success).
    pub fn push_driver_trace(&self) {
        let cursor_before = *self.workers.inner.trace_cursor.lock();
        let (spans, gap) = self.workers.drain_trace();
        if gap > 0 {
            eprintln!(
                "pangea driver: ring evicted {gap} spans before export; \
                 stitched traces of earlier jobs may be missing their roots"
            );
        }
        if spans.is_empty() {
            return;
        }
        if let Err(e) = self.mgr.with(|m| m.trace_push("driver", spans)) {
            *self.workers.inner.trace_cursor.lock() = cursor_before;
            eprintln!("pangea driver: trace push failed (will retry next job): {e}");
        }
    }

    /// Validates that a *replacement* holds the failed slot: Alive at a
    /// fresh epoch, never the same incarnation resumed.
    fn ensure_replacement(&self, failed: NodeId) -> Result<()> {
        let snapshot = self.refresh_membership()?;
        let slot = snapshot.iter().find(|w| w.node == failed.raw());
        match slot {
            Some(w) if w.state == WorkerState::Alive => {
                // Alive is not enough: the same incarnation may have
                // revived after a pause, its data intact — provisioning
                // over it would fail (and recovery would be pointless).
                // Only a fresh epoch proves a replacement took the slot.
                if let Some(&dead_epoch) = self.dead_epochs.lock().get(&failed) {
                    if w.epoch <= dead_epoch {
                        return Err(PangeaError::usage(format!(
                            "{failed} revived as the same incarnation \
                             ({}); its data was never lost, nothing to recover",
                            pangea_common::Epoch(w.epoch)
                        )));
                    }
                }
            }
            Some(_) => {
                return Err(PangeaError::usage(format!(
                    "no replacement registered for {failed}; start a pangead \
                     with --slot {} first",
                    failed.raw()
                )))
            }
            None => return Err(PangeaError::NodeUnavailable(failed)),
        }
        Ok(())
    }

    /// The repair half of recovery: the slot must already be validated
    /// and provisioned (multi-slot recovery provisions every replacement
    /// before any repair starts, so concurrent repairs never scan a
    /// fellow replacement whose sets do not exist yet).
    fn repair_slot(&self, failed: NodeId) -> Result<RecoveryReport> {
        self.repair_slot_in(failed, None, true)
    }

    /// [`RemoteCluster::repair_slot`] restricted to a subset of replica
    /// groups (`None` = all). `fire_hook` gates the test-only
    /// rendezvous so a two-phase repair announces each slot once.
    fn repair_slot_in(
        &self,
        failed: NodeId,
        groups: Option<&[ReplicaGroupId]>,
        fire_hook: bool,
    ) -> Result<RecoveryReport> {
        let start = Instant::now();
        let net_before = self.workers.net_bytes();
        // Clone the hook out before invoking it: an `if let` over the
        // guard would hold the lock for the whole call and serialize
        // concurrent slot repairs on it.
        if fire_hook {
            let hook = self.recovery_hook.lock().clone();
            if let Some(hook) = hook {
                hook(failed);
            }
        }
        let mut report = self.core.recover_sets_in(failed, groups)?;
        self.dead_epochs.lock().remove(&failed);
        // The engine already charged the worker→worker payload; any
        // driver-side payload (none, by design — asserted by the
        // fault-injection suite) would surface on the shared ledger.
        report.bytes_moved += self.workers.net_bytes() - net_before;
        report.duration = start.elapsed();
        Ok(report)
    }

    /// Recovers several dead slots. Every replacement is validated and
    /// provisioned before any repair begins — a repair scans *all*
    /// survivors, and a fellow replacement is a (legitimately empty)
    /// survivor whose sets must already exist.
    ///
    /// The per-slot repairs run concurrently (one orchestration thread
    /// per slot) for every replica group whose members are all
    /// hash-partitioned: hash placement makes each slot's lost share
    /// disjoint, so concurrent repairs cannot restore a record twice.
    /// Groups with a round-robin member are repaired in a second,
    /// serial phase — a round-robin lost share is defined by *absence*,
    /// and two sessions snapshotting the surviving share concurrently
    /// could both restore the same record. The serial fallback is
    /// scoped to exactly those groups: hash-only groups keep their
    /// parallelism whatever else the catalog holds. Reports come back
    /// in `failed` order, each slot's two phases merged.
    pub fn recover_workers(&self, failed: &[NodeId]) -> Result<Vec<RecoveryReport>> {
        // Two concurrent repairs of one slot would race on the
        // replacement's session map; reject the caller bug up front.
        let mut seen = pangea_common::FxHashSet::default();
        for &n in failed {
            if !seen.insert(n) {
                return Err(PangeaError::usage(format!(
                    "slot {n} listed twice; each failed slot is recovered once"
                )));
            }
        }
        if failed.len() < 2 {
            return failed.iter().map(|&n| self.recover_worker(n)).collect();
        }
        let out = self
            .workers
            .with_job(|| self.recover_workers_traced(failed));
        self.push_driver_trace();
        out
    }

    /// The body of [`RemoteCluster::recover_workers`] for two or more
    /// slots, running under an already-scoped trace job.
    fn recover_workers_traced(&self, failed: &[NodeId]) -> Result<Vec<RecoveryReport>> {
        for &n in failed {
            self.ensure_replacement(n)?;
        }
        for &n in failed {
            self.core.provision_node(n)?;
        }
        // Only replica-group members are recovery targets; unreplicated
        // sets (and the groups' round-robin colliding sets, which are
        // repair *sources*) do not constrain parallelism — so consult
        // the groups directly instead of paying one manager RPC per
        // cataloged set.
        let mut hash_groups = Vec::new();
        let mut rr_groups = Vec::new();
        for group in self.core.catalog().groups()? {
            let mut all_hash = true;
            for member in self.core.catalog().group_members(group)? {
                if let Some(entry) = self.core.catalog().entry(&member)? {
                    all_hash &= entry.scheme.kind == PartitionKind::Hash;
                }
            }
            if all_hash {
                hash_groups.push(group);
            } else {
                rr_groups.push(group);
            }
        }
        if rr_groups.is_empty() {
            // Single parallel phase over everything.
            return std::thread::scope(|s| {
                let handles: Vec<_> = failed
                    .iter()
                    .map(|&n| s.spawn(move || self.repair_slot(n)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| {
                        h.join().unwrap_or_else(|_| {
                            Err(PangeaError::Remote("a recovery thread panicked".into()))
                        })
                    })
                    .collect()
            });
        }
        // Phase 1: hash-only groups, all slots concurrently (skipped
        // when there are none). The rendezvous hook fires here — or in
        // phase 2 when phase 1 is empty — so each slot announces once.
        let mut reports: Vec<RecoveryReport> = if hash_groups.is_empty() {
            failed
                .iter()
                .map(|&n| RecoveryReport {
                    failed: n,
                    replicas_recovered: Vec::new(),
                    objects_restored: 0,
                    colliding_restored: 0,
                    bytes_moved: 0,
                    duration: Duration::ZERO,
                })
                .collect()
        } else {
            let hash_groups = &hash_groups;
            std::thread::scope(|s| {
                let handles: Vec<_> = failed
                    .iter()
                    .map(|&n| s.spawn(move || self.repair_slot_in(n, Some(hash_groups), true)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| {
                        h.join().unwrap_or_else(|_| {
                            Err(PangeaError::Remote("a recovery thread panicked".into()))
                        })
                    })
                    .collect::<Result<Vec<_>>>()
            })?
        };
        // Phase 2: round-robin-carrying groups, slot by slot.
        for (slot, report) in failed.iter().zip(reports.iter_mut()) {
            let serial = self.repair_slot_in(*slot, Some(&rr_groups), hash_groups.is_empty())?;
            report.replicas_recovered.extend(serial.replicas_recovered);
            report.objects_restored += serial.objects_restored;
            report.colliding_restored += serial.colliding_restored;
            report.bytes_moved += serial.bytes_moved;
            report.duration += serial.duration;
        }
        Ok(reports)
    }

    /// A distributed map-shuffle: ships one declarative map task to
    /// every worker holding a share of `input`; each worker scans its
    /// *local* share, applies `map`, and streams the routed output
    /// **directly to the destination workers**, materializing `output`
    /// as a normal cataloged set under `scheme`. The driver only plans,
    /// launches the per-worker tasks in parallel, and collects reports
    /// — it moves zero record bytes (all data is attributed to the
    /// workers' `shuffle_bytes` counters, never this driver's ledger).
    ///
    /// `scheme` must be declarative (`hash_field`/`hash_whole`/
    /// round-robin); a closure-keyed scheme fails with the typed
    /// [`PangeaError::NotWireSafe`]. For a shuffle keyed by an
    /// in-process closure, fall back to the driver-routed
    /// [`RemoteCluster::shuffle`].
    ///
    /// Jobs are retryable end to end: a worker killed mid-task surfaces
    /// a typed error, and re-running the same call (after recovering
    /// the worker) materializes the output afresh without duplicates.
    pub fn map_shuffle(
        &self,
        input: &str,
        output: &str,
        map: &MapSpec,
        scheme: PartitionScheme,
    ) -> Result<MapShuffleReport> {
        self.refresh_membership()?;
        let out = self
            .workers
            .with_job(|| self.core.map_shuffle(input, output, map, scheme));
        self.push_driver_trace();
        out
    }

    /// A distributed map-**combine-reduce**: like
    /// [`RemoteCluster::map_shuffle`] plus a declarative
    /// [`ReduceSpec`] folding the mapped output per key. Each mapper
    /// pre-aggregates its local share before shipping (source-side
    /// combine — the shuffle pays for distinct keys, not raw
    /// emissions), each destination merges the incoming partials in a
    /// reducing ingest session, and `IngestEnd` materializes one
    /// `key<delim>value` record per key into a normal cataloged set.
    /// The driver still moves zero record bytes, and the result
    /// matches the serial `SimCluster::map_reduce` reference
    /// record-for-record (the fold is associative and commutative by
    /// construction).
    ///
    /// `scheme` must hash by the reduced key — field 0 under the
    /// reduce's delimiter (`hash_field(name, parts, reduce.delim, 0)`).
    pub fn map_reduce(
        &self,
        input: &str,
        output: &str,
        map: &MapSpec,
        reduce: &ReduceSpec,
        scheme: PartitionScheme,
    ) -> Result<MapShuffleReport> {
        self.refresh_membership()?;
        let out = self
            .workers
            .with_job(|| self.core.map_reduce(input, output, map, reduce, scheme));
        self.push_driver_trace();
        out
    }

    /// Installs (or clears) the test-only per-task rendezvous. Hidden:
    /// fault-injection instrumentation, not API.
    #[doc(hidden)]
    pub fn set_task_hook(&self, hook: Option<Arc<dyn Fn(NodeId) + Send + Sync>>) {
        *self.workers.inner.task_hook.lock() = hook;
    }

    /// A distributed shuffle over the deployment: partition `p` lives on
    /// worker `p % nodes`; the driver routes and batches per partition.
    ///
    /// This is the **legacy driver-routed path**: every record crosses
    /// the wire twice (caller → driver-routed send → destination
    /// worker) and the driver's NIC is the bottleneck. It remains the
    /// fallback for shuffles keyed by arbitrary in-process closures —
    /// the caller hashes whatever key it likes. When the key and map
    /// are expressible declaratively, prefer
    /// [`RemoteCluster::map_shuffle`], which ships the task to the data
    /// and moves zero payload through the driver.
    pub fn shuffle(&self, name: &str, partitions: u32) -> Result<RemoteShuffle> {
        let nodes = self.alive_nodes();
        if nodes.is_empty() {
            return Err(PangeaError::usage("no alive workers to shuffle across"));
        }
        for &n in &nodes {
            self.workers.shuffle_create(n, name, partitions)?;
        }
        Ok(RemoteShuffle {
            workers: self.workers.clone(),
            name: name.to_string(),
            partitions: partitions.max(1),
            nodes,
            pending: (0..partitions.max(1)).map(|_| Vec::new()).collect(),
            pending_bytes: vec![0; partitions.max(1) as usize],
            config: DispatchConfig::default(),
        })
    }
}

/// A driver-side distributed shuffle: records are hashed to partitions,
/// batched per partition, and shipped to the partition's owning worker.
///
/// Trade-off: every record pays a trip through the driver (its NIC and
/// its CPU are the bottleneck), but the key is an arbitrary in-process
/// value the caller computes — nothing needs to be expressible on the
/// wire. When a declarative [`MapSpec`]/scheme can express the job, use
/// [`RemoteCluster::map_shuffle`] instead: it ships the task to the
/// data and the driver moves zero record bytes.
#[derive(Debug)]
pub struct RemoteShuffle {
    workers: RemoteWorkers,
    name: String,
    partitions: u32,
    nodes: Vec<NodeId>,
    pending: Vec<Vec<Vec<u8>>>,
    pending_bytes: Vec<usize>,
    config: DispatchConfig,
}

impl RemoteShuffle {
    /// The worker owning partition `p` (partitions stripe over the alive
    /// workers, mirroring `PartitionScheme::node_of_partition`).
    pub fn node_of(&self, partition: u32) -> NodeId {
        self.nodes[(partition as usize) % self.nodes.len()]
    }

    /// Routes one record by `key`, returning its partition.
    pub fn send(&mut self, key: &[u8], record: &[u8]) -> Result<u32> {
        let p = (fx_hash64(key) % self.partitions as u64) as u32;
        let slot = p as usize;
        self.pending[slot].push(record.to_vec());
        self.pending_bytes[slot] += record.len();
        if self.pending[slot].len() >= self.config.max_batch_records
            || self.pending_bytes[slot] >= self.config.max_batch_bytes
        {
            self.flush(p)?;
        }
        Ok(p)
    }

    fn flush(&mut self, p: u32) -> Result<()> {
        let slot = p as usize;
        if self.pending[slot].is_empty() {
            return Ok(());
        }
        let node = self.node_of(p);
        let batch = std::mem::take(&mut self.pending[slot]);
        self.pending_bytes[slot] = 0;
        self.workers.shuffle_send(node, &self.name, p, &batch)
    }

    /// Flushes every partition and seals the shuffle on every worker.
    pub fn finish(mut self) -> Result<()> {
        for p in 0..self.partitions {
            self.flush(p)?;
        }
        for &n in &self.nodes.clone() {
            self.workers.shuffle_finish(n, &self.name)?;
        }
        Ok(())
    }

    /// Scans one partition's records from its owning worker.
    pub fn scan_partition(&self, p: u32, f: &mut dyn FnMut(&[u8]) -> Result<()>) -> Result<()> {
        self.workers
            .scan(self.node_of(p), &format!("{}.part{p}", self.name), f)
    }
}

/// The worker-side control-plane agent: registers the local `pangead`
/// with the manager, heartbeats on a background thread, and deregisters
/// on clean shutdown (so the manager never feeds a cleanly-exited worker
/// to recovery). Dropping the agent without calling
/// [`WorkerAgent::shutdown`] stops the heartbeats but does *not*
/// deregister — indistinguishable from a crash, which is exactly what
/// liveness sweeping is for.
#[derive(Debug)]
pub struct WorkerAgent {
    mgr_addr: String,
    secret: Option<String>,
    node: NodeId,
    epoch: Epoch,
    stop: Arc<AtomicBool>,
    beat: Option<JoinHandle<()>>,
}

impl WorkerAgent {
    /// Registers with the manager (optionally pinning a slot — how a
    /// replacement takes over a dead worker's identity) and starts
    /// heartbeating every `interval`.
    pub fn register(
        mgr_addr: &str,
        secret: Option<&str>,
        advertise: &str,
        slot: Option<NodeId>,
        interval: Duration,
    ) -> Result<Self> {
        let mut mgr = ManagerClient::connect(mgr_addr, secret)?;
        let (node, epoch) = mgr.register_worker(advertise, slot)?;
        let stop = Arc::new(AtomicBool::new(false));
        let beat = {
            let stop = Arc::clone(&stop);
            let mgr_addr = mgr_addr.to_string();
            let secret = secret.map(str::to_string);
            std::thread::Builder::new()
                .name(format!("pangea-heartbeat-{node}"))
                .spawn(move || {
                    let mut conn = Some(mgr);
                    loop {
                        let deadline = Instant::now() + interval;
                        while Instant::now() < deadline {
                            if stop.load(Ordering::SeqCst) {
                                return;
                            }
                            std::thread::sleep(
                                Duration::from_millis(5)
                                    .min(deadline.saturating_duration_since(Instant::now())),
                            );
                        }
                        if stop.load(Ordering::SeqCst) {
                            return;
                        }
                        if conn.is_none() {
                            conn =
                                ManagerClient::connect(mgr_addr.as_str(), secret.as_deref()).ok();
                        }
                        if let Some(m) = conn.as_mut() {
                            match m.heartbeat(node, epoch) {
                                Ok(()) => {}
                                // Replaced by a newer incarnation: stop
                                // beating for good.
                                Err(PangeaError::StaleEpoch { .. }) => return,
                                Err(_) => conn = None,
                            }
                        }
                    }
                })?
        };
        Ok(Self {
            mgr_addr: mgr_addr.to_string(),
            secret: secret.map(str::to_string),
            node,
            epoch,
            stop,
            beat: Some(beat),
        })
    }

    /// The slot the manager assigned.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// This incarnation's registration epoch.
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    fn stop_heartbeats(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.beat.take() {
            let _ = handle.join();
        }
    }

    /// Clean exit: stops heartbeating and deregisters with the manager.
    pub fn shutdown(&mut self) -> Result<()> {
        self.stop_heartbeats();
        ManagerClient::connect(self.mgr_addr.as_str(), self.secret.as_deref())?
            .deregister_worker(self.node, self.epoch)
    }

    /// Crash simulation: stops heartbeating *without* deregistering, so
    /// the manager's liveness sweep declares the worker dead.
    pub fn abandon(&mut self) {
        self.stop_heartbeats();
    }
}

impl Drop for WorkerAgent {
    fn drop(&mut self) {
        self.stop_heartbeats();
    }
}
