//! `pangea-mgr` — the Pangea manager daemon (paper §3.3).
//!
//! Serves the manager's catalog + statistics database and the cluster
//! membership table over the same framed protocol `pangead` speaks. The
//! daemon is deliberately light-weight, exactly as the paper stresses:
//! it stores per-*set* metadata and per-*worker* liveness, never
//! per-page locations (those live in each worker's meta files, §4).
//!
//! Like [`Pangead`], the request dispatch is pure request → response —
//! [`ManagerDaemon::handle`] — and the serving loop is the shared
//! [`FramedServer`] (handshake enforcement, graceful drain included).
//!
//! [`Pangead`]: pangea_net::Pangead

use crate::membership::Membership;
use pangea_cluster::{CatalogEntry, Manager, PartitionScheme};
use pangea_common::{Epoch, IoStats, NodeId, PangeaError, ReplicaGroupId, Result};
use pangea_net::{
    error_response, metrics_dump_response, FramedServer, FramedService, Request, Response,
    ServerConfig, TraceCtx, WireCatalogEntry, WireSpan,
};
use pangea_obs::{names, Obs, ScrapeStore, SpanRecord};
use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The default liveness timeout: a worker missing heartbeats for this
/// long is declared dead.
pub const DEFAULT_LIVENESS_TIMEOUT: Duration = Duration::from_secs(3);

/// The default fleet-scrape interval (see [`MgrServer::bind_full`]).
pub const DEFAULT_SCRAPE_INTERVAL: Duration = Duration::from_secs(1);

/// Maximum spans in one [`Response::Trace`] chunk.
pub const TRACE_CHUNK: usize = 1024;

/// The protocol brain of the manager daemon: catalog + membership
/// behind the wire protocol.
#[derive(Debug)]
pub struct ManagerDaemon {
    catalog: Manager,
    membership: Membership,
    stats: Arc<IoStats>,
    /// The manager's observability bundle, sharing the registry behind
    /// [`ManagerDaemon::stats`] so one `MetricsDump` covers both.
    obs: Obs,
    /// The retained fleet telemetry the scrape loop folds into and the
    /// `TraceQuery` RPC serves out of.
    scrape: Arc<ScrapeStore>,
}

impl ManagerDaemon {
    /// A fresh manager with the given liveness timeout.
    pub fn new(liveness_timeout: Duration) -> Self {
        let stats = Arc::new(IoStats::new());
        let obs = Obs::with_registry(stats.registry().clone());
        Self {
            catalog: Manager::new(),
            membership: Membership::new(liveness_timeout),
            stats,
            obs,
            scrape: Arc::new(ScrapeStore::new()),
        }
    }

    /// The wrapped catalog / statistics database.
    pub fn catalog(&self) -> &Manager {
        &self.catalog
    }

    /// The membership table.
    pub fn membership(&self) -> &Membership {
        &self.membership
    }

    /// Wire counters (requests handled).
    pub fn stats(&self) -> &Arc<IoStats> {
        &self.stats
    }

    /// The manager's observability bundle (metrics + span ring).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// The retained fleet-telemetry store the scrape loop maintains.
    pub fn scrape_store(&self) -> &Arc<ScrapeStore> {
        &self.scrape
    }

    /// Handles one request, turning errors into [`Response::Err`].
    pub fn handle(&self, req: Request) -> Response {
        self.handle_full(req, None, 0)
    }

    /// The instrumented handler (mirrors `Pangead`): per-opcode
    /// count/bytes/latency metrics always, a [`SpanRecord`] when the
    /// frame carried a [`TraceCtx`].
    fn handle_full(&self, req: Request, ctx: Option<TraceCtx>, req_bytes: usize) -> Response {
        self.stats.record_net(0);
        let op = req.name();
        let reg = self.obs.registry();
        reg.counter(&names::rpc_count(op)).inc();
        reg.counter(&names::rpc_bytes(op)).add(req_bytes as u64);
        let start = self.obs.now_ns();
        let resp = match self.dispatch(req) {
            Ok(resp) => resp,
            Err(e) => error_response(&e),
        };
        let end = self.obs.now_ns();
        reg.histogram(&names::rpc_latency_ns(op))
            .observe(end.saturating_sub(start));
        if let Some(ctx) = ctx {
            self.obs.ring().record(SpanRecord {
                job: ctx.job,
                span: pangea_obs::next_span_id(),
                parent: ctx.span,
                op: op.to_string(),
                peer: String::new(),
                start_ns: start,
                end_ns: end,
                bytes: req_bytes as u64,
                outcome: match &resp {
                    Response::Err { message } => message.clone(),
                    Response::Denied { message } => message.clone(),
                    _ => "ok".to_string(),
                },
            });
        }
        resp
    }

    fn entry_to_wire(entry: CatalogEntry) -> Result<WireCatalogEntry> {
        Ok(WireCatalogEntry {
            name: entry.name,
            scheme: entry.scheme.to_spec()?,
            group: entry.group.map(ReplicaGroupId::raw),
            objects: entry.stats.objects,
            bytes: entry.stats.bytes,
        })
    }

    fn dispatch(&self, req: Request) -> Result<Response> {
        match req {
            Request::Ping => Ok(Response::Ok),
            // The server layer handles handshakes; reaching here means no
            // secret is required on this daemon.
            Request::Hello { .. } => Ok(Response::Ok),
            Request::MetricsDump {
                metrics_start,
                spans_start,
            } => {
                // Freshen the staleness gauge at dump time: the oldest
                // un-heartbeated interval across alive workers, in ms.
                let staleness = self
                    .membership
                    .max_staleness()
                    .map(|d| d.as_millis() as u64)
                    .unwrap_or(0);
                self.obs
                    .registry()
                    .gauge(names::MGR_HEARTBEAT_STALENESS_MS)
                    .set(staleness);
                Ok(metrics_dump_response(&self.obs, metrics_start, spans_start))
            }

            // ---- fleet trace store -------------------------------------
            Request::TraceQuery { job, start } => {
                let all = self.scrape.job_spans(job);
                let total = all.len() as u64;
                let spans: Vec<(String, WireSpan)> = all
                    .into_iter()
                    .skip(start as usize)
                    .take(TRACE_CHUNK)
                    .map(|ns| (ns.node, crate::scrape::wire_of(ns.seq, ns.record)))
                    .collect();
                let next_at = start.saturating_add(spans.len() as u64);
                Ok(Response::Trace {
                    spans,
                    dropped: self.scrape.dropped_total(),
                    next: (next_at < total).then_some(next_at),
                })
            }
            Request::TracePush { node, spans } => {
                self.scrape.record_spans(
                    &node,
                    spans.into_iter().map(crate::scrape::record_of).collect(),
                );
                Ok(Response::Ok)
            }
            Request::Stats => {
                let net = self.stats.snapshot();
                // The manager holds no storage node, so every paging
                // field is zero by construction.
                Ok(Response::Stats {
                    net_bytes: net.net_bytes,
                    net_messages: net.net_messages,
                    disk_read_bytes: 0,
                    disk_write_bytes: 0,
                    repair_bytes: 0,
                    shuffle_bytes: 0,
                    paging_hits: 0,
                    paging_misses: 0,
                    paging_evictions: 0,
                    paging_spill_bytes: 0,
                    pool_used_bytes: 0,
                    pool_capacity_bytes: 0,
                })
            }

            // ---- membership --------------------------------------------
            Request::MgrRegisterWorker { addr, slot } => {
                // The wire field is u64 (u64::MAX reserved for "next
                // free"); slots are u32 node ids — reject, don't truncate.
                let slot = slot
                    .map(|s| {
                        u32::try_from(s).map(NodeId).map_err(|_| {
                            PangeaError::usage(format!("slot {s} exceeds the u32 node-id space"))
                        })
                    })
                    .transpose()?;
                let (node, epoch) = self.membership.register(&addr, slot)?;
                Ok(Response::WorkerRegistered {
                    node: node.raw(),
                    epoch: epoch.raw(),
                })
            }
            Request::MgrHeartbeat { node, epoch } => {
                self.membership.sweep();
                self.membership.heartbeat(NodeId(node), Epoch(epoch))?;
                Ok(Response::Ok)
            }
            Request::MgrDeregisterWorker { node, epoch } => {
                self.membership.deregister(NodeId(node), Epoch(epoch))?;
                Ok(Response::Ok)
            }
            Request::MgrListWorkers => {
                self.membership.sweep();
                Ok(Response::Workers {
                    workers: self.membership.workers(),
                })
            }

            // ---- catalog + statistics DB -------------------------------
            Request::MgrRegisterSet { name, scheme } => {
                self.catalog
                    .register_set(&name, PartitionScheme::from_spec(&scheme))?;
                Ok(Response::Ok)
            }
            Request::MgrDeregisterSet { name } => {
                self.catalog.deregister_set(&name);
                Ok(Response::Ok)
            }
            Request::MgrEntry { name } => Ok(Response::CatalogEntry {
                entry: self
                    .catalog
                    .entry(&name)
                    .map(Self::entry_to_wire)
                    .transpose()?,
            }),
            Request::MgrSetNames => Ok(Response::Names {
                names: self.catalog.set_names(),
            }),
            Request::MgrAddStats {
                name,
                objects,
                bytes,
            } => {
                self.catalog.add_stats(&name, objects, bytes)?;
                Ok(Response::Ok)
            }
            Request::MgrLinkReplicas { a, b } => Ok(Response::Group {
                group: self.catalog.link_replicas(&a, &b)?.raw(),
            }),
            Request::MgrGroupMembers { group } => Ok(Response::Names {
                names: self.catalog.group_members(ReplicaGroupId(group)),
            }),
            Request::MgrGroups => Ok(Response::Groups {
                groups: self
                    .catalog
                    .groups()
                    .into_iter()
                    .map(ReplicaGroupId::raw)
                    .collect(),
            }),
            Request::MgrBestReplica { set, key } => Ok(Response::MaybeName {
                name: self.catalog.best_replica(&set, &key),
            }),

            // ---- everything else belongs to storage nodes --------------
            other => Err(PangeaError::usage(format!(
                "storage request {other:?} sent to the manager daemon; \
                 connect to a pangead instead"
            ))),
        }
    }
}

impl FramedService for ManagerDaemon {
    fn handle(&self, req: Request) -> Response {
        ManagerDaemon::handle(self, req)
    }

    fn handle_traced(&self, req: Request, ctx: Option<TraceCtx>, req_bytes: usize) -> Response {
        self.handle_full(req, ctx, req_bytes)
    }
}

/// A running `pangea-mgr` server: one [`ManagerDaemon`] behind a
/// [`FramedServer`], plus a background liveness ticker.
#[derive(Debug)]
pub struct MgrServer {
    daemon: Arc<ManagerDaemon>,
    server: FramedServer,
    /// Stops the liveness ticker and the scrape loop at shutdown.
    tick_stop: Arc<AtomicBool>,
    ticker: Option<JoinHandle<()>>,
    scraper: Option<JoinHandle<()>>,
}

impl MgrServer {
    /// Binds `addr` with the default liveness timeout and no secret.
    pub fn bind(addr: impl ToSocketAddrs) -> Result<Self> {
        Self::bind_with(addr, DEFAULT_LIVENESS_TIMEOUT, None)
    }

    /// Binds `addr` with an explicit liveness timeout and optional
    /// shared handshake secret.
    ///
    /// Liveness is swept by a background ticker (a fraction of the
    /// liveness timeout), not only lazily on membership RPCs: a worker
    /// that dies mid-shuffle is declared Dead on schedule even when the
    /// control plane is otherwise idle. Epoch guards are untouched — the
    /// sweep only flips silent Alive slots to Dead.
    pub fn bind_with(
        addr: impl ToSocketAddrs,
        liveness_timeout: Duration,
        secret: Option<String>,
    ) -> Result<Self> {
        Self::bind_full(addr, liveness_timeout, secret, None)
    }

    /// [`MgrServer::bind_with`] plus the fleet scrape loop: with a
    /// `scrape_interval`, a background thread periodically pulls
    /// `MetricsDump` from every alive worker (incrementally — each
    /// worker's span cursor persists across scrapes, so an idle fleet
    /// ships zero spans) and folds the results into the daemon's
    /// [`ScrapeStore`], which backs the `TraceQuery` RPC and the
    /// `fleet.<node>.*` rate gauges `top --watch` reads. The scraper
    /// dials workers with the same deployment `secret` the inbound
    /// handshake enforces.
    pub fn bind_full(
        addr: impl ToSocketAddrs,
        liveness_timeout: Duration,
        secret: Option<String>,
        scrape_interval: Option<Duration>,
    ) -> Result<Self> {
        let daemon = Arc::new(ManagerDaemon::new(liveness_timeout));
        // Publish the wire core's health (`net.conns_open`,
        // `net.busy_rejects`) into the manager's own registry so one
        // `MetricsDump` covers catalog, membership, and server core.
        let server = FramedServer::bind_with_config(
            Arc::clone(&daemon) as Arc<dyn FramedService>,
            addr,
            secret.clone(),
            ServerConfig {
                registry: Some(daemon.obs().registry().clone()),
                ..ServerConfig::default()
            },
        )?;
        let tick_stop = Arc::new(AtomicBool::new(false));
        let ticker = {
            let daemon = Arc::clone(&daemon);
            let stop = Arc::clone(&tick_stop);
            // Tick well inside the timeout so detection latency is
            // bounded by ~1.25× the timeout, never by the next RPC.
            let interval = (liveness_timeout / 4).max(Duration::from_millis(10));
            std::thread::Builder::new()
                .name("pangea-mgr-liveness".into())
                .spawn(move || loop {
                    let deadline = Instant::now() + interval;
                    while Instant::now() < deadline {
                        if stop.load(Ordering::SeqCst) {
                            return;
                        }
                        std::thread::sleep(
                            Duration::from_millis(5)
                                .min(deadline.saturating_duration_since(Instant::now())),
                        );
                    }
                    daemon.membership().sweep();
                })?
        };
        let scraper = match scrape_interval {
            Some(interval) => Some(crate::scrape::spawn(
                Arc::clone(&daemon),
                secret,
                interval,
                Arc::clone(&tick_stop),
            )?),
            None => None,
        };
        Ok(Self {
            daemon,
            server,
            tick_stop,
            ticker: Some(ticker),
            scraper,
        })
    }

    /// The bound address (with the resolved ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.server.local_addr()
    }

    /// The protocol daemon (for inspecting catalog or membership).
    pub fn daemon(&self) -> &Arc<ManagerDaemon> {
        &self.daemon
    }

    /// Gracefully stops the server (drain + join) and the liveness
    /// ticker. Idempotent.
    pub fn shutdown(&mut self) {
        self.tick_stop.store(true, Ordering::SeqCst);
        if let Some(ticker) = self.ticker.take() {
            let _ = ticker.join();
        }
        if let Some(scraper) = self.scraper.take() {
            let _ = scraper.join();
        }
        self.server.shutdown(pangea_net::DEFAULT_DRAIN);
    }
}

impl Drop for MgrServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pangea_net::{SchemeSpec, WorkerState};

    fn daemon() -> ManagerDaemon {
        ManagerDaemon::new(Duration::from_millis(50))
    }

    #[test]
    fn membership_lifecycle_over_the_protocol() {
        let d = daemon();
        let (node, epoch) = match d.handle(Request::MgrRegisterWorker {
            addr: "127.0.0.1:7781".into(),
            slot: None,
        }) {
            Response::WorkerRegistered { node, epoch } => (node, epoch),
            other => panic!("{other:?}"),
        };
        assert_eq!(node, 0);
        assert_eq!(
            d.handle(Request::MgrHeartbeat { node, epoch }),
            Response::Ok
        );
        // Stale epoch is rejected with the typed wire response naming
        // both epochs, so zombies can tell "replaced" from other errors.
        match d.handle(Request::MgrHeartbeat {
            node,
            epoch: epoch + 1,
        }) {
            Response::Stale { held, current, .. } => {
                assert_eq!((held, current), (epoch + 1, epoch));
            }
            other => panic!("{other:?}"),
        }
        // Miss heartbeats long enough and the list shows Dead.
        std::thread::sleep(Duration::from_millis(120));
        match d.handle(Request::MgrListWorkers) {
            Response::Workers { workers } => {
                assert_eq!(workers.len(), 1);
                assert_eq!(workers[0].state, WorkerState::Dead);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn catalog_round_trips_schemes_and_stats() {
        let d = daemon();
        let scheme = SchemeSpec::Hash {
            key_name: "k".into(),
            partitions: 6,
            key: pangea_net::KeySpec::Field {
                delim: b'|',
                index: 0,
            },
        };
        assert_eq!(
            d.handle(Request::MgrRegisterSet {
                name: "orders".into(),
                scheme: scheme.clone(),
            }),
            Response::Ok
        );
        assert_eq!(
            d.handle(Request::MgrAddStats {
                name: "orders".into(),
                objects: 10,
                bytes: 500,
            }),
            Response::Ok
        );
        match d.handle(Request::MgrEntry {
            name: "orders".into(),
        }) {
            Response::CatalogEntry { entry: Some(e) } => {
                assert_eq!(e.scheme, scheme);
                assert_eq!((e.objects, e.bytes), (10, 500));
                assert_eq!(e.group, None);
            }
            other => panic!("{other:?}"),
        }
        match d.handle(Request::MgrEntry {
            name: "missing".into(),
        }) {
            Response::CatalogEntry { entry: None } => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn liveness_ticker_sweeps_without_any_membership_rpc() {
        let mut mgr = MgrServer::bind_with("127.0.0.1:0", Duration::from_millis(60), None).unwrap();
        let (node, _epoch) = match mgr.daemon().handle(Request::MgrRegisterWorker {
            addr: "127.0.0.1:7781".into(),
            slot: None,
        }) {
            Response::WorkerRegistered { node, epoch } => (node, epoch),
            other => panic!("{other:?}"),
        };
        // No heartbeats, and — crucially — no membership RPC to trigger
        // a lazy sweep: read the table directly. The background ticker
        // alone must declare the silent worker dead.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let workers = mgr.daemon().membership().workers();
            if workers[node as usize].state == WorkerState::Dead {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "ticker never swept the silent worker dead: {workers:?}"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        mgr.shutdown();
        mgr.shutdown(); // idempotent
    }

    #[test]
    fn storage_requests_are_rejected_by_the_manager() {
        let d = daemon();
        match d.handle(Request::Scan { set: "s".into() }) {
            Response::Err { message } => assert!(message.contains("pangead")),
            other => panic!("{other:?}"),
        }
    }
}
