//! Shared pieces of the daemons' dependency-free CLI parsing, so
//! `pangead` and `pangea-mgr` cannot drift on flags they both take.

/// Resolves the shared-secret flags both daemons accept: `--secret`
/// passes the value verbatim, `--secret-file` reads the file and trims
/// surrounding whitespace (so a trailing newline in the file never
/// becomes part of the handshake secret).
pub fn resolve_secret_flag(flag: &str, value: String) -> Result<String, String> {
    match flag {
        "--secret" => Ok(value),
        "--secret-file" => std::fs::read_to_string(&value)
            .map(|s| s.trim().to_string())
            .map_err(|e| format!("--secret-file {value}: {e}")),
        other => Err(format!("'{other}' is not a secret flag")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn secret_flag_passes_through_and_file_trims() {
        assert_eq!(
            resolve_secret_flag("--secret", "s3cr3t".into()).unwrap(),
            "s3cr3t"
        );
        let path = std::env::temp_dir().join(format!("pangea-cli-secret-{}", std::process::id()));
        std::fs::write(&path, "  from-file\n").unwrap();
        assert_eq!(
            resolve_secret_flag("--secret-file", path.display().to_string()).unwrap(),
            "from-file"
        );
        let _ = std::fs::remove_file(&path);
        assert!(resolve_secret_flag("--secret-file", "/no/such/file".into())
            .unwrap_err()
            .contains("--secret-file"));
        assert!(resolve_secret_flag("--listen", "x".into()).is_err());
    }
}
