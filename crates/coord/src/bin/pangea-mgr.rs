//! `pangea-mgr` — run the Pangea manager daemon, or introspect a fleet.
//!
//! ```text
//! pangea-mgr --listen 127.0.0.1:7780 [--liveness-ms 3000] \
//!            [--secret S | --secret-file PATH]
//! pangea-mgr top --manager 127.0.0.1:7780 [--json] \
//!            [--secret S | --secret-file PATH]
//! ```
//!
//! Without a subcommand the daemon serves the wire catalog + membership
//! until killed. `top` is the fleet-introspection client: it issues one
//! `MetricsDump` RPC to the manager and every alive worker and renders
//! per-node per-opcode RPC counts, bytes, latency quantiles, and
//! retained trace spans (text table, or one JSON document with
//! `--json`). Argument parsing is deliberately dependency-free.

use pangea_coord::MgrServer;
use std::process::exit;
use std::time::Duration;

const TOP_USAGE: &str = "usage: pangea-mgr top --manager <addr:port> \
    [--json] [--secret S | --secret-file PATH]";

/// Parses and runs the `top` subcommand; `argv` excludes the
/// `pangea-mgr top` prefix. Returns the process exit code.
fn run_top(argv: Vec<String>) -> i32 {
    let mut manager = String::new();
    let mut secret: Option<String> = None;
    let mut json = false;
    let mut it = argv.into_iter();
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} needs a value"));
        let parsed = match flag.as_str() {
            "--manager" => value("--manager").map(|v| manager = v),
            "--json" => {
                json = true;
                Ok(())
            }
            "--secret" | "--secret-file" => value(&flag)
                .and_then(|v| pangea_coord::cli::resolve_secret_flag(&flag, v))
                .map(|v| secret = Some(v)),
            "--help" | "-h" => {
                println!("{TOP_USAGE}");
                return 0;
            }
            other => Err(format!("unknown flag '{other}'")),
        };
        if let Err(e) = parsed {
            eprintln!("pangea-mgr top: {e}\n{TOP_USAGE}");
            return 2;
        }
    }
    if manager.is_empty() {
        eprintln!("pangea-mgr top: --manager is required\n{TOP_USAGE}");
        return 2;
    }
    match pangea_coord::top::run(&manager, secret.as_deref(), json) {
        Ok(rendered) => {
            print!("{rendered}");
            0
        }
        Err(e) => {
            eprintln!("pangea-mgr top: {e}");
            1
        }
    }
}

struct Args {
    listen: String,
    liveness_ms: u64,
    secret: Option<String>,
}

const USAGE: &str = "usage: pangea-mgr --listen <addr:port> \
    [--liveness-ms N] [--secret S | --secret-file PATH]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        listen: String::new(),
        liveness_ms: 3000,
        secret: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--listen" => args.listen = value("--listen")?,
            "--liveness-ms" => {
                args.liveness_ms = value("--liveness-ms")?
                    .parse()
                    .map_err(|e| format!("--liveness-ms: {e}"))?;
            }
            "--secret" | "--secret-file" => {
                let v = value(&flag)?;
                args.secret = Some(pangea_coord::cli::resolve_secret_flag(&flag, v)?);
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                exit(0);
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if args.listen.is_empty() {
        return Err("--listen is required".to_string());
    }
    Ok(args)
}

fn main() {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("top") {
        argv.remove(0);
        exit(run_top(argv));
    }
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("pangea-mgr: {e}\n{USAGE}");
            exit(2);
        }
    };
    let mut server = match MgrServer::bind_with(
        &args.listen,
        Duration::from_millis(args.liveness_ms),
        args.secret.clone(),
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("pangea-mgr: cannot bind {}: {e}", args.listen);
            exit(1);
        }
    };
    println!(
        "pangea-mgr listening on {} (liveness timeout: {} ms, handshake: {})",
        server.local_addr(),
        args.liveness_ms,
        if args.secret.is_some() {
            "required"
        } else {
            "open"
        }
    );
    // Serve until SIGINT/SIGTERM, then drain in-flight requests and
    // join every handler thread before exiting.
    pangea_coord::wait_for_termination();
    println!("pangea-mgr: shutting down");
    server.shutdown();
}
