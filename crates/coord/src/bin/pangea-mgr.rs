//! `pangea-mgr` — run the Pangea manager daemon, or introspect a fleet.
//!
//! ```text
//! pangea-mgr --listen 127.0.0.1:7780 [--liveness-ms 3000] \
//!            [--scrape-ms 1000] [--secret S | --secret-file PATH]
//! pangea-mgr top --manager 127.0.0.1:7780 [--json] \
//!            [--watch [--interval-ms 1000] [--iters N]] \
//!            [--secret S | --secret-file PATH]
//! pangea-mgr trace <job-id> --manager 127.0.0.1:7780 [--json] \
//!            [--secret S | --secret-file PATH]
//! ```
//!
//! Without a subcommand the daemon serves the wire catalog + membership
//! until killed, and (unless `--scrape-ms 0`) continuously scrapes
//! every alive worker's metrics + trace spans into its retained store.
//! `top` is the fleet-introspection client: one `MetricsDump` RPC to
//! the manager and every alive worker, rendered per node (`--watch`
//! instead re-reads the scrape loop's `fleet.*` rate gauges every
//! interval — one manager RPC per frame). `trace` stitches one job's
//! cross-node span tree from the manager's retained store and renders
//! the waterfall (or `--json` for scripting). Argument parsing is
//! deliberately dependency-free.

use pangea_coord::MgrServer;
use std::process::exit;
use std::time::Duration;

const TOP_USAGE: &str = "usage: pangea-mgr top --manager <addr:port> \
    [--json] [--watch [--interval-ms N] [--iters N]] \
    [--secret S | --secret-file PATH]";

/// Parses and runs the `top` subcommand; `argv` excludes the
/// `pangea-mgr top` prefix. Returns the process exit code.
fn run_top(argv: Vec<String>) -> i32 {
    let mut manager = String::new();
    let mut secret: Option<String> = None;
    let mut json = false;
    let mut watch = false;
    let mut interval_ms = 1000u64;
    let mut iters: Option<u64> = None;
    let mut it = argv.into_iter();
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} needs a value"));
        let parsed = match flag.as_str() {
            "--manager" => value("--manager").map(|v| manager = v),
            "--json" => {
                json = true;
                Ok(())
            }
            "--watch" => {
                watch = true;
                Ok(())
            }
            "--interval-ms" => value("--interval-ms").and_then(|v| {
                v.parse()
                    .map(|n| interval_ms = n)
                    .map_err(|e| format!("--interval-ms: {e}"))
            }),
            "--iters" => value("--iters").and_then(|v| {
                v.parse()
                    .map(|n| iters = Some(n))
                    .map_err(|e| format!("--iters: {e}"))
            }),
            "--secret" | "--secret-file" => value(&flag)
                .and_then(|v| pangea_coord::cli::resolve_secret_flag(&flag, v))
                .map(|v| secret = Some(v)),
            "--help" | "-h" => {
                println!("{TOP_USAGE}");
                return 0;
            }
            other => Err(format!("unknown flag '{other}'")),
        };
        if let Err(e) = parsed {
            eprintln!("pangea-mgr top: {e}\n{TOP_USAGE}");
            return 2;
        }
    }
    if manager.is_empty() {
        eprintln!("pangea-mgr top: --manager is required\n{TOP_USAGE}");
        return 2;
    }
    if watch {
        if json {
            eprintln!("pangea-mgr top: --watch has no --json form\n{TOP_USAGE}");
            return 2;
        }
        return match pangea_coord::top::run_watch(&manager, secret.as_deref(), interval_ms, iters) {
            Ok(()) => 0,
            Err(e) => {
                eprintln!("pangea-mgr top: {e}");
                1
            }
        };
    }
    match pangea_coord::top::run(&manager, secret.as_deref(), json) {
        Ok(rendered) => {
            print!("{rendered}");
            0
        }
        Err(e) => {
            eprintln!("pangea-mgr top: {e}");
            1
        }
    }
}

const TRACE_USAGE: &str = "usage: pangea-mgr trace <job-id> --manager <addr:port> \
    [--json] [--secret S | --secret-file PATH]";

/// Parses and runs the `trace` subcommand; `argv` excludes the
/// `pangea-mgr trace` prefix. Returns the process exit code.
fn run_trace(argv: Vec<String>) -> i32 {
    let mut manager = String::new();
    let mut secret: Option<String> = None;
    let mut json = false;
    let mut job: Option<u64> = None;
    let mut it = argv.into_iter();
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} needs a value"));
        let parsed = match flag.as_str() {
            "--manager" => value("--manager").map(|v| manager = v),
            "--json" => {
                json = true;
                Ok(())
            }
            "--secret" | "--secret-file" => value(&flag)
                .and_then(|v| pangea_coord::cli::resolve_secret_flag(&flag, v))
                .map(|v| secret = Some(v)),
            "--help" | "-h" => {
                println!("{TRACE_USAGE}");
                return 0;
            }
            other => other
                .parse()
                .map(|n| job = Some(n))
                .map_err(|_| format!("unknown argument '{other}' (expected a job id)")),
        };
        if let Err(e) = parsed {
            eprintln!("pangea-mgr trace: {e}\n{TRACE_USAGE}");
            return 2;
        }
    }
    let (Some(job), false) = (job, manager.is_empty()) else {
        eprintln!("pangea-mgr trace: <job-id> and --manager are required\n{TRACE_USAGE}");
        return 2;
    };
    match pangea_coord::trace::run(&manager, secret.as_deref(), job, json) {
        Ok(rendered) => {
            print!("{rendered}");
            0
        }
        Err(e) => {
            eprintln!("pangea-mgr trace: {e}");
            1
        }
    }
}

struct Args {
    listen: String,
    liveness_ms: u64,
    scrape_ms: u64,
    secret: Option<String>,
}

const USAGE: &str = "usage: pangea-mgr --listen <addr:port> \
    [--liveness-ms N] [--scrape-ms N (0 = off)] [--secret S | --secret-file PATH]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        listen: String::new(),
        liveness_ms: 3000,
        scrape_ms: pangea_coord::DEFAULT_SCRAPE_INTERVAL.as_millis() as u64,
        secret: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--listen" => args.listen = value("--listen")?,
            "--liveness-ms" => {
                args.liveness_ms = value("--liveness-ms")?
                    .parse()
                    .map_err(|e| format!("--liveness-ms: {e}"))?;
            }
            "--scrape-ms" => {
                args.scrape_ms = value("--scrape-ms")?
                    .parse()
                    .map_err(|e| format!("--scrape-ms: {e}"))?;
            }
            "--secret" | "--secret-file" => {
                let v = value(&flag)?;
                args.secret = Some(pangea_coord::cli::resolve_secret_flag(&flag, v)?);
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                exit(0);
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if args.listen.is_empty() {
        return Err("--listen is required".to_string());
    }
    Ok(args)
}

fn main() {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("top") => {
            argv.remove(0);
            exit(run_top(argv));
        }
        Some("trace") => {
            argv.remove(0);
            exit(run_trace(argv));
        }
        _ => {}
    }
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("pangea-mgr: {e}\n{USAGE}");
            exit(2);
        }
    };
    let scrape = (args.scrape_ms > 0).then(|| Duration::from_millis(args.scrape_ms));
    let mut server = match MgrServer::bind_full(
        &args.listen,
        Duration::from_millis(args.liveness_ms),
        args.secret.clone(),
        scrape,
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("pangea-mgr: cannot bind {}: {e}", args.listen);
            exit(1);
        }
    };
    println!(
        "pangea-mgr listening on {} (liveness timeout: {} ms, scrape: {}, handshake: {})",
        server.local_addr(),
        args.liveness_ms,
        match args.scrape_ms {
            0 => "off".to_string(),
            ms => format!("every {ms} ms"),
        },
        if args.secret.is_some() {
            "required"
        } else {
            "open"
        }
    );
    // Serve until SIGINT/SIGTERM, then drain in-flight requests and
    // join every handler thread before exiting.
    pangea_coord::wait_for_termination();
    println!("pangea-mgr: shutting down");
    server.shutdown();
}
