//! `pangea-mgr` — run the Pangea manager daemon.
//!
//! ```text
//! pangea-mgr --listen 127.0.0.1:7780 [--liveness-ms 3000] \
//!            [--secret S | --secret-file PATH]
//! ```
//!
//! The daemon serves the wire catalog + membership until killed.
//! Argument parsing is deliberately dependency-free.

use pangea_coord::MgrServer;
use std::process::exit;
use std::time::Duration;

struct Args {
    listen: String,
    liveness_ms: u64,
    secret: Option<String>,
}

const USAGE: &str = "usage: pangea-mgr --listen <addr:port> \
    [--liveness-ms N] [--secret S | --secret-file PATH]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        listen: String::new(),
        liveness_ms: 3000,
        secret: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--listen" => args.listen = value("--listen")?,
            "--liveness-ms" => {
                args.liveness_ms = value("--liveness-ms")?
                    .parse()
                    .map_err(|e| format!("--liveness-ms: {e}"))?;
            }
            "--secret" | "--secret-file" => {
                let v = value(&flag)?;
                args.secret = Some(pangea_coord::cli::resolve_secret_flag(&flag, v)?);
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                exit(0);
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if args.listen.is_empty() {
        return Err("--listen is required".to_string());
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("pangea-mgr: {e}\n{USAGE}");
            exit(2);
        }
    };
    let mut server = match MgrServer::bind_with(
        &args.listen,
        Duration::from_millis(args.liveness_ms),
        args.secret.clone(),
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("pangea-mgr: cannot bind {}: {e}", args.listen);
            exit(1);
        }
    };
    println!(
        "pangea-mgr listening on {} (liveness timeout: {} ms, handshake: {})",
        server.local_addr(),
        args.liveness_ms,
        if args.secret.is_some() {
            "required"
        } else {
            "open"
        }
    );
    // Serve until SIGINT/SIGTERM, then drain in-flight requests and
    // join every handler thread before exiting.
    pangea_coord::wait_for_termination();
    println!("pangea-mgr: shutting down");
    server.shutdown();
}
