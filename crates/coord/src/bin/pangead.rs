//! `pangead` — run one Pangea storage node behind the wire protocol.
//!
//! ```text
//! pangead --listen 127.0.0.1:7781 --data /var/lib/pangea/node0 \
//!         [--pool-mb 64] [--page-kb 256] [--disks 1] \
//!         [--strategy data-aware] [--disk-bw-mb <MB/s>] \
//!         [--secret S | --secret-file PATH] \
//!         [--manager <addr:port>] [--advertise <addr:port>] \
//!         [--slot N] [--heartbeat-ms 500] [--trace-log PATH] \
//!         [--io-threads 4] [--max-conns 256] [--window 8]
//! ```
//!
//! With `--manager`, the daemon registers itself with a `pangea-mgr`
//! (pinning `--slot` when replacing a dead worker), heartbeats in the
//! background, and deregisters on clean exit. With `--trace-log`, every
//! completed trace span (traced RPCs and their fan-out) is also
//! appended to PATH as one JSON object per line, in addition to the
//! in-memory ring served by `MetricsDump`. Argument parsing is
//! deliberately dependency-free.

use pangea_coord::WorkerAgent;
use pangea_core::{NodeConfig, StorageNode};
use pangea_net::{PangeadServer, ServerConfig};
use std::process::exit;
use std::time::Duration;

struct Args {
    listen: String,
    data: String,
    pool_mb: usize,
    page_kb: usize,
    disks: usize,
    strategy: String,
    disk_bw_mb: Option<u64>,
    secret: Option<String>,
    manager: Option<String>,
    advertise: Option<String>,
    slot: Option<u32>,
    heartbeat_ms: u64,
    trace_log: Option<String>,
    io_threads: usize,
    max_conns: usize,
    window: u32,
}

const USAGE: &str = "usage: pangead --listen <addr:port> --data <dir> \
    [--pool-mb N] [--page-kb N] [--disks N] [--strategy NAME] [--disk-bw-mb N] \
    [--secret S | --secret-file PATH] \
    [--manager <addr:port>] [--advertise <addr:port>] [--slot N] [--heartbeat-ms N] \
    [--trace-log PATH] [--io-threads N] [--max-conns N] [--window N]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        listen: String::new(),
        data: String::new(),
        pool_mb: 64,
        page_kb: 256,
        disks: 1,
        strategy: "data-aware".to_string(),
        disk_bw_mb: None,
        secret: None,
        manager: None,
        advertise: None,
        slot: None,
        heartbeat_ms: 500,
        trace_log: None,
        io_threads: 0,
        max_conns: 0,
        window: 0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--listen" => args.listen = value("--listen")?,
            "--data" => args.data = value("--data")?,
            "--pool-mb" => {
                args.pool_mb = value("--pool-mb")?
                    .parse()
                    .map_err(|e| format!("--pool-mb: {e}"))?;
            }
            "--page-kb" => {
                args.page_kb = value("--page-kb")?
                    .parse()
                    .map_err(|e| format!("--page-kb: {e}"))?;
            }
            "--disks" => {
                args.disks = value("--disks")?
                    .parse()
                    .map_err(|e| format!("--disks: {e}"))?;
            }
            "--strategy" => args.strategy = value("--strategy")?,
            "--disk-bw-mb" => {
                args.disk_bw_mb = Some(
                    value("--disk-bw-mb")?
                        .parse()
                        .map_err(|e| format!("--disk-bw-mb: {e}"))?,
                );
            }
            "--secret" | "--secret-file" => {
                let v = value(&flag)?;
                args.secret = Some(pangea_coord::cli::resolve_secret_flag(&flag, v)?);
            }
            "--manager" => args.manager = Some(value("--manager")?),
            "--advertise" => args.advertise = Some(value("--advertise")?),
            "--slot" => {
                args.slot = Some(
                    value("--slot")?
                        .parse()
                        .map_err(|e| format!("--slot: {e}"))?,
                );
            }
            "--heartbeat-ms" => {
                args.heartbeat_ms = value("--heartbeat-ms")?
                    .parse()
                    .map_err(|e| format!("--heartbeat-ms: {e}"))?;
            }
            "--trace-log" => args.trace_log = Some(value("--trace-log")?),
            "--io-threads" => {
                args.io_threads = value("--io-threads")?
                    .parse()
                    .map_err(|e| format!("--io-threads: {e}"))?;
            }
            "--max-conns" => {
                args.max_conns = value("--max-conns")?
                    .parse()
                    .map_err(|e| format!("--max-conns: {e}"))?;
            }
            "--window" => {
                args.window = value("--window")?
                    .parse()
                    .map_err(|e| format!("--window: {e}"))?;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                exit(0);
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if args.listen.is_empty() || args.data.is_empty() {
        return Err("--listen and --data are required".to_string());
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("pangead: {e}\n{USAGE}");
            exit(2);
        }
    };
    let mut config = NodeConfig::new(&args.data)
        .with_pool_capacity(args.pool_mb * pangea_common::MB)
        .with_page_size(args.page_kb * pangea_common::KB)
        .with_disks(args.disks)
        .with_strategy(&args.strategy);
    if let Some(bw) = args.disk_bw_mb {
        config = config.with_disk_bandwidth(bw * pangea_common::MB as u64);
    }
    let node = match StorageNode::new(config) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("pangead: cannot start storage node: {e}");
            exit(1);
        }
    };
    // 0 for any tuning flag keeps the library default (io threads,
    // connection cap, push-pipelining window).
    let server_config = ServerConfig {
        io_threads: args.io_threads,
        max_conns: args.max_conns,
        registry: None,
        pipeline_window: args.window,
    };
    let mut server = match PangeadServer::bind_with_config(
        node,
        &args.listen,
        args.secret.clone(),
        server_config,
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("pangead: cannot bind {}: {e}", args.listen);
            exit(1);
        }
    };
    if let Some(path) = &args.trace_log {
        if let Err(e) = server
            .daemon()
            .obs()
            .ring()
            .set_jsonl_sink(std::path::Path::new(path))
        {
            eprintln!("pangead: cannot open trace log {path}: {e}");
            exit(1);
        }
        println!("pangead: appending trace spans to {path}");
    }
    println!(
        "pangead listening on {} (data: {}, pool: {} MB, pages: {} KB, strategy: {})",
        server.local_addr(),
        args.data,
        args.pool_mb,
        args.page_kb,
        args.strategy
    );
    // Register with the manager when one is configured: the agent
    // heartbeats in the background and deregisters on clean shutdown.
    let mut agent = match &args.manager {
        Some(mgr) => {
            let advertise = args
                .advertise
                .clone()
                .unwrap_or_else(|| server.local_addr().to_string());
            match WorkerAgent::register(
                mgr,
                args.secret.as_deref(),
                &advertise,
                args.slot.map(pangea_common::NodeId),
                Duration::from_millis(args.heartbeat_ms),
            ) {
                Ok(agent) => {
                    println!(
                        "registered with pangea-mgr {mgr} as {} ({}, advertising {advertise})",
                        agent.node(),
                        agent.epoch(),
                    );
                    Some(agent)
                }
                Err(e) => {
                    eprintln!("pangead: cannot register with manager {mgr}: {e}");
                    exit(1);
                }
            }
        }
        None => None,
    };
    // Serve until SIGINT/SIGTERM, then exit cleanly: deregister with
    // the manager (Left, not Dead — never fed to recovery) and drain
    // in-flight requests before closing connections.
    pangea_coord::wait_for_termination();
    println!("pangead: shutting down");
    if let Some(agent) = agent.as_mut() {
        if let Err(e) = agent.shutdown() {
            eprintln!("pangead: deregistration failed: {e}");
        }
    }
    server.shutdown();
}
