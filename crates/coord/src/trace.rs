//! `pangea-mgr trace <job-id>` — cross-node job trace analysis.
//!
//! Pulls one job's fleet-wide spans from the manager's retained store
//! (the paginated `TraceQuery` RPC), stitches them into a
//! [`SpanTree`], and renders either a human waterfall — tree-indented
//! spans on the job's unified timeline, critical path starred,
//! per-worker busy-time skew with straggler callouts, and byte
//! attribution per cross-node hop — or one JSON document (`--json`)
//! carrying the same analysis for scripting (the CI smoke asserts tree
//! connectivity from it).
//!
//! A nonzero dropped-span count (a worker ring wrapped past the scrape
//! cursor, or the store's own bounds) is printed up front: an
//! incomplete trace must say so before showing anything pretty.

use crate::client::ManagerClient;
use pangea_common::Result;
use pangea_obs::{json_escape, NodeSpan, SpanTree};

/// Fetches one job's spans from the manager and stitches the tree.
/// Returns the tree plus the fleet's dropped-span count at query time.
pub fn fetch(manager: &str, secret: Option<&str>, job: u64) -> Result<(SpanTree, u64)> {
    let (pairs, dropped) = ManagerClient::connect(manager, secret)?.trace_query(job)?;
    let spans: Vec<NodeSpan> = pairs
        .into_iter()
        .map(|(node, w)| {
            let (seq, record) = crate::scrape::record_of(w);
            NodeSpan { node, seq, record }
        })
        .collect();
    Ok((SpanTree::build(&spans), dropped))
}

fn us(ns: u64) -> String {
    format!("{:.1}", ns as f64 / 1_000.0)
}

/// One waterfall bar: `width` columns over the job's total wall time.
fn bar(start_ns: u64, end_ns: u64, total_ns: u64, width: usize) -> String {
    if total_ns == 0 {
        return String::new();
    }
    let col = |ns: u64| ((ns as u128 * width as u128) / total_ns as u128) as usize;
    let from = col(start_ns).min(width.saturating_sub(1));
    let to = col(end_ns).clamp(from + 1, width);
    format!("{}{}", " ".repeat(from), "#".repeat(to - from))
}

/// Renders the human waterfall (see the module docs).
pub fn render_text(job: u64, tree: &SpanTree, dropped: u64) -> String {
    let mut out = String::new();
    let total = tree.total_ns();
    let nodes = tree.per_node_busy_ns();
    out.push_str(&format!(
        "job {job}: {} spans across {} nodes, {}us reconstructed wall time\n",
        tree.spans.len(),
        nodes.len(),
        us(total),
    ));
    if dropped > 0 {
        out.push_str(&format!(
            "WARNING: {dropped} spans known dropped — this trace is incomplete\n"
        ));
    }
    if !tree.missing_parents.is_empty() {
        out.push_str(&format!(
            "WARNING: {} referenced parent span(s) never scraped: {:?}\n",
            tree.missing_parents.len(),
            tree.missing_parents,
        ));
    }
    if tree.spans.is_empty() {
        out.push_str("no spans retained for this job\n");
        return out;
    }
    let path: std::collections::HashSet<usize> = tree.critical_path().into_iter().collect();
    const WIDTH: usize = 40;
    out.push_str(&format!(
        "\n  {:<9} {:<26} {:>9} {:>9}  TIMELINE\n",
        "NODE", "OP", "DUR(us)", "BYTES"
    ));
    for i in tree.walk() {
        let s = &tree.spans[i];
        let op = format!(
            "{}{}{}",
            "  ".repeat(s.depth.min(10)),
            s.record.op,
            if path.contains(&i) { " *" } else { "" },
        );
        out.push_str(&format!(
            "  {:<9} {:<26} {:>9} {:>9}  |{}|\n",
            s.node,
            op,
            us(s.duration_ns()),
            s.record.bytes,
            bar(s.aligned_start_ns, s.aligned_end_ns, total, WIDTH),
        ));
    }
    let ops: Vec<String> = tree
        .critical_path()
        .iter()
        .map(|&i| format!("{}@{}", tree.spans[i].record.op, tree.spans[i].node))
        .collect();
    out.push_str(&format!("\ncritical path (*): {}\n", ops.join(" -> ")));
    let busy: Vec<String> = nodes
        .iter()
        .map(|(n, b)| format!("{n} {}us", us(*b)))
        .collect();
    let (median, stragglers) = tree.stragglers();
    out.push_str(&format!(
        "per-node busy: {} (median {}us)\n",
        busy.join(", "),
        us(median)
    ));
    if !stragglers.is_empty() {
        let flagged: Vec<String> = stragglers
            .iter()
            .map(|(n, b)| format!("{n} ({:.1}x median)", *b as f64 / (median.max(1)) as f64))
            .collect();
        out.push_str(&format!("stragglers: {}\n", flagged.join(", ")));
    }
    let hops = tree.bytes_per_hop();
    if !hops.is_empty() {
        let hops: Vec<String> = hops
            .iter()
            .map(|(from, to, b)| format!("{from}->{to} {b}B"))
            .collect();
        out.push_str(&format!("bytes per hop: {}\n", hops.join(", ")));
    }
    out
}

/// Renders the stitched trace as one JSON document: connectivity
/// verdict, the aligned spans (critical-path membership flagged), the
/// critical path as span ids, per-node busy time, stragglers, and byte
/// attribution per hop.
pub fn render_json(job: u64, tree: &SpanTree, dropped: u64) -> String {
    let path: Vec<usize> = tree.critical_path();
    let in_path: std::collections::HashSet<usize> = path.iter().copied().collect();
    let spans: Vec<String> = tree
        .walk()
        .into_iter()
        .map(|i| {
            let s = &tree.spans[i];
            format!(
                "{{\"node\":\"{}\",\"op\":\"{}\",\"span\":{},\"parent\":{},\"depth\":{},\
                 \"start_ns\":{},\"end_ns\":{},\"duration_ns\":{},\"bytes\":{},\
                 \"outcome\":\"{}\",\"critical\":{}}}",
                json_escape(&s.node),
                json_escape(&s.record.op),
                s.record.span,
                s.record.parent,
                s.depth,
                s.aligned_start_ns,
                s.aligned_end_ns,
                s.duration_ns(),
                s.record.bytes,
                json_escape(&s.record.outcome),
                in_path.contains(&i),
            )
        })
        .collect();
    let critical: Vec<String> = path
        .iter()
        .map(|&i| tree.spans[i].record.span.to_string())
        .collect();
    let busy: Vec<String> = tree
        .per_node_busy_ns()
        .into_iter()
        .map(|(n, b)| format!("{{\"node\":\"{}\",\"busy_ns\":{b}}}", json_escape(&n)))
        .collect();
    let (median, stragglers) = tree.stragglers();
    let stragglers: Vec<String> = stragglers
        .into_iter()
        .map(|(n, b)| format!("{{\"node\":\"{}\",\"busy_ns\":{b}}}", json_escape(&n)))
        .collect();
    let hops: Vec<String> = tree
        .bytes_per_hop()
        .into_iter()
        .map(|(from, to, b)| {
            format!(
                "{{\"from\":\"{}\",\"to\":\"{}\",\"bytes\":{b}}}",
                json_escape(&from),
                json_escape(&to)
            )
        })
        .collect();
    let missing: Vec<String> = tree.missing_parents.iter().map(u64::to_string).collect();
    format!(
        "{{\"job\":{job},\"connected\":{},\"roots\":{},\"missing_parents\":[{}],\
         \"dropped\":{dropped},\"total_ns\":{},\"spans\":[{}],\"critical_path\":[{}],\
         \"per_node_busy\":[{}],\"median_busy_ns\":{median},\"stragglers\":[{}],\
         \"bytes_per_hop\":[{}]}}\n",
        tree.is_connected(),
        tree.roots.len(),
        missing.join(","),
        tree.total_ns(),
        spans.join(","),
        critical.join(","),
        busy.join(","),
        stragglers.join(","),
        hops.join(","),
    )
}

/// Runs the `trace` subcommand end to end: fetch + stitch via
/// `manager`, render (waterfall by default, JSON with `json`), and
/// return the text for the binary to print.
pub fn run(manager: &str, secret: Option<&str>, job: u64, json: bool) -> Result<String> {
    let (tree, dropped) = fetch(manager, secret, job)?;
    Ok(if json {
        render_json(job, &tree, dropped)
    } else {
        render_text(job, &tree, dropped)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pangea_obs::SpanRecord;

    fn span(node: &str, id: u64, parent: u64, op: &str, start: u64, end: u64) -> NodeSpan {
        NodeSpan {
            node: node.into(),
            seq: id,
            record: SpanRecord {
                job: 7,
                span: id,
                parent,
                op: op.into(),
                peer: String::new(),
                start_ns: start,
                end_ns: end,
                bytes: 10 * id,
                outcome: "ok".into(),
            },
        }
    }

    fn sample_tree() -> SpanTree {
        SpanTree::build(&[
            span("driver", 1, 0, "DriverRpc", 0, 1000),
            span("w0", 2, 1, "TaskRun", 50, 650),
            span("w1", 3, 1, "TaskRun", 80, 280),
        ])
    }

    #[test]
    fn waterfall_marks_critical_path_and_attributes_bytes() {
        let text = render_text(7, &sample_tree(), 0);
        assert!(text.contains("3 spans across 3 nodes"), "{text}");
        assert!(text.contains("DriverRpc *"), "{text}");
        assert!(text.contains("TaskRun *"), "{text}");
        assert!(
            text.contains("critical path (*): DriverRpc@driver -> TaskRun@w0"),
            "{text}"
        );
        assert!(text.contains("driver->w0 20B"), "{text}");
        assert!(text.contains("driver->w1 30B"), "{text}");
        assert!(!text.contains("WARNING"), "{text}");
    }

    #[test]
    fn incomplete_traces_warn_before_rendering() {
        let text = render_text(7, &sample_tree(), 12);
        assert!(text.contains("WARNING: 12 spans known dropped"), "{text}");
        // An orphaned span is reported too.
        let tree = SpanTree::build(&[
            span("driver", 1, 0, "DriverRpc", 0, 100),
            span("w0", 2, 99, "TaskRun", 0, 50),
        ]);
        let text = render_text(7, &tree, 0);
        assert!(text.contains("never scraped"), "{text}");
    }

    #[test]
    fn json_reports_connectivity_and_critical_path() {
        let json = render_json(7, &sample_tree(), 0);
        assert!(json.contains("\"connected\":true"), "{json}");
        assert!(json.contains("\"roots\":1"), "{json}");
        assert!(json.contains("\"critical\":true"), "{json}");
        assert!(json.contains("\"critical_path\":[1,2]"), "{json}");
        assert!(json.contains("\"bytes_per_hop\""), "{json}");
        let json = render_json(
            7,
            &SpanTree::build(&[span("w0", 2, 99, "TaskRun", 0, 50)]),
            3,
        );
        assert!(json.contains("\"connected\":false"), "{json}");
        assert!(json.contains("\"missing_parents\":[99]"), "{json}");
        assert!(json.contains("\"dropped\":3"), "{json}");
    }

    #[test]
    fn empty_job_renders_without_panicking() {
        let tree = SpanTree::build(&[]);
        let text = render_text(1, &tree, 0);
        assert!(text.contains("no spans retained"), "{text}");
        let json = render_json(1, &tree, 0);
        assert!(json.contains("\"spans\":[]"), "{json}");
    }
}
