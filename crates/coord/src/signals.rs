//! Minimal, dependency-free termination handling for the daemons.
//!
//! The daemon binaries must run their clean-exit paths — the worker
//! agent's deregistration, the servers' graceful drain — when an
//! operator stops them, so `SIGINT`/`SIGTERM` set a flag the main
//! thread polls instead of killing the process outright.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_terminate(_sig: i32) {
    // Only async-signal-safe work here: flip the flag, nothing else.
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Blocks until the process receives `SIGINT` or `SIGTERM` (on unix;
/// elsewhere it parks forever and the default signal disposition
/// applies). Call once from a daemon's main thread; run the clean-exit
/// path after it returns.
pub fn wait_for_termination() {
    #[cfg(unix)]
    unsafe {
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        let handler = on_terminate as *const () as usize;
        signal(2, handler); // SIGINT
        signal(15, handler); // SIGTERM
    }
    while !SHUTDOWN.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(100));
    }
}
