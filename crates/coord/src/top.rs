//! `pangea-mgr top` — one fleet-wide observability snapshot.
//!
//! The subcommand asks the manager for its membership view, then issues
//! one `MetricsDump` RPC to the manager itself and to every alive
//! worker, and renders the result either as a per-node text table
//! (per-opcode RPC counts, payload bytes, and p50/p99 latency pulled
//! from the wire histograms) or as one JSON document (`--json`) for
//! scripting. A node that cannot be reached degrades to an error line
//! instead of failing the whole snapshot — `top` is a diagnostic tool
//! and must work best on a half-broken fleet.

use crate::client::ManagerClient;
use pangea_common::Result;
use pangea_net::{PangeaClient, WireMetric, WireSpan, WorkerState};
use pangea_obs::{json_escape, names, quantile_from_buckets};

/// One node's slice of the fleet snapshot.
#[derive(Debug)]
pub struct NodeDump {
    /// Display name: `mgr` for the manager, `worker<N>` for slot N.
    pub name: String,
    /// The address the dump was fetched from (the advertised address
    /// for workers, the `--manager` address for the manager).
    pub addr: String,
    /// Membership state for workers; `None` for the manager row.
    pub state: Option<WorkerState>,
    /// The node's full metric registry, sorted by name.
    pub metrics: Vec<WireMetric>,
    /// The retained tail of the node's span ring.
    pub spans: Vec<WireSpan>,
    /// Why the dump is empty, when the node could not be reached.
    pub error: Option<String>,
}

/// Fetches a [`NodeDump`] from every reachable node: the manager first,
/// then each worker the membership snapshot lists as alive (dead/left
/// slots get an error row — their daemons are gone by definition).
pub fn fleet_snapshot(manager: &str, secret: Option<&str>) -> Result<Vec<NodeDump>> {
    let workers = ManagerClient::connect(manager, secret)?.list_workers()?;
    let mut nodes = Vec::with_capacity(workers.len() + 1);
    nodes.push(dump_node("mgr", manager, None, secret));
    for w in &workers {
        let name = format!("worker{}", w.node);
        if w.state == WorkerState::Alive {
            nodes.push(dump_node(&name, &w.addr, Some(w.state), secret));
        } else {
            nodes.push(NodeDump {
                name,
                addr: w.addr.clone(),
                state: Some(w.state),
                metrics: Vec::new(),
                spans: Vec::new(),
                error: Some(format!("not dumped: slot is {:?}", w.state)),
            });
        }
    }
    Ok(nodes)
}

fn dump_node(name: &str, addr: &str, state: Option<WorkerState>, secret: Option<&str>) -> NodeDump {
    let fetched = PangeaClient::connect_with_secret(addr, secret)
        .and_then(|mut client| client.metrics_dump());
    let (metrics, spans, error) = match fetched {
        Ok((metrics, spans)) => (metrics, spans, None),
        Err(e) => (Vec::new(), Vec::new(), Some(e.to_string())),
    };
    NodeDump {
        name: name.to_string(),
        addr: addr.to_string(),
        state,
        metrics,
        spans,
        error,
    }
}

/// One per-opcode row of the text table, stitched from the node's
/// `rpc.count.*` / `rpc.bytes.*` / `rpc.latency_ns.*` metrics.
struct OpRow {
    op: String,
    count: u64,
    bytes: u64,
    p50_ns: u64,
    p99_ns: u64,
}

fn row_index(rows: &mut Vec<OpRow>, op: &str) -> usize {
    if let Some(i) = rows.iter().position(|r| r.op == op) {
        return i;
    }
    rows.push(OpRow {
        op: op.to_string(),
        count: 0,
        bytes: 0,
        p50_ns: 0,
        p99_ns: 0,
    });
    rows.len() - 1
}

fn op_rows(metrics: &[WireMetric]) -> Vec<OpRow> {
    let mut rows: Vec<OpRow> = Vec::new();
    for m in metrics {
        if let Some(op) = m.name().strip_prefix(names::RPC_COUNT_PREFIX) {
            if let WireMetric::Counter { value, .. } = m {
                let i = row_index(&mut rows, op);
                rows[i].count = *value;
            }
        } else if let Some(op) = m.name().strip_prefix(names::RPC_BYTES_PREFIX) {
            if let WireMetric::Counter { value, .. } = m {
                let i = row_index(&mut rows, op);
                rows[i].bytes = *value;
            }
        } else if let Some(op) = m.name().strip_prefix(names::RPC_LATENCY_NS_PREFIX) {
            if let WireMetric::Histogram { buckets, .. } = m {
                let i = row_index(&mut rows, op);
                rows[i].p50_ns = quantile_from_buckets(buckets, 0.50);
                rows[i].p99_ns = quantile_from_buckets(buckets, 0.99);
            }
        }
    }
    rows.sort_by(|a, b| b.count.cmp(&a.count).then_with(|| a.op.cmp(&b.op)));
    rows
}

fn us(ns: u64) -> String {
    format!("{:.1}", ns as f64 / 1_000.0)
}

/// Renders the snapshot as a human-oriented text table: one block per
/// node with its per-opcode RPC rows plus the non-RPC counters and
/// gauges, latencies in microseconds (bucket upper bounds, so they are
/// coarse by design — log2 buckets).
pub fn render_table(nodes: &[NodeDump]) -> String {
    let mut out = String::new();
    for node in nodes {
        let state = match node.state {
            Some(s) => format!("{s:?}").to_lowercase(),
            None => "manager".to_string(),
        };
        out.push_str(&format!("== {} ({}, {}) ==\n", node.name, node.addr, state));
        if let Some(e) = &node.error {
            out.push_str(&format!("  unreachable: {e}\n\n"));
            continue;
        }
        let rows = op_rows(&node.metrics);
        if rows.is_empty() {
            out.push_str("  no RPCs served yet\n");
        } else {
            out.push_str(&format!(
                "  {:<16} {:>8} {:>12} {:>10} {:>10}\n",
                "OP", "COUNT", "BYTES", "P50(us)", "P99(us)"
            ));
            for r in &rows {
                out.push_str(&format!(
                    "  {:<16} {:>8} {:>12} {:>10} {:>10}\n",
                    r.op,
                    r.count,
                    r.bytes,
                    us(r.p50_ns),
                    us(r.p99_ns)
                ));
            }
        }
        let mut extras = Vec::new();
        for m in &node.metrics {
            match m {
                WireMetric::Counter { name, value } if !name.starts_with("rpc.") => {
                    extras.push(format!("{name}={value}"));
                }
                WireMetric::Gauge { name, value } => {
                    extras.push(format!("{name}={value}"));
                }
                _ => {}
            }
        }
        if !extras.is_empty() {
            out.push_str(&format!("  {}\n", extras.join("  ")));
        }
        out.push_str(&format!("  spans retained: {}\n\n", node.spans.len()));
    }
    out
}

fn metric_json(m: &WireMetric) -> String {
    match m {
        WireMetric::Counter { name, value } => format!(
            "{{\"name\":\"{}\",\"kind\":\"counter\",\"value\":{value}}}",
            json_escape(name)
        ),
        WireMetric::Gauge { name, value } => format!(
            "{{\"name\":\"{}\",\"kind\":\"gauge\",\"value\":{value}}}",
            json_escape(name)
        ),
        WireMetric::Histogram {
            name,
            count,
            sum,
            buckets,
        } => format!(
            "{{\"name\":\"{}\",\"kind\":\"histogram\",\"count\":{count},\"sum\":{sum},\
             \"p50\":{},\"p99\":{}}}",
            json_escape(name),
            quantile_from_buckets(buckets, 0.50),
            quantile_from_buckets(buckets, 0.99),
        ),
    }
}

fn span_json(s: &WireSpan) -> String {
    format!(
        "{{\"seq\":{},\"job\":{},\"span\":{},\"parent\":{},\"op\":\"{}\",\"peer\":\"{}\",\
         \"start_ns\":{},\"end_ns\":{},\"bytes\":{},\"outcome\":\"{}\"}}",
        s.seq,
        s.job,
        s.span,
        s.parent,
        json_escape(&s.op),
        json_escape(&s.peer),
        s.start_ns,
        s.end_ns,
        s.bytes,
        json_escape(&s.outcome),
    )
}

/// Renders the snapshot as one JSON document (`--json`): an object with
/// a `nodes` array; each node carries its name/addr/state, an `error`
/// when unreachable, the full metric list (histograms pre-digested to
/// p50/p99 in nanoseconds), and the retained spans.
pub fn render_json(nodes: &[NodeDump]) -> String {
    let mut items = Vec::with_capacity(nodes.len());
    for node in nodes {
        let state = match node.state {
            Some(s) => format!("\"{s:?}\"").to_lowercase(),
            None => "\"manager\"".to_string(),
        };
        let error = match &node.error {
            Some(e) => format!("\"{}\"", json_escape(e)),
            None => "null".to_string(),
        };
        let metrics: Vec<String> = node.metrics.iter().map(metric_json).collect();
        let spans: Vec<String> = node.spans.iter().map(span_json).collect();
        items.push(format!(
            "{{\"name\":\"{}\",\"addr\":\"{}\",\"state\":{state},\"error\":{error},\
             \"metrics\":[{}],\"spans\":[{}]}}",
            json_escape(&node.name),
            json_escape(&node.addr),
            metrics.join(","),
            spans.join(","),
        ));
    }
    format!("{{\"nodes\":[{}]}}\n", items.join(","))
}

/// Runs the `top` subcommand end to end: snapshot the fleet via
/// `manager`, render (table by default, JSON with `json`), and return
/// the rendered text for the binary to print.
pub fn run(manager: &str, secret: Option<&str>, json: bool) -> Result<String> {
    let nodes = fleet_snapshot(manager, secret)?;
    Ok(if json {
        render_json(&nodes)
    } else {
        render_table(&nodes)
    })
}

/// The fixed `--watch` column set: `(fleet.<node>.<key>, header)` pairs,
/// in display order. The values come from the manager's scrape loop
/// (`fleet.*` gauges), so `--watch` costs one manager RPC per tick no
/// matter how large the fleet is.
const WATCH_COLUMNS: &[(&str, &str)] = &[
    (names::FLEET_RPC_PER_SEC, "RPC/S"),
    (names::FLEET_BYTES_PER_SEC, "BYTES/S"),
    (names::FLEET_RPC_P50_NS, "P50(us)"),
    (names::FLEET_RPC_P99_NS, "P99(us)"),
    ("share_bytes", "SHARE(B)"),
    ("session_bytes", "SESS(B)"),
    ("pool_peers", "PEERS"),
    ("spill_bytes", "SPILL(B)"),
    ("pool_used", "POOL(B)"),
    ("staleness_ms", "STALE(ms)"),
    ("ring_dropped_spans", "RINGDROP"),
    (names::FLEET_SCRAPE_DROPPED_SPANS, "LOST"),
];

/// Renders one `--watch` frame from the manager's metric dump: one row
/// per node seen in the `fleet.*` gauges, `-` where the scrape loop has
/// not exported a value (e.g. workers have no staleness until the
/// manager measures one, the manager has no heartbeat staleness at
/// all). Latency gauges are nanosecond bucket bounds; shown as us to
/// match the snapshot table.
pub fn render_watch(metrics: &[WireMetric]) -> String {
    let mut nodes: Vec<String> = Vec::new();
    let mut cells: Vec<(String, String, u64)> = Vec::new();
    for m in metrics {
        let (name, value) = match m {
            WireMetric::Gauge { name, value } => (name, *value),
            _ => continue,
        };
        let Some(rest) = name.strip_prefix(names::FLEET_PREFIX) else {
            continue;
        };
        let Some((node, key)) = rest.rsplit_once('.') else {
            continue;
        };
        if !nodes.iter().any(|n| n == node) {
            nodes.push(node.to_string());
        }
        cells.push((node.to_string(), key.to_string(), value));
    }
    nodes.sort();
    let mut out = String::new();
    if nodes.is_empty() {
        out.push_str("no fleet.* gauges yet — is the manager's scrape loop on? (--scrape-ms)\n");
        return out;
    }
    out.push_str(&format!("  {:<10}", "NODE"));
    for (_, header) in WATCH_COLUMNS {
        out.push_str(&format!(" {header:>9}"));
    }
    out.push('\n');
    for node in &nodes {
        out.push_str(&format!("  {node:<10}"));
        for (key, _) in WATCH_COLUMNS {
            let cell = cells
                .iter()
                .find(|(n, k, _)| n == node && k == key)
                .map(|(_, _, v)| {
                    if key.ends_with("_ns") {
                        us(*v)
                    } else {
                        v.to_string()
                    }
                })
                .unwrap_or_else(|| "-".to_string());
            out.push_str(&format!(" {cell:>9}"));
        }
        out.push('\n');
    }
    out
}

/// Runs `top --watch`: every `interval_ms`, one `MetricsDump` RPC to
/// the manager, rendered as a fleet rates table (see [`render_watch`]).
/// Prints frames to stdout until `iters` runs out (`None` = forever).
/// Reconnects on a failed tick instead of exiting — like the snapshot
/// form, watching must work best on a half-broken fleet.
pub fn run_watch(
    manager: &str,
    secret: Option<&str>,
    interval_ms: u64,
    iters: Option<u64>,
) -> Result<()> {
    let interval = std::time::Duration::from_millis(interval_ms.max(100));
    let mut client: Option<PangeaClient> = None;
    let mut tick = 0u64;
    loop {
        let dumped = match client.take() {
            Some(c) => Ok(c),
            None => PangeaClient::connect_with_secret(manager, secret),
        }
        .and_then(|mut c| c.metrics_dump().map(|(metrics, _)| (c, metrics)));
        tick += 1;
        match dumped {
            Ok((c, metrics)) => {
                println!("-- tick {tick} --\n{}", render_watch(&metrics));
                client = Some(c);
            }
            Err(e) => println!("-- tick {tick} --\nmanager unreachable: {e}\n"),
        }
        if let Some(n) = iters {
            if tick >= n {
                return Ok(());
            }
        }
        std::thread::sleep(interval);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<NodeDump> {
        let mut buckets = vec![0u64; pangea_obs::HISTOGRAM_BUCKETS];
        buckets[11] = 3; // three observations in the (1024, 2048] bucket
        vec![NodeDump {
            name: "worker0".to_string(),
            addr: "127.0.0.1:7781".to_string(),
            state: Some(WorkerState::Alive),
            metrics: vec![
                WireMetric::Counter {
                    name: "rpc.count.TaskRun".to_string(),
                    value: 3,
                },
                WireMetric::Counter {
                    name: "rpc.bytes.TaskRun".to_string(),
                    value: 600,
                },
                WireMetric::Histogram {
                    name: "rpc.latency_ns.TaskRun".to_string(),
                    count: 3,
                    sum: 5000,
                    buckets,
                },
                WireMetric::Gauge {
                    name: "sessions.ingest.live".to_string(),
                    value: 0,
                },
            ],
            spans: vec![WireSpan {
                seq: 0,
                job: 7,
                span: 1,
                parent: 0,
                op: "TaskRun".to_string(),
                peer: "d\"r".to_string(),
                start_ns: 1,
                end_ns: 2,
                bytes: 0,
                outcome: "ok".to_string(),
            }],
            error: None,
        }]
    }

    #[test]
    fn table_stitches_per_opcode_rows() {
        let text = render_table(&sample());
        assert!(text.contains("worker0"), "{text}");
        let row = text.lines().find(|l| l.contains("TaskRun")).unwrap();
        assert!(row.contains('3'), "count column: {row}");
        assert!(row.contains("600"), "bytes column: {row}");
        // p50 and p99 both land on the 2048 ns bucket bound = 2.0 us.
        assert_eq!(row.matches("2.0").count(), 2, "{row}");
        assert!(text.contains("sessions.ingest.live=0"), "{text}");
        assert!(text.contains("spans retained: 1"), "{text}");
    }

    #[test]
    fn watch_renders_fleet_gauges_per_node() {
        let metrics = vec![
            WireMetric::Gauge {
                name: "fleet.worker0.rpc_per_sec".to_string(),
                value: 12,
            },
            WireMetric::Gauge {
                name: "fleet.worker0.rpc_p99_ns".to_string(),
                value: 2048,
            },
            WireMetric::Gauge {
                name: "fleet.mgr.rpc_per_sec".to_string(),
                value: 3,
            },
            // Non-fleet metrics are ignored by the watch table.
            WireMetric::Gauge {
                name: "mgr.heartbeat_staleness_ms".to_string(),
                value: 99,
            },
            WireMetric::Counter {
                name: "fleet.worker0.rpc_per_sec".to_string(),
                value: 777,
            },
        ];
        let text = render_watch(&metrics);
        let mgr = text.lines().find(|l| l.contains("mgr")).unwrap();
        let w0 = text.lines().find(|l| l.contains("worker0")).unwrap();
        assert!(mgr.contains('3'), "{mgr}");
        assert!(w0.contains("12"), "{w0}");
        assert!(w0.contains("2.0"), "p99 shown in us: {w0}");
        assert!(!w0.contains("777"), "counters are not watch cells: {w0}");
        assert!(w0.contains('-'), "missing cells dashed: {w0}");
        assert!(!mgr.contains("99"), "non-fleet gauge leaked in: {mgr}");

        let empty = render_watch(&[]);
        assert!(empty.contains("--scrape-ms"), "{empty}");
    }

    #[test]
    fn json_is_escaped_and_structured() {
        let json = render_json(&sample());
        assert!(json.starts_with("{\"nodes\":["), "{json}");
        assert!(json.contains("\"kind\":\"histogram\""), "{json}");
        assert!(json.contains("\"p99\":2048"), "{json}");
        assert!(json.contains("d\\\"r"), "quote in peer escaped: {json}");
        assert!(json.contains("\"state\":\"alive\""), "{json}");
    }
}
