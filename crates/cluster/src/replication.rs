//! Heterogeneous replication and failure recovery (paper §7).
//!
//! In Pangea a replica is not a byte copy: every member of a replication
//! group holds the *same objects* under a *different physical
//! organization* (partitioning scheme). The replicas do double duty —
//! queries pick the best-organized member through the statistics
//! database, and recovery re-derives a lost node's share of one member
//! by running its partitioner over a surviving member.
//!
//! The corner case is "colliding" objects: objects whose copy in *every*
//! member happens to land on the same node. Losing that node loses every
//! copy, so colliding objects are detected at partitioning time, stored
//! in a separate locality set, and replicated HDFS-style to other nodes.

use crate::cluster::SimCluster;
use crate::partition::PartitionScheme;
use pangea_common::{NodeId, PangeaError, ReplicaGroupId, Result};
use std::time::Instant;

pub use crate::engine::{RecoveryReport, ReplicaReport};

/// The conventional name of a group's colliding-object set.
pub fn colliding_set_name(group: ReplicaGroupId) -> String {
    format!("grp{}.colliding", group.raw())
}

/// Expected fraction of colliding objects under random partitioning on a
/// `k`-node cluster when tolerating `r` concurrent failures (paper §7:
/// `1 − k·(k−1)·…·(k−r) / k^{r+1}`).
pub fn expected_colliding_ratio(k: u32, r: u32) -> f64 {
    if k == 0 {
        return 1.0;
    }
    let mut numerator = 1.0f64;
    for i in 0..=r {
        numerator *= (k as f64 - i as f64).max(0.0);
    }
    1.0 - numerator / (k as f64).powi(r as i32 + 1)
}

impl SimCluster {
    /// The paper's `partitionSet` + `registerReplica` pair with the
    /// default single-failure tolerance (`r = 1`).
    pub fn register_replica(
        &self,
        source: &str,
        target: &str,
        scheme: PartitionScheme,
    ) -> Result<ReplicaReport> {
        self.register_replica_with_r(source, target, scheme, 1)
    }

    /// Registers `target` as a replica of `source` under `scheme`,
    /// tolerating `r` concurrent node failures (§7). Delegates to the
    /// generic engine ([`crate::engine::ClusterCore`]), which is shared
    /// with `pangea-coord`'s `RemoteCluster`.
    pub fn register_replica_with_r(
        &self,
        source: &str,
        target: &str,
        scheme: PartitionScheme,
        r: u32,
    ) -> Result<ReplicaReport> {
        self.core()
            .register_replica_with_r(source, target, scheme, r)
    }

    /// Count of colliding objects currently stored for `group`.
    pub fn colliding_objects(&self, group: ReplicaGroupId) -> Result<u64> {
        self.core().colliding_objects(group)
    }

    /// Recovers a failed node (paper §7): re-provisions the slot, then
    /// for every member of every replication group restores the objects
    /// that lived on the failed node by running the member's partitioner
    /// over a surviving sibling replica, plus the colliding set for
    /// objects that had no surviving copy.
    pub fn recover_node(&self, failed: NodeId) -> Result<RecoveryReport> {
        let start = Instant::now();
        let net_before = self.network().bytes_moved();
        if self.worker(failed).is_ok() {
            return Err(PangeaError::usage(format!("{failed} has not failed")));
        }
        self.restart_node(failed)?;
        let mut report = self.core().recover_sets(failed)?;
        report.bytes_moved = self.network().bytes_moved() - net_before;
        report.duration = start.elapsed();
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{ClusterConfig, DistSet};
    use pangea_common::KB;
    use std::collections::BTreeMap;
    use std::path::PathBuf;

    fn test_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "pangea-repl-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn cluster(tag: &str, nodes: u32) -> SimCluster {
        let cfg = ClusterConfig::new(test_root(tag), nodes)
            .with_pool_capacity(512 * KB)
            .with_page_size(4 * KB);
        SimCluster::bootstrap(cfg, "pangea-default-keypair").unwrap()
    }

    fn field(idx: usize) -> impl Fn(&[u8]) -> Vec<u8> + Send + Sync + 'static {
        move |rec: &[u8]| {
            rec.split(|&b| b == b'|')
                .nth(idx)
                .unwrap_or_default()
                .to_vec()
        }
    }

    /// Loads `n` two-field records `"<a>|<b>|row<i>"` round-robin.
    fn load(c: &SimCluster, name: &str, n: u32) -> DistSet {
        let s = c
            .create_dist_set(name, PartitionScheme::round_robin(c.num_nodes()))
            .unwrap();
        let mut d = s.loader().unwrap();
        for i in 0..n {
            d.dispatch(format!("{}|{}|row{}", i, i % 97, i).as_bytes())
                .unwrap();
        }
        d.finish().unwrap();
        s
    }

    fn snapshot(s: &DistSet) -> BTreeMap<Vec<u8>, u32> {
        let mut m = BTreeMap::new();
        s.for_each_record(|_, rec| {
            *m.entry(rec.to_vec()).or_insert(0) += 1;
        })
        .unwrap();
        m
    }

    #[test]
    fn replica_holds_same_objects_differently_organized() {
        let c = cluster("basic", 4);
        let src = load(&c, "lineitem", 400);
        let report = c
            .register_replica(
                "lineitem",
                "lineitem_pt",
                PartitionScheme::hash("f0", 8, field(0)),
            )
            .unwrap();
        assert_eq!(report.objects, 400);
        let tgt = c.get_dist_set("lineitem_pt").unwrap();
        assert_eq!(snapshot(&src), snapshot(&tgt), "same objects");
        // And organized by key: every key on one node.
        let scheme = tgt.scheme().unwrap();
        tgt.for_each_record(|node, rec| {
            assert_eq!(scheme.node_of(rec, 0, 4), node);
        })
        .unwrap();
        // The statistics service knows the replica.
        assert_eq!(
            c.manager().best_replica("lineitem", "f0").as_deref(),
            Some("lineitem_pt")
        );
    }

    #[test]
    fn recovery_restores_all_replicas_after_single_failure() {
        let c = cluster("recover", 4);
        let src = load(&c, "lineitem", 600);
        c.register_replica(
            "lineitem",
            "lineitem_ok",
            PartitionScheme::hash("f0", 8, field(0)),
        )
        .unwrap();
        c.register_replica(
            "lineitem",
            "lineitem_pk",
            PartitionScheme::hash("f1", 8, field(1)),
        )
        .unwrap();
        let before_src = snapshot(&src);
        let before_ok = snapshot(&c.get_dist_set("lineitem_ok").unwrap());
        let before_pk = snapshot(&c.get_dist_set("lineitem_pk").unwrap());
        assert_eq!(before_src.len(), 600);

        c.kill_node(NodeId(2)).unwrap();
        let report = c.recover_node(NodeId(2)).unwrap();
        assert!(report.objects_restored > 0);
        assert!(report.bytes_moved > 0);
        assert_eq!(report.replicas_recovered.len(), 3);

        assert_eq!(snapshot(&src), before_src, "random replica restored");
        assert_eq!(
            snapshot(&c.get_dist_set("lineitem_ok").unwrap()),
            before_ok,
            "f0 replica restored"
        );
        assert_eq!(
            snapshot(&c.get_dist_set("lineitem_pk").unwrap()),
            before_pk,
            "f1 replica restored"
        );
        // Hash replicas are restored *in place*: keys still map home.
        let ok = c.get_dist_set("lineitem_ok").unwrap();
        let scheme = ok.scheme().unwrap();
        ok.for_each_record(|node, rec| {
            assert_eq!(scheme.node_of(rec, 0, 4), node);
        })
        .unwrap();
    }

    #[test]
    fn colliding_ratio_declines_with_cluster_size() {
        // The paper observes 9% → 3% → 0% going from 10 to 30 nodes.
        let mut ratios = Vec::new();
        for (tag, nodes) in [("c2", 2u32), ("c4", 4), ("c8", 8)] {
            let c = cluster(tag, nodes);
            load(&c, "t", 500);
            let report = c
                .register_replica("t", "t_a", PartitionScheme::hash("f0", nodes * 2, field(0)))
                .unwrap();
            ratios.push(report.colliding_ratio());
        }
        assert!(
            ratios[0] > ratios[1] && ratios[1] > ratios[2],
            "ratios must decline: {ratios:?}"
        );
        // And roughly track the expected 1/k for r = 1.
        assert!((ratios[0] - expected_colliding_ratio(2, 1)).abs() < 0.15);
    }

    #[test]
    fn expected_ratio_formula_matches_paper_special_cases() {
        // r = 1: 1 − k(k−1)/k² = 1/k.
        for k in [2u32, 5, 10, 30] {
            assert!((expected_colliding_ratio(k, 1) - 1.0 / k as f64).abs() < 1e-12);
        }
        // Declines in k, grows in r.
        assert!(expected_colliding_ratio(10, 1) < expected_colliding_ratio(5, 1));
        assert!(expected_colliding_ratio(10, 2) > expected_colliding_ratio(10, 1));
    }

    #[test]
    fn unreplicated_groups_are_unrecoverable() {
        let c = cluster("unrec", 3);
        load(&c, "solo", 50);
        // Manually create a single-member group.
        c.create_dist_set("other", PartitionScheme::round_robin(3))
            .unwrap();
        c.manager().link_replicas("solo", "other").unwrap();
        c.manager().deregister_set("other");
        c.kill_node(NodeId(0)).unwrap();
        assert!(matches!(
            c.recover_node(NodeId(0)),
            Err(PangeaError::UnrecoverableFailure(_))
        ));
    }

    #[test]
    fn replica_requires_keyed_scheme() {
        let c = cluster("keyed", 2);
        load(&c, "s", 10);
        assert!(c
            .register_replica("s", "s2", PartitionScheme::round_robin(2))
            .is_err());
    }

    #[test]
    fn recovering_a_live_node_is_rejected() {
        let c = cluster("live", 2);
        load(&c, "s", 10);
        assert!(c.recover_node(NodeId(0)).is_err());
    }
}
