//! Heterogeneous replication and failure recovery (paper §7).
//!
//! In Pangea a replica is not a byte copy: every member of a replication
//! group holds the *same objects* under a *different physical
//! organization* (partitioning scheme). The replicas do double duty —
//! queries pick the best-organized member through the statistics
//! database, and recovery re-derives a lost node's share of one member
//! by running its partitioner over a surviving member.
//!
//! The corner case is "colliding" objects: objects whose copy in *every*
//! member happens to land on the same node. Losing that node loses every
//! copy, so colliding objects are detected at partitioning time, stored
//! in a separate locality set, and replicated HDFS-style to other nodes.

use crate::cluster::{DistSet, SimCluster};
use crate::partition::{PartitionKind, PartitionScheme};
use pangea_common::{fx_hash64, FxHashMap, FxHashSet, NodeId, PangeaError, ReplicaGroupId, Result};
use pangea_core::SeqWriter;
use std::time::{Duration, Instant};

/// The conventional name of a group's colliding-object set.
pub fn colliding_set_name(group: ReplicaGroupId) -> String {
    format!("grp{}.colliding", group.raw())
}

/// Expected fraction of colliding objects under random partitioning on a
/// `k`-node cluster when tolerating `r` concurrent failures (paper §7:
/// `1 − k·(k−1)·…·(k−r) / k^{r+1}`).
pub fn expected_colliding_ratio(k: u32, r: u32) -> f64 {
    if k == 0 {
        return 1.0;
    }
    let mut numerator = 1.0f64;
    for i in 0..=r {
        numerator *= (k as f64 - i as f64).max(0.0);
    }
    1.0 - numerator / (k as f64).powi(r as i32 + 1)
}

/// Outcome of registering a replica: the group plus colliding statistics.
#[derive(Debug, Clone)]
pub struct ReplicaReport {
    /// The replication group both sets now belong to.
    pub group: ReplicaGroupId,
    /// Distinct objects in the group.
    pub objects: u64,
    /// Objects whose every copy landed on one node (stored in the
    /// colliding set).
    pub colliding: u64,
}

impl ReplicaReport {
    /// Colliding objects as a fraction of all objects.
    pub fn colliding_ratio(&self) -> f64 {
        if self.objects == 0 {
            0.0
        } else {
            self.colliding as f64 / self.objects as f64
        }
    }
}

/// Outcome of recovering a failed node.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// The node that failed and was re-provisioned.
    pub failed: NodeId,
    /// Replica sets whose lost partitions were restored.
    pub replicas_recovered: Vec<String>,
    /// Objects restored from surviving replicas.
    pub objects_restored: u64,
    /// Of those, objects restored from the colliding set.
    pub colliding_restored: u64,
    /// Network bytes moved by the recovery.
    pub bytes_moved: u64,
    /// Wall-clock recovery time (the Fig. 6 metric).
    pub duration: Duration,
}

/// Lazily-opened writers into one distributed set's node-local sets.
struct NodeWriters<'a> {
    set: &'a DistSet,
    writers: FxHashMap<NodeId, SeqWriter>,
}

impl<'a> NodeWriters<'a> {
    fn new(set: &'a DistSet) -> Self {
        Self {
            set,
            writers: FxHashMap::default(),
        }
    }

    fn append(&mut self, node: NodeId, record: &[u8]) -> Result<()> {
        if !self.writers.contains_key(&node) {
            self.writers.insert(node, self.set.local(node)?.writer());
        }
        self.writers
            .get_mut(&node)
            .expect("just inserted")
            .add_object(record)
    }

    fn finish(mut self) -> Result<()> {
        for (_, w) in self.writers.iter_mut() {
            w.finish()?;
        }
        Ok(())
    }
}

impl SimCluster {
    /// The paper's `partitionSet` + `registerReplica` pair with the
    /// default single-failure tolerance (`r = 1`).
    pub fn register_replica(
        &self,
        source: &str,
        target: &str,
        scheme: PartitionScheme,
    ) -> Result<ReplicaReport> {
        self.register_replica_with_r(source, target, scheme, 1)
    }

    /// Registers `target` as a replica of `source` under `scheme`,
    /// tolerating `r` concurrent node failures: the source is
    /// repartitioned into the target, both join one replication group,
    /// and objects whose copies span fewer than `r + 1` nodes are stored
    /// in the group's colliding set with `r` extra copies (§7).
    pub fn register_replica_with_r(
        &self,
        source: &str,
        target: &str,
        scheme: PartitionScheme,
        r: u32,
    ) -> Result<ReplicaReport> {
        if scheme.kind != PartitionKind::Hash {
            return Err(PangeaError::usage(
                "replicas must use a keyed (hash) partitioning scheme",
            ));
        }
        let src = self
            .get_dist_set(source)
            .ok_or_else(|| PangeaError::usage(format!("unknown source set '{source}'")))?;
        let tgt = self.create_dist_set(target, scheme.clone())?;
        // Repartition: run the target's partitioner over the source
        // (paper §7 `partitionSet(myLineitems, myReplica, partitionComp)`).
        let nodes = self.num_nodes();
        let mut writers = NodeWriters::new(&tgt);
        let net = self.network().clone();
        src.try_for_each_record(|from, rec| {
            let to = scheme.node_of(rec, 0, nodes);
            let delivered = net.transfer(from, to, rec)?;
            writers.append(to, &delivered)
        })?;
        writers.finish()?;
        self.manager().add_stats(
            target,
            self.manager()
                .entry(source)
                .map(|e| e.stats.objects)
                .unwrap_or(0),
            self.manager()
                .entry(source)
                .map(|e| e.stats.bytes)
                .unwrap_or(0),
        )?;
        let group = self.manager().link_replicas(source, target)?;
        let (objects, colliding) = self.rebuild_colliding_set(group, r)?;
        Ok(ReplicaReport {
            group,
            objects,
            colliding,
        })
    }

    /// Recomputes the group's colliding set from scratch: maps every
    /// object to its node in every member, finds objects spanning fewer
    /// than `r + 1` distinct nodes, and stores `r` extra copies of each
    /// on the nodes after its colliding node. Returns
    /// `(objects, colliding)`.
    fn rebuild_colliding_set(&self, group: ReplicaGroupId, r: u32) -> Result<(u64, u64)> {
        let members = self.manager().group_members(group);
        let nodes = self.num_nodes();
        // Object hash → distinct nodes hosting any copy.
        let mut placement: FxHashMap<u64, FxHashSet<NodeId>> = FxHashMap::default();
        for member in &members {
            let set = self
                .get_dist_set(member)
                .ok_or_else(|| PangeaError::usage(format!("unknown member '{member}'")))?;
            set.for_each_record(|node, rec| {
                placement.entry(fx_hash64(rec)).or_default().insert(node);
            })?;
        }
        let objects = placement.len() as u64;
        let colliding: FxHashMap<u64, NodeId> = placement
            .into_iter()
            .filter(|(_, nodes_of)| nodes_of.len() <= r as usize)
            .map(|(h, nodes_of)| (h, *nodes_of.iter().next().expect("non-empty placement")))
            .collect();
        // (Re)create the colliding set and fill it with `r` extra copies
        // of each colliding object, placed on the nodes after the
        // colliding node (wrapping), HDFS-style.
        let name = colliding_set_name(group);
        if self.manager().contains(&name) {
            self.drop_dist_set(&name)?;
        }
        let cset = self.create_dist_set(&name, PartitionScheme::round_robin(nodes))?;
        if !colliding.is_empty() {
            let mut writers = NodeWriters::new(&cset);
            let net = self.network().clone();
            // One scan of the first member yields every object's bytes.
            let first = self
                .get_dist_set(&members[0])
                .ok_or_else(|| PangeaError::usage("group has no members"))?;
            let mut stored: FxHashSet<u64> = FxHashSet::default();
            first.try_for_each_record(|from, rec| {
                let h = fx_hash64(rec);
                let Some(&collide_node) = colliding.get(&h) else {
                    return Ok(());
                };
                if !stored.insert(h) {
                    return Ok(()); // copy already stored during this scan
                }
                for i in 1..=r {
                    let to = NodeId((collide_node.raw() + i) % nodes);
                    let delivered = net.transfer(from, to, rec)?;
                    writers.append(to, &delivered)?;
                }
                Ok(())
            })?;
            writers.finish()?;
        }
        Ok((objects, colliding.len() as u64))
    }

    /// Count of colliding objects currently stored for `group`.
    pub fn colliding_objects(&self, group: ReplicaGroupId) -> Result<u64> {
        match self.get_dist_set(&colliding_set_name(group)) {
            Some(s) => s.total_records(),
            None => Ok(0),
        }
    }

    /// Recovers a failed node (paper §7): re-provisions the slot, then
    /// for every member of every replication group restores the objects
    /// that lived on the failed node by running the member's partitioner
    /// over a surviving sibling replica, plus the colliding set for
    /// objects that had no surviving copy.
    pub fn recover_node(&self, failed: NodeId) -> Result<RecoveryReport> {
        let start = Instant::now();
        let net_before = self.network().bytes_moved();
        if self.worker(failed).is_ok() {
            return Err(PangeaError::usage(format!("{failed} has not failed")));
        }
        self.restart_node(failed)?;
        let mut report = RecoveryReport {
            failed,
            replicas_recovered: Vec::new(),
            objects_restored: 0,
            colliding_restored: 0,
            bytes_moved: 0,
            duration: Duration::ZERO,
        };
        for group in self.manager().groups() {
            let members = self.manager().group_members(group);
            if members.len() < 2 {
                return Err(PangeaError::UnrecoverableFailure(format!(
                    "replica group {group} has a single member; cannot recover {failed}"
                )));
            }
            for target in &members {
                let sources: Vec<&String> = members.iter().filter(|m| *m != target).collect();
                self.recover_member(group, target, &sources, failed, &mut report)?;
                report.replicas_recovered.push(target.clone());
            }
        }
        report.bytes_moved = self.network().bytes_moved() - net_before;
        report.duration = start.elapsed();
        Ok(report)
    }

    /// Restores `target`'s lost share on `failed` from the surviving
    /// sibling replicas and the group's colliding set. With two replicas
    /// one sibling suffices (the paper's "arbitrarily selects another
    /// replica"); with three or more, an object may have been co-located
    /// with the target's copy in one sibling but not another, so all
    /// siblings are consulted and the `seen` set dedups.
    fn recover_member(
        &self,
        group: ReplicaGroupId,
        target: &str,
        sources: &[&String],
        failed: NodeId,
        report: &mut RecoveryReport,
    ) -> Result<()> {
        let nodes = self.num_nodes();
        let t_entry = self
            .manager()
            .entry(target)
            .ok_or_else(|| PangeaError::usage(format!("unknown target '{target}'")))?;
        let tgt = self
            .get_dist_set(target)
            .ok_or_else(|| PangeaError::usage(format!("unknown target '{target}'")))?;
        let mut writers = NodeWriters::new(&tgt);
        let mut seen: FxHashSet<u64> = FxHashSet::default();
        let net = self.network().clone();
        // For round-robin targets the lost share cannot be recomputed by
        // key; diff against the surviving share instead ("calculate the
        // key range for all lost partitions" generalized to arbitrary
        // physical organizations).
        let present: Option<FxHashSet<u64>> = match t_entry.scheme.kind {
            PartitionKind::Hash => None,
            PartitionKind::RoundRobin => {
                let mut p = FxHashSet::default();
                tgt.for_each_record(|_, rec| {
                    p.insert(fx_hash64(rec));
                })?;
                Some(p)
            }
        };
        let is_lost = |rec: &[u8]| -> bool {
            match &present {
                None => t_entry.scheme.node_of(rec, 0, nodes) == failed,
                Some(p) => !p.contains(&fx_hash64(rec)),
            }
        };
        // Pass 1: surviving sibling replicas.
        for source in sources {
            let src = self
                .get_dist_set(source)
                .ok_or_else(|| PangeaError::usage(format!("unknown source '{source}'")))?;
            src.try_for_each_record(|from, rec| {
                if !is_lost(rec) || !seen.insert(fx_hash64(rec)) {
                    return Ok(());
                }
                let delivered = net.transfer(from, failed, rec)?;
                writers.append(failed, &delivered)?;
                report.objects_restored += 1;
                Ok(())
            })?;
        }
        // Pass 2: colliding objects (no surviving sibling copy).
        if let Some(cset) = self.get_dist_set(&colliding_set_name(group)) {
            cset.try_for_each_record(|from, rec| {
                if !is_lost(rec) || !seen.insert(fx_hash64(rec)) {
                    return Ok(());
                }
                let delivered = net.transfer(from, failed, rec)?;
                writers.append(failed, &delivered)?;
                report.objects_restored += 1;
                report.colliding_restored += 1;
                Ok(())
            })?;
        }
        writers.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use pangea_common::KB;
    use std::collections::BTreeMap;
    use std::path::PathBuf;

    fn test_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "pangea-repl-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn cluster(tag: &str, nodes: u32) -> SimCluster {
        let cfg = ClusterConfig::new(test_root(tag), nodes)
            .with_pool_capacity(512 * KB)
            .with_page_size(4 * KB);
        SimCluster::bootstrap(cfg, "pangea-default-keypair").unwrap()
    }

    fn field(idx: usize) -> impl Fn(&[u8]) -> Vec<u8> + Send + Sync + 'static {
        move |rec: &[u8]| {
            rec.split(|&b| b == b'|')
                .nth(idx)
                .unwrap_or_default()
                .to_vec()
        }
    }

    /// Loads `n` two-field records `"<a>|<b>|row<i>"` round-robin.
    fn load(c: &SimCluster, name: &str, n: u32) -> DistSet {
        let s = c
            .create_dist_set(name, PartitionScheme::round_robin(c.num_nodes()))
            .unwrap();
        let mut d = s.loader().unwrap();
        for i in 0..n {
            d.dispatch(format!("{}|{}|row{}", i, i % 97, i).as_bytes())
                .unwrap();
        }
        d.finish().unwrap();
        s
    }

    fn snapshot(s: &DistSet) -> BTreeMap<Vec<u8>, u32> {
        let mut m = BTreeMap::new();
        s.for_each_record(|_, rec| {
            *m.entry(rec.to_vec()).or_insert(0) += 1;
        })
        .unwrap();
        m
    }

    #[test]
    fn replica_holds_same_objects_differently_organized() {
        let c = cluster("basic", 4);
        let src = load(&c, "lineitem", 400);
        let report = c
            .register_replica(
                "lineitem",
                "lineitem_pt",
                PartitionScheme::hash("f0", 8, field(0)),
            )
            .unwrap();
        assert_eq!(report.objects, 400);
        let tgt = c.get_dist_set("lineitem_pt").unwrap();
        assert_eq!(snapshot(&src), snapshot(&tgt), "same objects");
        // And organized by key: every key on one node.
        let scheme = tgt.scheme().unwrap();
        tgt.for_each_record(|node, rec| {
            assert_eq!(scheme.node_of(rec, 0, 4), node);
        })
        .unwrap();
        // The statistics service knows the replica.
        assert_eq!(
            c.manager().best_replica("lineitem", "f0").as_deref(),
            Some("lineitem_pt")
        );
    }

    #[test]
    fn recovery_restores_all_replicas_after_single_failure() {
        let c = cluster("recover", 4);
        let src = load(&c, "lineitem", 600);
        c.register_replica(
            "lineitem",
            "lineitem_ok",
            PartitionScheme::hash("f0", 8, field(0)),
        )
        .unwrap();
        c.register_replica(
            "lineitem",
            "lineitem_pk",
            PartitionScheme::hash("f1", 8, field(1)),
        )
        .unwrap();
        let before_src = snapshot(&src);
        let before_ok = snapshot(&c.get_dist_set("lineitem_ok").unwrap());
        let before_pk = snapshot(&c.get_dist_set("lineitem_pk").unwrap());
        assert_eq!(before_src.len(), 600);

        c.kill_node(NodeId(2)).unwrap();
        let report = c.recover_node(NodeId(2)).unwrap();
        assert!(report.objects_restored > 0);
        assert!(report.bytes_moved > 0);
        assert_eq!(report.replicas_recovered.len(), 3);

        assert_eq!(snapshot(&src), before_src, "random replica restored");
        assert_eq!(
            snapshot(&c.get_dist_set("lineitem_ok").unwrap()),
            before_ok,
            "f0 replica restored"
        );
        assert_eq!(
            snapshot(&c.get_dist_set("lineitem_pk").unwrap()),
            before_pk,
            "f1 replica restored"
        );
        // Hash replicas are restored *in place*: keys still map home.
        let ok = c.get_dist_set("lineitem_ok").unwrap();
        let scheme = ok.scheme().unwrap();
        ok.for_each_record(|node, rec| {
            assert_eq!(scheme.node_of(rec, 0, 4), node);
        })
        .unwrap();
    }

    #[test]
    fn colliding_ratio_declines_with_cluster_size() {
        // The paper observes 9% → 3% → 0% going from 10 to 30 nodes.
        let mut ratios = Vec::new();
        for (tag, nodes) in [("c2", 2u32), ("c4", 4), ("c8", 8)] {
            let c = cluster(tag, nodes);
            load(&c, "t", 500);
            let report = c
                .register_replica("t", "t_a", PartitionScheme::hash("f0", nodes * 2, field(0)))
                .unwrap();
            ratios.push(report.colliding_ratio());
        }
        assert!(
            ratios[0] > ratios[1] && ratios[1] > ratios[2],
            "ratios must decline: {ratios:?}"
        );
        // And roughly track the expected 1/k for r = 1.
        assert!((ratios[0] - expected_colliding_ratio(2, 1)).abs() < 0.15);
    }

    #[test]
    fn expected_ratio_formula_matches_paper_special_cases() {
        // r = 1: 1 − k(k−1)/k² = 1/k.
        for k in [2u32, 5, 10, 30] {
            assert!((expected_colliding_ratio(k, 1) - 1.0 / k as f64).abs() < 1e-12);
        }
        // Declines in k, grows in r.
        assert!(expected_colliding_ratio(10, 1) < expected_colliding_ratio(5, 1));
        assert!(expected_colliding_ratio(10, 2) > expected_colliding_ratio(10, 1));
    }

    #[test]
    fn unreplicated_groups_are_unrecoverable() {
        let c = cluster("unrec", 3);
        load(&c, "solo", 50);
        // Manually create a single-member group.
        c.create_dist_set("other", PartitionScheme::round_robin(3))
            .unwrap();
        c.manager().link_replicas("solo", "other").unwrap();
        c.manager().deregister_set("other");
        c.kill_node(NodeId(0)).unwrap();
        assert!(matches!(
            c.recover_node(NodeId(0)),
            Err(PangeaError::UnrecoverableFailure(_))
        ));
    }

    #[test]
    fn replica_requires_keyed_scheme() {
        let c = cluster("keyed", 2);
        load(&c, "s", 10);
        assert!(c
            .register_replica("s", "s2", PartitionScheme::round_robin(2))
            .is_err());
    }

    #[test]
    fn recovering_a_live_node_is_rejected() {
        let c = cluster("live", 2);
        load(&c, "s", 10);
        assert!(c.recover_node(NodeId(0)).is_err());
    }
}
