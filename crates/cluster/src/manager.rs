//! The Pangea manager node (paper §3.3): accepts applications, keeps the
//! locality-set catalog (database/set names, page size, attributes,
//! partition scheme, replica group), and serves the **statistics
//! database** that query schedulers consult to pick the best replica for
//! a computation (§7, §9.1.2).

use crate::partition::PartitionScheme;
use pangea_common::{FxHashMap, PangeaError, ReplicaGroupId, Result};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-set statistics maintained by the manager.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SetStats {
    /// Objects dispatched into the set.
    pub objects: u64,
    /// Payload bytes dispatched into the set.
    pub bytes: u64,
}

/// One catalog entry: a distributed set's metadata.
#[derive(Debug, Clone)]
pub struct CatalogEntry {
    /// The set's cluster-wide name.
    pub name: String,
    /// Its partitioning scheme (physical organization).
    pub scheme: PartitionScheme,
    /// The replica group it belongs to, once registered.
    pub group: Option<ReplicaGroupId>,
    /// Dispatch statistics.
    pub stats: SetStats,
}

/// The manager's catalog + statistics database. The paper stresses the
/// manager is light-weight: it stores per-*set* metadata, not per-page
/// locations (those live in each worker's meta files, §4).
#[derive(Debug, Default)]
pub struct Manager {
    catalog: Mutex<FxHashMap<String, CatalogEntry>>,
    groups: Mutex<FxHashMap<ReplicaGroupId, Vec<String>>>,
    next_group: AtomicU64,
}

impl Manager {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new distributed set.
    pub fn register_set(&self, name: &str, scheme: PartitionScheme) -> Result<()> {
        let mut catalog = self.catalog.lock();
        if catalog.contains_key(name) {
            return Err(PangeaError::usage(format!(
                "distributed set '{name}' already exists"
            )));
        }
        catalog.insert(
            name.to_string(),
            CatalogEntry {
                name: name.to_string(),
                scheme,
                group: None,
                stats: SetStats::default(),
            },
        );
        Ok(())
    }

    /// Removes a set from the catalog and its group.
    pub fn deregister_set(&self, name: &str) {
        let removed = self.catalog.lock().remove(name);
        if let Some(entry) = removed {
            if let Some(g) = entry.group {
                if let Some(members) = self.groups.lock().get_mut(&g) {
                    members.retain(|m| m != name);
                }
            }
        }
    }

    /// A copy of one catalog entry.
    pub fn entry(&self, name: &str) -> Option<CatalogEntry> {
        self.catalog.lock().get(name).cloned()
    }

    /// True when the set is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.catalog.lock().contains_key(name)
    }

    /// All registered set names, sorted.
    pub fn set_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.catalog.lock().keys().cloned().collect();
        v.sort();
        v
    }

    /// Adds dispatch counts to a set's statistics.
    pub fn add_stats(&self, name: &str, objects: u64, bytes: u64) -> Result<()> {
        let mut catalog = self.catalog.lock();
        let entry = catalog
            .get_mut(name)
            .ok_or_else(|| PangeaError::usage(format!("unknown set '{name}'")))?;
        entry.stats.objects += objects;
        entry.stats.bytes += bytes;
        Ok(())
    }

    /// Puts `a` and `b` in the same replica group (creating one when
    /// neither has a group yet) — the paper's `registerReplica` bookkeeping.
    /// By definition every member then holds the same objects under a
    /// different physical organization (§7).
    pub fn link_replicas(&self, a: &str, b: &str) -> Result<ReplicaGroupId> {
        let mut catalog = self.catalog.lock();
        if !catalog.contains_key(a) {
            return Err(PangeaError::usage(format!("unknown set '{a}'")));
        }
        if !catalog.contains_key(b) {
            return Err(PangeaError::usage(format!("unknown set '{b}'")));
        }
        let ga = catalog[a].group;
        let gb = catalog[b].group;
        let group = match (ga, gb) {
            (Some(g), None) | (None, Some(g)) => g,
            (None, None) => ReplicaGroupId(self.next_group.fetch_add(1, Ordering::Relaxed) + 1),
            (Some(g1), Some(g2)) if g1 == g2 => g1,
            (Some(g1), Some(g2)) => {
                return Err(PangeaError::usage(format!(
                    "sets '{a}' ({g1}) and '{b}' ({g2}) are in different groups"
                )))
            }
        };
        let mut groups = self.groups.lock();
        let members = groups.entry(group).or_default();
        for name in [a, b] {
            if catalog[name].group.is_none() {
                catalog.get_mut(name).expect("checked").group = Some(group);
                members.push(name.to_string());
            }
        }
        Ok(group)
    }

    /// Members of a replica group.
    pub fn group_members(&self, group: ReplicaGroupId) -> Vec<String> {
        self.groups.lock().get(&group).cloned().unwrap_or_default()
    }

    /// All replica groups, ascending.
    pub fn groups(&self) -> Vec<ReplicaGroupId> {
        let mut v: Vec<ReplicaGroupId> = self.groups.lock().keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// The statistics service (§7, §9.1.2): among the replicas of
    /// `set`'s group (including `set` itself), returns the one whose
    /// partition scheme is keyed by `desired_key`, if any. The query
    /// scheduler uses this to pick a co-partitioned replica and pipeline
    /// joins without repartitioning.
    pub fn best_replica(&self, set: &str, desired_key: &str) -> Option<String> {
        let catalog = self.catalog.lock();
        let entry = catalog.get(set)?;
        if entry.scheme.key_name == desired_key {
            return Some(set.to_string());
        }
        let group = entry.group?;
        let groups = self.groups.lock();
        for member in groups.get(&group)? {
            if let Some(e) = catalog.get(member) {
                if e.scheme.key_name == desired_key {
                    return Some(member.clone());
                }
            }
        }
        None
    }
}

/// The in-process implementation of the engine's catalog seam; the
/// wire-served implementation lives in `pangea-coord`.
impl crate::engine::Catalog for Manager {
    fn register_set(&self, name: &str, scheme: PartitionScheme) -> Result<()> {
        Manager::register_set(self, name, scheme)
    }

    fn deregister_set(&self, name: &str) -> Result<()> {
        Manager::deregister_set(self, name);
        Ok(())
    }

    fn entry(&self, name: &str) -> Result<Option<CatalogEntry>> {
        Ok(Manager::entry(self, name))
    }

    fn contains(&self, name: &str) -> Result<bool> {
        Ok(Manager::contains(self, name))
    }

    fn set_names(&self) -> Result<Vec<String>> {
        Ok(Manager::set_names(self))
    }

    fn add_stats(&self, name: &str, objects: u64, bytes: u64) -> Result<()> {
        Manager::add_stats(self, name, objects, bytes)
    }

    fn link_replicas(&self, a: &str, b: &str) -> Result<ReplicaGroupId> {
        Manager::link_replicas(self, a, b)
    }

    fn group_members(&self, group: ReplicaGroupId) -> Result<Vec<String>> {
        Ok(Manager::group_members(self, group))
    }

    fn groups(&self) -> Result<Vec<ReplicaGroupId>> {
        Ok(Manager::groups(self))
    }

    fn best_replica(&self, set: &str, key: &str) -> Result<Option<String>> {
        Ok(Manager::best_replica(self, set, key))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scheme(key: &str) -> PartitionScheme {
        PartitionScheme::hash(key, 4, |r| r.to_vec())
    }

    #[test]
    fn register_and_lookup() {
        let m = Manager::new();
        m.register_set("lineitem", PartitionScheme::round_robin(4))
            .unwrap();
        assert!(m.contains("lineitem"));
        assert!(m.register_set("lineitem", scheme("x")).is_err());
        let e = m.entry("lineitem").unwrap();
        assert_eq!(e.scheme.key_name, "random");
        assert!(e.group.is_none());
    }

    #[test]
    fn stats_accumulate() {
        let m = Manager::new();
        m.register_set("s", scheme("k")).unwrap();
        m.add_stats("s", 10, 1000).unwrap();
        m.add_stats("s", 5, 500).unwrap();
        let e = m.entry("s").unwrap();
        assert_eq!(
            e.stats,
            SetStats {
                objects: 15,
                bytes: 1500
            }
        );
        assert!(m.add_stats("missing", 1, 1).is_err());
    }

    #[test]
    fn replica_groups_link_transitively() {
        let m = Manager::new();
        m.register_set("a", PartitionScheme::round_robin(4))
            .unwrap();
        m.register_set("b", scheme("l_orderkey")).unwrap();
        m.register_set("c", scheme("l_partkey")).unwrap();
        let g1 = m.link_replicas("a", "b").unwrap();
        let g2 = m.link_replicas("a", "c").unwrap();
        assert_eq!(g1, g2);
        let mut members = m.group_members(g1);
        members.sort();
        assert_eq!(members, vec!["a", "b", "c"]);
    }

    #[test]
    fn best_replica_matches_desired_key() {
        let m = Manager::new();
        m.register_set("lineitem", PartitionScheme::round_robin(4))
            .unwrap();
        m.register_set("lineitem_ok", scheme("l_orderkey")).unwrap();
        m.register_set("lineitem_pk", scheme("l_partkey")).unwrap();
        m.link_replicas("lineitem", "lineitem_ok").unwrap();
        m.link_replicas("lineitem", "lineitem_pk").unwrap();
        assert_eq!(
            m.best_replica("lineitem", "l_partkey").as_deref(),
            Some("lineitem_pk")
        );
        assert_eq!(
            m.best_replica("lineitem_ok", "l_orderkey").as_deref(),
            Some("lineitem_ok"),
            "a set already organized by the key is its own best replica"
        );
        assert_eq!(m.best_replica("lineitem", "l_suppkey"), None);
        assert_eq!(m.best_replica("missing", "x"), None);
    }

    #[test]
    fn linking_distinct_groups_is_an_error() {
        let m = Manager::new();
        for n in ["a", "b", "c", "d"] {
            m.register_set(n, scheme("k")).unwrap();
        }
        m.link_replicas("a", "b").unwrap();
        m.link_replicas("c", "d").unwrap();
        assert!(m.link_replicas("a", "c").is_err());
    }

    #[test]
    fn deregister_removes_from_group() {
        let m = Manager::new();
        m.register_set("a", scheme("k")).unwrap();
        m.register_set("b", scheme("j")).unwrap();
        let g = m.link_replicas("a", "b").unwrap();
        m.deregister_set("b");
        assert_eq!(m.group_members(g), vec!["a"]);
        assert!(!m.contains("b"));
    }
}
