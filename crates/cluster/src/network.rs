//! Byte-counted, optionally throttled inter-node transport.
//!
//! The repository substitutes the paper's real cluster network with an
//! in-process channel that still *does the work* a network does: every
//! transfer serializes through a byte buffer (one copy out, one copy in),
//! is counted in [`IoStats`], and is paced by a token-bucket [`Throttle`]
//! when a bandwidth is configured. Relative shapes that depend on bytes
//! moved (shuffle vs. co-partitioned joins, recovery traffic) therefore
//! survive the substitution; see DESIGN.md §2.
//!
//! `SimNetwork` is the in-process implementation of the pluggable
//! [`Transport`] seam (DESIGN.md §2a); swapping in
//! [`pangea_net::TcpTransport`] runs the same cluster logic over real
//! sockets with identical payload-byte accounting.

use pangea_common::{IoStats, NodeId, Result, Throttle};
use pangea_net::Transport;
use std::sync::Arc;

/// The simulated cluster interconnect.
#[derive(Debug, Clone)]
pub struct SimNetwork {
    throttle: Arc<Throttle>,
    stats: Arc<IoStats>,
}

impl SimNetwork {
    /// An unthrottled network (unit tests).
    pub fn unlimited() -> Self {
        Self {
            throttle: Arc::new(Throttle::unlimited()),
            stats: Arc::new(IoStats::new()),
        }
    }

    /// A network paced at `bytes_per_sec` aggregate bandwidth.
    pub fn with_bandwidth(bytes_per_sec: u64) -> Self {
        Self {
            throttle: Arc::new(Throttle::bytes_per_sec(bytes_per_sec)),
            stats: Arc::new(IoStats::new()),
        }
    }

    /// Network traffic counters.
    pub fn stats(&self) -> &Arc<IoStats> {
        &self.stats
    }

    /// Transfers `payload` from `from` to `to`: pays the copy, the
    /// accounting, and (if configured) the bandwidth pacing. Local
    /// deliveries (`from == to`) are free — Pangea reads local pages
    /// through shared memory (paper §5).
    pub fn transfer(&self, from: NodeId, to: NodeId, payload: &[u8]) -> Result<Vec<u8>> {
        if from == to {
            return Ok(payload.to_vec());
        }
        self.throttle.consume(payload.len());
        self.stats.record_net(payload.len());
        self.stats.record_copy(payload.len());
        Ok(payload.to_vec())
    }

    /// Total bytes moved across the wire so far.
    pub fn bytes_moved(&self) -> u64 {
        self.stats.snapshot().net_bytes
    }
}

impl Transport for SimNetwork {
    fn transfer(&self, from: NodeId, to: NodeId, payload: &[u8]) -> Result<Vec<u8>> {
        SimNetwork::transfer(self, from, to, payload)
    }

    fn stats(&self) -> &Arc<IoStats> {
        SimNetwork::stats(self)
    }

    fn kind(&self) -> &'static str {
        "sim"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remote_transfers_are_counted() {
        let net = SimNetwork::unlimited();
        let out = net.transfer(NodeId(0), NodeId(1), b"hello").unwrap();
        assert_eq!(out, b"hello");
        assert_eq!(net.bytes_moved(), 5);
        assert_eq!(net.stats().snapshot().net_messages, 1);
    }

    #[test]
    fn local_delivery_is_free() {
        let net = SimNetwork::unlimited();
        let out = net.transfer(NodeId(2), NodeId(2), b"local").unwrap();
        assert_eq!(out, b"local");
        assert_eq!(net.bytes_moved(), 0);
    }

    #[test]
    fn throttled_network_still_delivers() {
        let net = SimNetwork::with_bandwidth(100 * pangea_common::MB as u64);
        for i in 0..10u8 {
            let out = net.transfer(NodeId(0), NodeId(1), &[i; 100]).unwrap();
            assert_eq!(out, [i; 100]);
        }
        assert_eq!(net.bytes_moved(), 1000);
    }
}
