//! The generic cluster engine: one implementation of distributed-set
//! dispatch, heterogeneous replication, and failure recovery, shared by
//! every cluster frontend.
//!
//! The engine is written against two seams:
//!
//! * [`WorkerBackend`] — where a node's data lives and how records get
//!   there. `SimCluster` backs this with in-process [`StorageNode`]s and
//!   an explicit [`Transport`] for the wire; `pangea-coord`'s
//!   `RemoteCluster` backs it with `PangeaClient` RPCs against remote
//!   `pangead` processes (the RPC *is* the wire there — no separate
//!   transfer is paid).
//! * [`Catalog`] — where distributed-set metadata lives. `Manager` is
//!   the in-process implementation; `pangea-coord` serves the same
//!   catalog over the framed protocol from a `pangea-mgr` daemon.
//!
//! Record movement is batched per destination ([`DispatchConfig`]): a
//! dispatcher accumulates records per target node and flushes them as
//! one delivery once a record-count or byte threshold is crossed, so a
//! TCP-backed cluster pays one round trip per *batch* instead of one per
//! record, while payload byte accounting is unchanged (a batch's net
//! bytes are exactly the sum of its records').
//!
//! [`StorageNode`]: pangea_core::StorageNode
//! [`Transport`]: pangea_net::Transport

use crate::manager::CatalogEntry;
use crate::partition::{PartitionKind, PartitionScheme};
use crate::replication::colliding_set_name;
use pangea_common::{fx_hash64, FxHashMap, FxHashSet, NodeId, PangeaError, ReplicaGroupId, Result};
use pangea_net::{
    KeySpec, MapSpec, ReduceSpec, RepairFilter, RepairPushReport, SchemeSpec, TaskReport,
};
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A destination for routed records on one node. Sinks are opened by a
/// [`WorkerBackend`] and written by the engine's batching layer.
pub trait RecordSink {
    /// Delivers one batch of records originating from node `from`
    /// (`NodeId(u32::MAX)` = external client). The implementation pays
    /// whatever wire cost the batch incurs and appends every record, in
    /// order, to the destination set.
    fn append(&mut self, from: NodeId, records: &[Vec<u8>]) -> Result<()>;

    /// Seals the sink (flushes the destination's in-progress page).
    fn finish(self: Box<Self>) -> Result<()>;
}

/// Where worker data lives: the engine's view of N storage nodes.
///
/// # Accounting contract
///
/// `net_bytes` must grow by exactly the payload bytes of every remote
/// delivery ([`RecordSink::append`] with `from != to`, or a remote
/// scan's transfer toward the caller), mirroring the `Transport`
/// contract, so recovery reports and cross-backend comparisons line up.
///
/// # Width contract
///
/// Placement stripes over `num_nodes()` and the engine assumes that
/// width is *stable over a set's lifetime*: slot replacement (same
/// `NodeId`, new worker) is supported, growing the fleet is not — a set
/// created at width N and consulted at width N′ ≠ N would misjudge
/// placement. Scans fail loudly on a node that never held the set, so
/// a grown fleet surfaces as an error, not silent misplacement;
/// elastic rebalancing is a ROADMAP item.
pub trait WorkerBackend: fmt::Debug + Send + Sync {
    /// Total node slots (alive or failed).
    fn num_nodes(&self) -> u32;

    /// Nodes currently alive, ascending.
    fn alive_nodes(&self) -> Vec<NodeId>;

    /// Creates the node-local locality set backing a distributed set
    /// (write-through: user data survives process failure, paper §7).
    fn create_set(&self, n: NodeId, name: &str) -> Result<()>;

    /// Drops the node-local set, ignoring nodes that never held it.
    fn drop_set(&self, n: NodeId, name: &str) -> Result<()>;

    /// Opens a write sink into `set` on node `n`.
    fn open_sink(&self, n: NodeId, set: &str) -> Result<Box<dyn RecordSink>>;

    /// Runs `f` over every record of `set` on node `n`, in storage order.
    fn scan(&self, n: NodeId, set: &str, f: &mut dyn FnMut(&[u8]) -> Result<()>) -> Result<()>;

    /// Counts the records of `set` on node `n`. The default scans;
    /// remote backends override it with a count RPC so diagnostics do
    /// not ship the dataset over the wire.
    fn count(&self, n: NodeId, set: &str) -> Result<u64> {
        let mut count = 0u64;
        self.scan(n, set, &mut |_| {
            count += 1;
            Ok(())
        })?;
        Ok(count)
    }

    /// Payload bytes this backend has moved across its wire so far.
    fn net_bytes(&self) -> u64;

    /// Peer-repair capability: backends whose nodes can move recovery
    /// data directly between each other (worker→worker) return `Some`,
    /// and [`ClusterCore::recover_sets`] orchestrates repairs through it
    /// with one push in flight per survivor. The default `None` keeps
    /// the driver-mediated serial path — `SimCluster`'s in-process
    /// backend stays byte-for-byte identical to the pre-peer engine.
    fn peer_repair(&self) -> Option<&dyn PeerRepair> {
        None
    }

    /// Task-shipping capability: backends whose nodes can *execute a
    /// shipped map task* against their local input share (streaming the
    /// routed output straight to destination peers) return `Some`, and
    /// [`ClusterCore::map_shuffle`] launches one task per worker in
    /// parallel through it. The default `None` keeps the in-process
    /// serial path — `SimCluster` scans and dispatches through the
    /// driver exactly as a dispatcher-loaded set would.
    fn task_exec(&self) -> Option<&dyn TaskExec> {
        None
    }
}

/// Distributed map-task execution (ship the task to the data, in the
/// spirit of Sector/Sphere's in-storage processing): the driver plans,
/// the storage fabric scans, maps, and moves the bytes.
///
/// Implementations must be callable from multiple threads at once — the
/// engine runs one [`TaskExec::map_task`] per worker in parallel. Tasks
/// are idempotent by contract: each destination's ingest session dedups
/// on provenance tags, so a retried or duplicated task never
/// double-appends.
pub trait TaskExec: Send + Sync {
    /// Opens (or resets) the shuffle-ingest session for `set` on the
    /// destination node, truncating its local share. With a `reduce`,
    /// the session folds incoming partials into a keyed accumulator
    /// (materialized at [`TaskExec::ingest_end`]) instead of appending
    /// record-for-record.
    fn ingest_begin(&self, dest: NodeId, set: &str, reduce: Option<&ReduceSpec>) -> Result<()>;

    /// Ships one map task to `worker`: scan the local share of `input`,
    /// apply `map` (combining per key first when `reduce` is given),
    /// route by `scheme` striping over `nodes`, and stream straight to
    /// the destinations' ingest sessions for `output`.
    #[allow(clippy::too_many_arguments)]
    fn map_task(
        &self,
        worker: NodeId,
        input: &str,
        output: &str,
        map: &MapSpec,
        reduce: Option<&ReduceSpec>,
        scheme: &SchemeSpec,
        nodes: u32,
    ) -> Result<TaskReport>;

    /// Seals the destination's ingest session; returns its
    /// `(appended, appended_bytes)` totals.
    fn ingest_end(&self, dest: NodeId, set: &str) -> Result<(u64, u64)>;

    /// Transport-level pipelining hint for subsequent tasks: how many
    /// ingest batches a mapper may keep in flight per destination
    /// before awaiting the oldest ack (`0` = backend default, `1` =
    /// strict-serial round trips). Receiver credit grants may shrink
    /// the effective window below this at run time; they never raise
    /// it. In-process executors stream synchronously and ignore the
    /// hint — the default does nothing.
    fn set_pipeline_window(&self, _window: u32) {}
}

/// Worker→worker repair operations (paper §7 recovery without bouncing
/// payload through a client layer, in the spirit of Sector/Sphere's
/// replica-to-replica repair): the driver orchestrates, the storage
/// fabric moves the bytes.
///
/// Implementations must be callable from multiple threads at once — the
/// engine runs one [`PeerRepair::repair_push`] per survivor in parallel.
/// Pushes are idempotent by contract: the target's repair session dedups
/// on record hash, so a retried or duplicated push never double-restores.
pub trait PeerRepair: Send + Sync {
    /// Opens a repair session for `target_set` on the `target` node,
    /// seeding its dedup ledger with the record hashes the nodes in
    /// `present_on` still hold (pulled peer-to-peer; empty for hash
    /// targets, whose lost share is recomputed by placement instead).
    fn repair_begin(&self, target: NodeId, target_set: &str, present_on: &[NodeId]) -> Result<()>;

    /// One survivor→replacement push: `survivor` scans its local share
    /// of `source_set`, keeps what `filter` selects, and streams it
    /// straight into `target_set` on `target`.
    fn repair_push(
        &self,
        survivor: NodeId,
        source_set: &str,
        target: NodeId,
        target_set: &str,
        filter: &RepairFilter,
    ) -> Result<RepairPushReport>;

    /// Seals the session; returns its `(appended, appended_bytes)`.
    fn repair_end(&self, target: NodeId, target_set: &str) -> Result<(u64, u64)>;
}

/// Where distributed-set metadata lives: the manager catalog +
/// statistics database (paper §3.3), local or wire-served.
pub trait Catalog: fmt::Debug + Send + Sync {
    /// Registers a new distributed set.
    fn register_set(&self, name: &str, scheme: PartitionScheme) -> Result<()>;
    /// Removes a set from the catalog and its replica group.
    fn deregister_set(&self, name: &str) -> Result<()>;
    /// A copy of one catalog entry.
    fn entry(&self, name: &str) -> Result<Option<CatalogEntry>>;
    /// True when the set is registered.
    fn contains(&self, name: &str) -> Result<bool> {
        Ok(self.entry(name)?.is_some())
    }
    /// All registered set names, sorted.
    fn set_names(&self) -> Result<Vec<String>>;
    /// Adds dispatch counts to a set's statistics.
    fn add_stats(&self, name: &str, objects: u64, bytes: u64) -> Result<()>;
    /// Puts `a` and `b` in the same replica group.
    fn link_replicas(&self, a: &str, b: &str) -> Result<ReplicaGroupId>;
    /// Members of a replica group.
    fn group_members(&self, group: ReplicaGroupId) -> Result<Vec<String>>;
    /// All replica groups, ascending.
    fn groups(&self) -> Result<Vec<ReplicaGroupId>>;
    /// The statistics service's best-replica answer (§9.1.2).
    fn best_replica(&self, set: &str, key: &str) -> Result<Option<String>>;
}

/// Per-destination batching thresholds for record movement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DispatchConfig {
    /// Flush a destination once this many records are pending.
    pub max_batch_records: usize,
    /// Flush a destination once this many payload bytes are pending.
    pub max_batch_bytes: usize,
}

impl Default for DispatchConfig {
    fn default() -> Self {
        Self {
            max_batch_records: 256,
            max_batch_bytes: 128 * 1024,
        }
    }
}

impl DispatchConfig {
    /// One delivery per record — the pre-batching behavior, kept for
    /// round-trip-count comparisons.
    pub fn unbatched() -> Self {
        Self {
            max_batch_records: 1,
            max_batch_bytes: 0,
        }
    }
}

/// Outcome of registering a replica: the group plus colliding statistics.
#[derive(Debug, Clone)]
pub struct ReplicaReport {
    /// The replication group both sets now belong to.
    pub group: ReplicaGroupId,
    /// Distinct objects in the group.
    pub objects: u64,
    /// Objects whose every copy landed on one node (stored in the
    /// colliding set).
    pub colliding: u64,
}

impl ReplicaReport {
    /// Colliding objects as a fraction of all objects.
    pub fn colliding_ratio(&self) -> f64 {
        if self.objects == 0 {
            0.0
        } else {
            self.colliding as f64 / self.objects as f64
        }
    }
}

/// Outcome of a distributed map-shuffle job.
#[derive(Debug, Clone)]
pub struct MapShuffleReport {
    /// The materialized output set's cluster-wide name.
    pub output: String,
    /// Records scanned across every worker's input share.
    pub scanned: u64,
    /// Records materialized into the output set (post-map, post-dedup).
    pub records_out: u64,
    /// Payload bytes materialized into the output set.
    pub bytes_out: u64,
    /// Per-worker task outcomes, in alive-node order (empty on the
    /// serial in-process path, which runs no per-worker tasks).
    pub tasks: Vec<(NodeId, TaskReport)>,
    /// Wall-clock job time.
    pub duration: Duration,
}

/// Outcome of recovering a failed node.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// The node that failed and was re-provisioned.
    pub failed: NodeId,
    /// Replica sets whose lost partitions were restored.
    pub replicas_recovered: Vec<String>,
    /// Objects restored from surviving replicas.
    pub objects_restored: u64,
    /// Of those, objects restored from the colliding set.
    pub colliding_restored: u64,
    /// Network bytes moved by the recovery (filled by the frontend,
    /// which owns the backend's byte ledger across the whole operation).
    pub bytes_moved: u64,
    /// Wall-clock recovery time (the Fig. 6 metric; frontend-filled).
    pub duration: Duration,
}

/// The shared distributed engine: a worker backend plus a catalog.
/// Cheap to clone.
#[derive(Debug, Clone)]
pub struct ClusterCore {
    workers: Arc<dyn WorkerBackend>,
    catalog: Arc<dyn Catalog>,
}

impl ClusterCore {
    /// Builds an engine over a backend and a catalog.
    pub fn new(workers: Arc<dyn WorkerBackend>, catalog: Arc<dyn Catalog>) -> Self {
        Self { workers, catalog }
    }

    /// The worker backend.
    pub fn workers(&self) -> &Arc<dyn WorkerBackend> {
        &self.workers
    }

    /// The catalog.
    pub fn catalog(&self) -> &Arc<dyn Catalog> {
        &self.catalog
    }

    /// Creates a distributed set: a same-named locality set on every
    /// alive worker plus a catalog entry with its partitioning scheme.
    pub fn create_dist_set(&self, name: &str, scheme: PartitionScheme) -> Result<EngineSet> {
        self.catalog.register_set(name, scheme)?;
        for n in self.workers.alive_nodes() {
            self.workers.create_set(n, name)?;
        }
        Ok(EngineSet {
            core: self.clone(),
            name: name.to_string(),
        })
    }

    /// Looks up a cataloged distributed set.
    pub fn get_dist_set(&self, name: &str) -> Result<Option<EngineSet>> {
        Ok(self.catalog.contains(name)?.then(|| EngineSet {
            core: self.clone(),
            name: name.to_string(),
        }))
    }

    /// Drops a distributed set everywhere.
    pub fn drop_dist_set(&self, name: &str) -> Result<()> {
        for n in self.workers.alive_nodes() {
            self.workers.drop_set(n, name)?;
        }
        self.catalog.deregister_set(name)
    }

    /// Re-creates the local locality set of every cataloged distributed
    /// set on a (fresh) node — the provisioning half of recovery; data
    /// is restored separately by [`ClusterCore::recover_sets`].
    pub fn provision_node(&self, n: NodeId) -> Result<()> {
        for name in self.catalog.set_names()? {
            self.workers.create_set(n, &name)?;
        }
        Ok(())
    }

    /// Registers `target` as a replica of `source` under `scheme`,
    /// tolerating `r` concurrent node failures: the source is
    /// repartitioned into the target, both join one replication group,
    /// and objects whose copies span fewer than `r + 1` nodes are stored
    /// in the group's colliding set with `r` extra copies (paper §7).
    pub fn register_replica_with_r(
        &self,
        source: &str,
        target: &str,
        scheme: PartitionScheme,
        r: u32,
    ) -> Result<ReplicaReport> {
        if scheme.kind != PartitionKind::Hash {
            return Err(PangeaError::usage(
                "replicas must use a keyed (hash) partitioning scheme",
            ));
        }
        let src = self
            .get_dist_set(source)?
            .ok_or_else(|| PangeaError::usage(format!("unknown source set '{source}'")))?;
        let tgt = self.create_dist_set(target, scheme.clone())?;
        // Repartition: run the target's partitioner over the source
        // (paper §7 `partitionSet(myLineitems, myReplica, partitionComp)`).
        let nodes = self.workers.num_nodes();
        let mut sinks =
            BatchedSinks::new(self.clone(), tgt.name.clone(), DispatchConfig::default());
        src.try_for_each_record(|from, rec| {
            let to = scheme.node_of(rec, 0, nodes);
            sinks.push(from, to, rec)
        })?;
        sinks.finish()?;
        let (objects, bytes) = self
            .catalog
            .entry(source)?
            .map(|e| (e.stats.objects, e.stats.bytes))
            .unwrap_or((0, 0));
        self.catalog.add_stats(target, objects, bytes)?;
        let group = self.catalog.link_replicas(source, target)?;
        let (objects, colliding) = self.rebuild_colliding_set(group, r)?;
        Ok(ReplicaReport {
            group,
            objects,
            colliding,
        })
    }

    /// Recomputes the group's colliding set from scratch: maps every
    /// object to its node in every member, finds objects spanning fewer
    /// than `r + 1` distinct nodes, and stores `r` extra copies of each
    /// on the nodes after its colliding node. Returns
    /// `(objects, colliding)`.
    fn rebuild_colliding_set(&self, group: ReplicaGroupId, r: u32) -> Result<(u64, u64)> {
        let members = self.catalog.group_members(group)?;
        let nodes = self.workers.num_nodes();
        // Object hash → distinct nodes hosting any copy.
        let mut placement: FxHashMap<u64, FxHashSet<NodeId>> = FxHashMap::default();
        for member in &members {
            let set = self
                .get_dist_set(member)?
                .ok_or_else(|| PangeaError::usage(format!("unknown member '{member}'")))?;
            set.for_each_record(|node, rec| {
                placement.entry(fx_hash64(rec)).or_default().insert(node);
            })?;
        }
        let objects = placement.len() as u64;
        let colliding: FxHashMap<u64, NodeId> = placement
            .into_iter()
            .filter(|(_, nodes_of)| nodes_of.len() <= r as usize)
            .map(|(h, nodes_of)| (h, *nodes_of.iter().next().expect("non-empty placement")))
            .collect();
        // (Re)create the colliding set and fill it with `r` extra copies
        // of each colliding object, placed on the nodes after the
        // colliding node (wrapping), HDFS-style.
        let name = colliding_set_name(group);
        if self.catalog.contains(&name)? {
            self.drop_dist_set(&name)?;
        }
        let cset = self.create_dist_set(&name, PartitionScheme::round_robin(nodes))?;
        if !colliding.is_empty() {
            let mut sinks =
                BatchedSinks::new(self.clone(), cset.name.clone(), DispatchConfig::default());
            // One scan of the first member yields every object's bytes.
            let first = self
                .get_dist_set(&members[0])?
                .ok_or_else(|| PangeaError::usage("group has no members"))?;
            let mut stored: FxHashSet<u64> = FxHashSet::default();
            first.try_for_each_record(|from, rec| {
                let h = fx_hash64(rec);
                let Some(&collide_node) = colliding.get(&h) else {
                    return Ok(());
                };
                if !stored.insert(h) {
                    return Ok(()); // copy already stored during this scan
                }
                for i in 1..=r {
                    let to = NodeId((collide_node.raw() + i) % nodes);
                    sinks.push(from, to, rec)?;
                }
                Ok(())
            })?;
            sinks.finish()?;
        }
        Ok((objects, colliding.len() as u64))
    }

    /// Sets the transport pipelining window shipped map tasks run
    /// under: batches in flight per destination before the mapper
    /// awaits the oldest ack (`0` = backend default, `1` =
    /// strict-serial — the pre-pipelining behavior, kept addressable
    /// for A/B round-trip comparisons). Forwarded through
    /// [`TaskExec::set_pipeline_window`]; returns `true` when a
    /// task-shipping backend received the hint and `false` on
    /// in-process backends, which stream synchronously.
    pub fn set_task_pipeline_window(&self, window: u32) -> bool {
        match self.workers.task_exec() {
            Some(exec) => {
                exec.set_pipeline_window(window);
                true
            }
            None => false,
        }
    }

    /// A distributed map-shuffle (the paper's "move computation to the
    /// data" applied to the shuffle): applies the declarative `map` to
    /// every record of `input` and materializes the routed output as a
    /// normal cataloged set named `output` under `scheme`.
    ///
    /// Backends exposing [`WorkerBackend::task_exec`] run it
    /// distributed: the driver ships one task per worker in parallel,
    /// each worker scans its *local* input share and streams the mapped
    /// output **directly to the destination workers** — the driver only
    /// plans and collects reports, moving zero record bytes. `scheme`
    /// must be declarative there (`hash_field`/`hash_whole`/
    /// round-robin); a closure-keyed scheme fails with the typed
    /// [`PangeaError::NotWireSafe`] instead of silently routing through
    /// the driver. Backends without the capability (`SimCluster`) run
    /// the same job serially in-process, where UDF-closure schemes work
    /// fine.
    ///
    /// An existing output set under the *same* scheme is replaced — a
    /// retried job (e.g. after a mid-task worker failure) materializes
    /// afresh, so retries never duplicate records. An output set with a
    /// different scheme is a usage error. A fleet with a dead slot is
    /// refused with the typed [`PangeaError::NodeUnavailable`] (the
    /// slot's input share would silently go missing): recover it first.
    pub fn map_shuffle(
        &self,
        input: &str,
        output: &str,
        map: &MapSpec,
        scheme: PartitionScheme,
    ) -> Result<MapShuffleReport> {
        self.map_shuffle_inner(input, output, map, None, scheme)
    }

    /// A distributed map-**combine-reduce**: like
    /// [`ClusterCore::map_shuffle`], plus a declarative [`ReduceSpec`]
    /// folding the mapped output per key. Mappers pre-aggregate their
    /// share before shipping (source-side combine — the shuffle pays
    /// for distinct keys, not raw emissions), destinations merge the
    /// incoming partials in reducing ingest sessions, and the
    /// materialized output holds one `key<delim>value` record per key.
    ///
    /// The output `scheme` must be hash-partitioned **by the reduced
    /// key** — field 0 under the reduce's delimiter (e.g.
    /// `PartitionScheme::hash_field(name, parts, reduce.delim, 0)`) —
    /// so a key's partials from every mapper converge on one node;
    /// anything else is a typed usage error before anything runs.
    pub fn map_reduce(
        &self,
        input: &str,
        output: &str,
        map: &MapSpec,
        reduce: &ReduceSpec,
        scheme: PartitionScheme,
    ) -> Result<MapShuffleReport> {
        self.map_shuffle_inner(input, output, map, Some(reduce), scheme)
    }

    fn map_shuffle_inner(
        &self,
        input: &str,
        output: &str,
        map: &MapSpec,
        reduce: Option<&ReduceSpec>,
        scheme: PartitionScheme,
    ) -> Result<MapShuffleReport> {
        let start = Instant::now();
        if input == output {
            return Err(PangeaError::usage(format!(
                "map-shuffle output '{output}' cannot be its own input"
            )));
        }
        if let Some(reduce) = reduce {
            // A reduce needs every partial of a key on one node, and the
            // materialized output is `key<delim>value` — so placement
            // must be a hash over exactly the output's key field. This
            // also rules out closure-keyed and round-robin schemes in
            // *both* backends, keeping the serial reference's semantics
            // identical to the distributed run.
            if !ReduceSpec::delim_ok(reduce.delim) {
                return Err(PangeaError::usage(format!(
                    "reduce delimiter {:#04x} can appear inside a rendered \
                     decimal value and would corrupt the key|value partial \
                     encoding; pick a non-digit, non-'-' byte",
                    reduce.delim
                )));
            }
            let keyed_right = scheme.kind == PartitionKind::Hash
                && scheme.key_spec()
                    == Some(KeySpec::Field {
                        delim: reduce.delim,
                        index: 0,
                    });
            if !keyed_right {
                return Err(PangeaError::usage(format!(
                    "a reduced output is `key{0}value` records and must be \
                     hash-partitioned by its key: build the scheme with \
                     hash_field(name, partitions, b'{0}', 0)",
                    reduce.delim as char
                )));
            }
        }
        let src = self
            .get_dist_set(input)?
            .ok_or_else(|| PangeaError::usage(format!("unknown input set '{input}'")))?;
        // Every validation runs before anything destructive: a rejected
        // job (closure-keyed scheme, dead slot) must never have dropped
        // the caller's existing output set first.
        let spec = match self.workers.task_exec() {
            None => None,
            Some(_) => Some(scheme.to_spec().map_err(|_| {
                PangeaError::NotWireSafe(format!(
                    "scheme '{}' is keyed by an opaque closure (a UDF) and \
                     cannot ship with a map task; build it with \
                     hash_field/hash_whole, or fall back to the \
                     driver-routed shuffle",
                    scheme.key_name
                ))
            })?),
        };
        // Every slot holds a share of the input; running with a dead
        // slot would silently drop that share from the output (or fail
        // with a misleading routing error mid-task). Typed, so callers
        // recover the slot and retry.
        let alive = self.workers.alive_nodes();
        for slot in 0..self.workers.num_nodes() {
            if !alive.contains(&NodeId(slot)) {
                return Err(PangeaError::NodeUnavailable(NodeId(slot)));
            }
        }
        if let Some(existing) = self.catalog.entry(output)? {
            // Co-partitioning (kind/key/partition-count) is not enough
            // here: two hash_field schemes sharing a key *name* but
            // splitting differently would silently replace the output,
            // so the declarative key spec must match too.
            let same = existing.scheme.kind == scheme.kind
                && existing.scheme.partitions == scheme.partitions
                && existing.scheme.key_name == scheme.key_name
                && existing.scheme.key_spec() == scheme.key_spec();
            if !same {
                return Err(PangeaError::usage(format!(
                    "output set '{output}' already exists under a different \
                     scheme; drop it first"
                )));
            }
            self.drop_dist_set(output)?;
        }
        match (self.workers.task_exec(), spec) {
            (Some(exec), Some(spec)) => {
                self.map_shuffle_tasks(exec, &src, output, map, reduce, &spec, scheme, start)
            }
            _ => self.map_shuffle_serial(&src, output, map, reduce, scheme, start),
        }
    }

    /// The in-process path: one serial scan-map-dispatch through the
    /// driver, batched per destination like any dispatcher load — the
    /// record-for-record reference for the distributed path.
    ///
    /// Round-robin outputs stripe **per source node** with a
    /// slot-offset start — source `s`'s `i`-th emission lands on
    /// partition `(s + i) % partitions` — exactly the rule each remote
    /// mapper applies, so per-node parity holds for round-robin output
    /// schemes too (the scan visits each node's share in the same
    /// storage order a shipped task would).
    ///
    /// With a reduce, the whole input folds into one keyed accumulator
    /// here (a single global fold — the associative/commutative
    /// reference the distributed combine-then-merge must equal) and the
    /// encoded `key|value` records dispatch through the scheme.
    fn map_shuffle_serial(
        &self,
        src: &EngineSet,
        output: &str,
        map: &MapSpec,
        reduce: Option<&ReduceSpec>,
        scheme: PartitionScheme,
        start: Instant,
    ) -> Result<MapShuffleReport> {
        let out = self.create_dist_set(output, scheme.clone())?;
        let nodes = self.workers.num_nodes();
        let mut sinks = BatchedSinks::new(
            self.clone(),
            out.name().to_string(),
            DispatchConfig::default(),
        );
        let (mut scanned, mut records_out, mut bytes_out) = (0u64, 0u64, 0u64);
        match reduce {
            Some(reduce) => {
                let mut acc: std::collections::BTreeMap<Vec<u8>, i64> = Default::default();
                src.try_for_each_record(|_, rec| {
                    scanned += 1;
                    map.for_each_emit(rec, &mut |mapped| {
                        if let Some((key, value)) = reduce.accumulate(mapped) {
                            reduce.fold_into(&mut acc, &key, value);
                        }
                        Ok(())
                    })
                })?;
                // The fold collapsed per-record origins; the reduced
                // records dispatch as a driver load (external origin),
                // like any loader-fed set.
                for (key, value) in &acc {
                    let rec = reduce.encode_record(key, *value);
                    let to = scheme.node_of(&rec, 0, nodes);
                    records_out += 1;
                    bytes_out += rec.len() as u64;
                    sinks.push(NodeId(u32::MAX), to, &rec)?;
                }
            }
            None => {
                let mut emitted_of: FxHashMap<NodeId, u64> = FxHashMap::default();
                src.try_for_each_record(|from, rec| {
                    scanned += 1;
                    map.for_each_emit(rec, &mut |mapped| {
                        let seq = emitted_of.entry(from).or_insert(0);
                        let to = scheme.node_of(mapped, from.raw() as u64 + *seq, nodes);
                        *seq += 1;
                        records_out += 1;
                        bytes_out += mapped.len() as u64;
                        sinks.push(from, to, mapped)
                    })
                })?;
            }
        }
        sinks.finish()?;
        self.catalog.add_stats(output, records_out, bytes_out)?;
        Ok(MapShuffleReport {
            output: output.to_string(),
            scanned,
            records_out,
            bytes_out,
            tasks: Vec::new(),
            duration: start.elapsed(),
        })
    }

    /// The distributed path: ingest sessions bracket one shipped task
    /// per worker, all tasks in flight at once (one orchestration
    /// thread — and thus one `TaskRun` RPC — per worker). Sessions are
    /// sealed whatever happens, and the sealed totals — not the task
    /// acks — are authoritative for the materialized output (a task
    /// whose ack was lost still appended for real).
    #[allow(clippy::too_many_arguments)]
    fn map_shuffle_tasks(
        &self,
        exec: &dyn TaskExec,
        src: &EngineSet,
        output: &str,
        map: &MapSpec,
        reduce: Option<&ReduceSpec>,
        spec: &SchemeSpec,
        scheme: PartitionScheme,
        start: Instant,
    ) -> Result<MapShuffleReport> {
        self.create_dist_set(output, scheme)?;
        let alive = self.workers.alive_nodes();
        let nodes = self.workers.num_nodes();
        for &dest in &alive {
            exec.ingest_begin(dest, output, reduce)?;
        }
        let input = src.name();
        let outcome: Result<Vec<(NodeId, TaskReport)>> = std::thread::scope(|s| {
            let handles: Vec<_> = alive
                .iter()
                .map(|&worker| {
                    s.spawn(move || {
                        exec.map_task(worker, input, output, map, reduce, spec, nodes)
                            .map(|r| (worker, r))
                    })
                })
                .collect();
            // Join everything, then pick the error to surface: a typed
            // NodeUnavailable (the worker is *gone*) beats whatever
            // secondary failures its death caused in sibling tasks that
            // were pushing to it.
            let results: Vec<Result<(NodeId, TaskReport)>> = handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .unwrap_or_else(|_| Err(PangeaError::Remote("a map task panicked".into())))
                })
                .collect();
            let mut tasks = Vec::new();
            let mut first_err: Option<PangeaError> = None;
            for r in results {
                match r {
                    Ok(t) => tasks.push(t),
                    Err(e) => {
                        let prefer = matches!(e, PangeaError::NodeUnavailable(_))
                            && !matches!(first_err, Some(PangeaError::NodeUnavailable(_)));
                        if first_err.is_none() || prefer {
                            first_err = Some(e);
                        }
                    }
                }
            }
            match first_err {
                Some(e) => Err(e),
                None => Ok(tasks),
            }
        });
        // Seal every session whatever happened: a failed job must not
        // leave destinations holding tag ledgers forever. (Should a
        // seal itself fail — daemon unreachable — the retry's
        // `ingest_begin` replaces the session.)
        let mut end_err: Option<PangeaError> = None;
        let (mut records_out, mut bytes_out) = (0u64, 0u64);
        for &dest in &alive {
            match exec.ingest_end(dest, output) {
                Ok((a, b)) => {
                    records_out += a;
                    bytes_out += b;
                }
                Err(e) if end_err.is_none() => end_err = Some(e),
                Err(_) => {}
            }
        }
        let tasks = outcome?;
        if let Some(e) = end_err {
            return Err(e);
        }
        self.catalog.add_stats(output, records_out, bytes_out)?;
        let mut totals = TaskReport::default();
        for (_, task) in &tasks {
            totals.merge(task);
        }
        Ok(MapShuffleReport {
            output: output.to_string(),
            scanned: totals.scanned,
            records_out,
            bytes_out,
            tasks,
            duration: start.elapsed(),
        })
    }

    /// Count of colliding objects currently stored for `group`.
    pub fn colliding_objects(&self, group: ReplicaGroupId) -> Result<u64> {
        match self.get_dist_set(&colliding_set_name(group))? {
            Some(s) => s.total_records(),
            None => Ok(0),
        }
    }

    /// Restores the data a failed node lost (paper §7): for every member
    /// of every replication group, re-derives the objects that lived on
    /// `failed` by running the member's partitioner over a surviving
    /// sibling replica, plus the colliding set for objects with no
    /// surviving copy. The node slot must already be re-provisioned
    /// (fresh node, empty sets — see [`ClusterCore::provision_node`]).
    ///
    /// Backends exposing [`WorkerBackend::peer_repair`] recover
    /// worker→worker: survivors stream their shares straight to the
    /// replacement (one push in flight per survivor), the engine fills
    /// `bytes_moved` with the peer payload, and the orchestrating driver
    /// moves zero record bytes. Otherwise the driver-mediated serial
    /// path runs and `bytes_moved`/`duration` are left for the frontend.
    pub fn recover_sets(&self, failed: NodeId) -> Result<RecoveryReport> {
        self.recover_sets_in(failed, None)
    }

    /// [`ClusterCore::recover_sets`] restricted to a subset of replica
    /// groups (`None` = all). Lets an orchestrator split one slot's
    /// repair into phases with different parallelism rules — e.g.
    /// hash-only groups repaired concurrently across slots while
    /// round-robin groups run serially (`RemoteCluster::recover_workers`).
    pub fn recover_sets_in(
        &self,
        failed: NodeId,
        groups: Option<&[ReplicaGroupId]>,
    ) -> Result<RecoveryReport> {
        let groups = match groups {
            Some(groups) => groups.to_vec(),
            None => self.catalog.groups()?,
        };
        match self.workers.peer_repair() {
            Some(repair) => self.recover_sets_peer(repair, failed, &groups),
            None => self.recover_sets_serial(failed, &groups),
        }
    }

    fn recover_sets_serial(
        &self,
        failed: NodeId,
        groups: &[ReplicaGroupId],
    ) -> Result<RecoveryReport> {
        let mut report = RecoveryReport {
            failed,
            replicas_recovered: Vec::new(),
            objects_restored: 0,
            colliding_restored: 0,
            bytes_moved: 0,
            duration: Duration::ZERO,
        };
        for &group in groups {
            let members = self.group_members_checked(group, failed)?;
            for target in &members {
                let sources: Vec<&String> = members.iter().filter(|m| *m != target).collect();
                self.recover_member(group, target, &sources, failed, &mut report)?;
                report.replicas_recovered.push(target.clone());
            }
        }
        Ok(report)
    }

    fn group_members_checked(&self, group: ReplicaGroupId, failed: NodeId) -> Result<Vec<String>> {
        let members = self.catalog.group_members(group)?;
        if members.len() < 2 {
            return Err(PangeaError::UnrecoverableFailure(format!(
                "replica group {group} has a single member; cannot recover {failed}"
            )));
        }
        Ok(members)
    }

    /// The worker→worker recovery path. Per `(group, target)` pair:
    /// open a dedup session on the replacement (seeded with the
    /// surviving share for round-robin targets), push every sibling
    /// share in parallel — one thread, and thus one RPC in flight, per
    /// survivor — then push the colliding set, then seal the session.
    /// The session's hash ledger replays the serial path's `seen`-set
    /// semantics across concurrent pushers, so the restored contents
    /// match a serial run record-for-record (order aside).
    fn recover_sets_peer(
        &self,
        repair: &dyn PeerRepair,
        failed: NodeId,
        groups: &[ReplicaGroupId],
    ) -> Result<RecoveryReport> {
        let mut report = RecoveryReport {
            failed,
            replicas_recovered: Vec::new(),
            objects_restored: 0,
            colliding_restored: 0,
            bytes_moved: 0,
            duration: Duration::ZERO,
        };
        let survivors: Vec<NodeId> = self
            .workers
            .alive_nodes()
            .into_iter()
            .filter(|&n| n != failed)
            .collect();
        for &group in groups {
            let members = self.group_members_checked(group, failed)?;
            let cset = colliding_set_name(group);
            let have_cset = self.catalog.contains(&cset)?;
            for target in &members {
                let t_entry = self
                    .catalog
                    .entry(target)?
                    .ok_or_else(|| PangeaError::usage(format!("unknown target '{target}'")))?;
                // Hash targets recompute their lost share by placement on
                // every survivor; round-robin targets define it by absence,
                // so the session pulls the surviving share's hashes first
                // — and survivors then diff against that seeded ledger at
                // the *source* (`Absent`), shipping ~the lost share
                // instead of their whole share (`All` would dedup at the
                // replacement after paying for every present record).
                let (filter, present_on): (RepairFilter, &[NodeId]) = match t_entry.scheme.kind {
                    PartitionKind::Hash => (
                        RepairFilter::Lost {
                            scheme: t_entry.scheme.to_spec()?,
                            failed: failed.raw(),
                            nodes: self.workers.num_nodes(),
                        },
                        &[],
                    ),
                    PartitionKind::RoundRobin => (RepairFilter::Absent, &survivors),
                };
                repair.repair_begin(failed, target, present_on)?;
                // The two push passes, with the session closed whatever
                // happens: a failed push must not leave the replacement
                // holding the session's hash ledger forever. (Should the
                // close itself fail — daemon unreachable — the next
                // repair attempt's `repair_begin` replaces the session.)
                let outcome = (|| {
                    // Pass 1: sibling replicas, in parallel per survivor.
                    let sources: Vec<String> =
                        members.iter().filter(|m| *m != target).cloned().collect();
                    let siblings =
                        push_parallel(repair, &survivors, &sources, failed, target, &filter)?;
                    // Pass 2: the colliding set (objects with no surviving
                    // sibling copy); the session dedups against pass 1.
                    let csets = if have_cset {
                        push_parallel(
                            repair,
                            &survivors,
                            std::slice::from_ref(&cset),
                            failed,
                            target,
                            &filter,
                        )?
                    } else {
                        RepairPushReport::default()
                    };
                    Ok::<_, PangeaError>((siblings, csets))
                })();
                let ended = repair.repair_end(failed, target);
                let (_siblings, csets) = outcome?;
                // The session totals are authoritative: a push whose ack
                // was lost to a connection failure (and whose retry then
                // deduped to zero) still appended for real, and only the
                // session counted it.
                let (session_appended, session_bytes) = ended?;
                report.objects_restored += session_appended;
                // Pass-level split for the colliding share comes from
                // the pass-2 acks (best effort under lost acks).
                report.colliding_restored += csets.appended;
                // `bytes_moved` is the *restored* payload (what the
                // replacement appended after dedup), mirroring the
                // serial path where shipped == appended; duplicate
                // sibling pushes and All-filter overshoot are visible
                // in the per-node `repair_bytes` counters instead.
                report.bytes_moved += session_bytes;
                report.replicas_recovered.push(target.clone());
            }
        }
        Ok(report)
    }

    /// Restores `target`'s lost share on `failed` from the surviving
    /// sibling replicas and the group's colliding set. With two replicas
    /// one sibling suffices (the paper's "arbitrarily selects another
    /// replica"); with three or more, an object may have been co-located
    /// with the target's copy in one sibling but not another, so all
    /// siblings are consulted and the `seen` set dedups.
    fn recover_member(
        &self,
        group: ReplicaGroupId,
        target: &str,
        sources: &[&String],
        failed: NodeId,
        report: &mut RecoveryReport,
    ) -> Result<()> {
        let nodes = self.workers.num_nodes();
        let t_entry = self
            .catalog
            .entry(target)?
            .ok_or_else(|| PangeaError::usage(format!("unknown target '{target}'")))?;
        let tgt = self
            .get_dist_set(target)?
            .ok_or_else(|| PangeaError::usage(format!("unknown target '{target}'")))?;
        let mut sinks =
            BatchedSinks::new(self.clone(), tgt.name.clone(), DispatchConfig::default());
        let mut seen: FxHashSet<u64> = FxHashSet::default();
        // For round-robin targets the lost share cannot be recomputed by
        // key; diff against the surviving share instead ("calculate the
        // key range for all lost partitions" generalized to arbitrary
        // physical organizations).
        let present: Option<FxHashSet<u64>> = match t_entry.scheme.kind {
            PartitionKind::Hash => None,
            PartitionKind::RoundRobin => {
                let mut p = FxHashSet::default();
                tgt.for_each_record(|_, rec| {
                    p.insert(fx_hash64(rec));
                })?;
                Some(p)
            }
        };
        let is_lost = |rec: &[u8]| -> bool {
            match &present {
                None => t_entry.scheme.node_of(rec, 0, nodes) == failed,
                Some(p) => !p.contains(&fx_hash64(rec)),
            }
        };
        // Pass 1: surviving sibling replicas.
        for source in sources {
            let src = self
                .get_dist_set(source)?
                .ok_or_else(|| PangeaError::usage(format!("unknown source '{source}'")))?;
            src.try_for_each_record(|from, rec| {
                if !is_lost(rec) || !seen.insert(fx_hash64(rec)) {
                    return Ok(());
                }
                sinks.push(from, failed, rec)?;
                report.objects_restored += 1;
                Ok(())
            })?;
        }
        // Pass 2: colliding objects (no surviving sibling copy).
        if let Some(cset) = self.get_dist_set(&colliding_set_name(group))? {
            cset.try_for_each_record(|from, rec| {
                if !is_lost(rec) || !seen.insert(fx_hash64(rec)) {
                    return Ok(());
                }
                sinks.push(from, failed, rec)?;
                report.objects_restored += 1;
                report.colliding_restored += 1;
                Ok(())
            })?;
        }
        sinks.finish()
    }
}

/// Runs one repair push per `(survivor, source)` pair with one thread —
/// and therefore one RPC in flight — per survivor, each survivor working
/// through `sources` in order. All threads are joined before returning;
/// the first error wins but never orphans a running push.
fn push_parallel(
    repair: &dyn PeerRepair,
    survivors: &[NodeId],
    sources: &[String],
    target: NodeId,
    target_set: &str,
    filter: &RepairFilter,
) -> Result<RepairPushReport> {
    let results: Vec<Result<RepairPushReport>> = std::thread::scope(|s| {
        let handles: Vec<_> = survivors
            .iter()
            .map(|&survivor| {
                s.spawn(move || {
                    let mut total = RepairPushReport::default();
                    for source in sources {
                        let push =
                            repair.repair_push(survivor, source, target, target_set, filter)?;
                        total.merge(&push);
                    }
                    Ok(total)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or_else(|_| {
                    Err(PangeaError::Remote(
                        "a repair-push thread panicked".to_string(),
                    ))
                })
            })
            .collect()
    });
    let mut total = RepairPushReport::default();
    for result in results {
        total.merge(&result?);
    }
    Ok(total)
}

/// A distributed dataset handle served by the engine: one locality set
/// per worker plus catalog metadata.
#[derive(Debug, Clone)]
pub struct EngineSet {
    core: ClusterCore,
    name: String,
}

impl EngineSet {
    /// The set's cluster-wide name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The owning engine.
    pub fn core(&self) -> &ClusterCore {
        &self.core
    }

    /// The set's partitioning scheme, from the catalog.
    pub fn scheme(&self) -> Result<PartitionScheme> {
        Ok(self
            .core
            .catalog
            .entry(&self.name)?
            .ok_or_else(|| PangeaError::usage(format!("set '{}' not cataloged", self.name)))?
            .scheme)
    }

    /// A dispatcher that routes records to workers by the set's scheme,
    /// with default per-destination batching. `origin` is the node (or
    /// client) the records are sent from, for network accounting.
    pub fn dispatcher(&self, origin: NodeId) -> Result<EngineDispatcher> {
        self.dispatcher_with(origin, DispatchConfig::default())
    }

    /// [`EngineSet::dispatcher`] with explicit batching thresholds.
    pub fn dispatcher_with(
        &self,
        origin: NodeId,
        config: DispatchConfig,
    ) -> Result<EngineDispatcher> {
        let scheme = self.scheme()?;
        let nodes = self.core.workers.num_nodes();
        Ok(EngineDispatcher {
            sinks: BatchedSinks::new(self.core.clone(), self.name.clone(), config),
            set_name: self.name.clone(),
            catalog: Arc::clone(&self.core.catalog),
            scheme,
            origin,
            nodes,
            ordinal: 0,
            objects: 0,
            bytes: 0,
        })
    }

    /// A dispatcher for records loaded from outside the cluster (every
    /// delivery crosses the wire).
    pub fn loader(&self) -> Result<EngineDispatcher> {
        self.dispatcher(NodeId(u32::MAX))
    }

    /// [`EngineSet::loader`] with explicit batching thresholds.
    pub fn loader_with(&self, config: DispatchConfig) -> Result<EngineDispatcher> {
        self.dispatcher_with(NodeId(u32::MAX), config)
    }

    /// Runs `f` over every record of the set on every alive node.
    pub fn for_each_record(&self, mut f: impl FnMut(NodeId, &[u8])) -> Result<()> {
        self.try_for_each_record(|n, rec| {
            f(n, rec);
            Ok(())
        })
    }

    /// Fallible variant of [`EngineSet::for_each_record`]: the first
    /// error aborts the scan.
    pub fn try_for_each_record(
        &self,
        mut f: impl FnMut(NodeId, &[u8]) -> Result<()>,
    ) -> Result<()> {
        for n in self.core.workers.alive_nodes() {
            self.core
                .workers
                .scan(n, &self.name, &mut |rec| f(n, rec))?;
        }
        Ok(())
    }

    /// Counts records per alive node (placement diagnostics).
    pub fn records_per_node(&self) -> Result<Vec<(NodeId, u64)>> {
        let mut out = Vec::new();
        for n in self.core.workers.alive_nodes() {
            out.push((n, self.core.workers.count(n, &self.name)?));
        }
        Ok(out)
    }

    /// Total records across alive nodes.
    pub fn total_records(&self) -> Result<u64> {
        Ok(self.records_per_node()?.iter().map(|(_, c)| c).sum())
    }
}

/// Routes records to workers according to a partitioning scheme, paying
/// network costs per flushed batch rather than per record.
pub struct EngineDispatcher {
    sinks: BatchedSinks,
    set_name: String,
    catalog: Arc<dyn Catalog>,
    scheme: PartitionScheme,
    origin: NodeId,
    nodes: u32,
    ordinal: u64,
    objects: u64,
    bytes: u64,
}

impl fmt::Debug for EngineDispatcher {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EngineDispatcher")
            .field("set", &self.set_name)
            .field("dispatched", &self.objects)
            .finish()
    }
}

impl EngineDispatcher {
    /// Routes one record, returning the node it will land on. Delivery
    /// may be deferred until the destination's batch flushes (or
    /// [`EngineDispatcher::finish`]), so delivery errors can surface on
    /// a later call.
    pub fn dispatch(&mut self, record: &[u8]) -> Result<NodeId> {
        let node = self.scheme.node_of(record, self.ordinal, self.nodes);
        self.ordinal += 1;
        self.sinks.push(self.origin, node, record)?;
        self.objects += 1;
        self.bytes += record.len() as u64;
        Ok(node)
    }

    /// Records dispatched so far.
    pub fn dispatched(&self) -> u64 {
        self.objects
    }

    /// Flushes every pending batch, seals all sinks, and publishes
    /// statistics to the catalog.
    pub fn finish(self) -> Result<()> {
        self.sinks.finish()?;
        self.catalog
            .add_stats(&self.set_name, self.objects, self.bytes)
    }
}

/// Per-destination batching over backend sinks: records accumulate per
/// `(origin, destination)` run and flush as one [`RecordSink::append`]
/// when a threshold trips, the origin changes, or the batch is sealed.
struct BatchedSinks {
    core: ClusterCore,
    set: String,
    config: DispatchConfig,
    slots: FxHashMap<NodeId, SinkSlot>,
}

struct SinkSlot {
    sink: Box<dyn RecordSink>,
    /// Origin of the pending batch; a batch never mixes origins so the
    /// local-delivery (`from == to`) free path stays exact.
    from: NodeId,
    pending: Vec<Vec<u8>>,
    pending_bytes: usize,
}

impl SinkSlot {
    fn flush(&mut self) -> Result<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        self.sink.append(self.from, &self.pending)?;
        self.pending.clear();
        self.pending_bytes = 0;
        Ok(())
    }
}

impl Drop for BatchedSinks {
    fn drop(&mut self) {
        // Best effort: a dispatcher dropped without `finish()` (e.g. an
        // unrelated error unwinding past it) still tries to deliver its
        // pending batches rather than silently discarding them. Errors
        // are swallowed here — `finish()` is the checked path, and only
        // it seals the sinks.
        for slot in self.slots.values_mut() {
            let _ = slot.flush();
        }
    }
}

impl BatchedSinks {
    fn new(core: ClusterCore, set: String, config: DispatchConfig) -> Self {
        Self {
            core,
            set,
            config,
            slots: FxHashMap::default(),
        }
    }

    fn push(&mut self, from: NodeId, to: NodeId, record: &[u8]) -> Result<()> {
        if !self.slots.contains_key(&to) {
            let sink = self.core.workers.open_sink(to, &self.set)?;
            self.slots.insert(
                to,
                SinkSlot {
                    sink,
                    from,
                    pending: Vec::new(),
                    pending_bytes: 0,
                },
            );
        }
        let slot = self.slots.get_mut(&to).expect("just ensured");
        if slot.from != from {
            slot.flush()?;
            slot.from = from;
        }
        slot.pending.push(record.to_vec());
        slot.pending_bytes += record.len();
        if slot.pending.len() >= self.config.max_batch_records
            || slot.pending_bytes >= self.config.max_batch_bytes
        {
            slot.flush()?;
        }
        Ok(())
    }

    fn finish(mut self) -> Result<()> {
        for (_, mut slot) in self.slots.drain() {
            slot.flush()?;
            slot.sink.finish()?;
        }
        Ok(())
    }
}
