//! # pangea-cluster
//!
//! The distributed half of the Pangea reproduction (paper §3.3, §7): a
//! simulated cluster of full per-node storage engines behind one
//! light-weight manager, with partitioned dispatch, heterogeneous
//! replication (replicas = different physical organizations of the same
//! objects), colliding-object tracking, failure injection, and recovery.
//!
//! The distributed logic lives in one generic [`engine`]
//! ([`ClusterCore`] over the [`WorkerBackend`]/[`Catalog`] seams);
//! [`SimCluster`] is its in-process frontend, and `pangea-coord`'s
//! `RemoteCluster` drives the same engine against remote `pangead`
//! processes and a wire-served catalog.
//!
//! See DESIGN.md §2 for the cluster-to-simulation substitution argument.

pub mod cluster;
pub mod engine;
pub mod manager;
pub mod network;
pub mod partition;
pub mod replication;

pub use cluster::{ClusterConfig, Dispatcher, DistSet, SimCluster, SimWorkers};
pub use engine::{
    Catalog, ClusterCore, DispatchConfig, EngineDispatcher, EngineSet, MapShuffleReport,
    PeerRepair, RecordSink, RecoveryReport, ReplicaReport, TaskExec, WorkerBackend,
};
pub use manager::{CatalogEntry, Manager, SetStats};
pub use network::SimNetwork;
// The wire seam the cluster is generic over (DESIGN.md §2a), plus the
// declarative specs map-shuffle jobs are written in.
pub use pangea_net::{
    CmpOp, EmitSpec, FilterSpec, KeySpec, MapSpec, ReduceOp, ReduceSpec, TaskReport, TcpTransport,
    Transport,
};
pub use partition::{KeyFn, PartitionKind, PartitionScheme};
pub use replication::{colliding_set_name, expected_colliding_ratio};
