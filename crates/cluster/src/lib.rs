//! # pangea-cluster
//!
//! The distributed half of the Pangea reproduction (paper §3.3, §7): a
//! simulated cluster of full per-node storage engines behind one
//! light-weight manager, with partitioned dispatch, heterogeneous
//! replication (replicas = different physical organizations of the same
//! objects), colliding-object tracking, failure injection, and recovery.
//!
//! See DESIGN.md §2 for the cluster-to-simulation substitution argument.

pub mod cluster;
pub mod manager;
pub mod network;
pub mod partition;
pub mod replication;

pub use cluster::{ClusterConfig, Dispatcher, DistSet, SimCluster};
pub use manager::{CatalogEntry, Manager, SetStats};
pub use network::SimNetwork;
// The wire seam the cluster is generic over (DESIGN.md §2a).
pub use pangea_net::{TcpTransport, Transport};
pub use partition::{KeyFn, PartitionKind, PartitionScheme};
pub use replication::{
    colliding_set_name, expected_colliding_ratio, RecoveryReport, ReplicaReport,
};
