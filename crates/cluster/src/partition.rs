//! Partitioning schemes (paper §7).
//!
//! A [`PartitionScheme`] names the key a replica is organized by (e.g.
//! `l_orderkey`) and maps records to partitions and partitions to nodes.
//! Applications supply the key extractor — the paper's
//! `PartitionComp(getKeyUdf)` — as a plain function over record bytes, so
//! schemes work for any record layout.

use pangea_common::{fx_hash64, NodeId, PangeaError, PartitionId, Result};
use pangea_net::{KeySpec, SchemeSpec};
use std::fmt;
use std::sync::Arc;

/// Extracts the partitioning key from a record's bytes.
pub type KeyFn = Arc<dyn Fn(&[u8]) -> Vec<u8> + Send + Sync>;

/// How records map to partitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionKind {
    /// `hash(key) % partitions` — the paper's partitioned replicas.
    Hash,
    /// Records round-robin over partitions (the paper's "randomly
    /// dispatched" source sets).
    RoundRobin,
}

/// A named partitioning scheme: key name, partition count, and kind.
#[derive(Clone)]
pub struct PartitionScheme {
    /// The key the scheme organizes by (`l_orderkey`, …). Round-robin
    /// schemes conventionally use `"random"`.
    pub key_name: String,
    /// Number of partitions.
    pub partitions: u32,
    /// Partitioning kind.
    pub kind: PartitionKind,
    key_fn: Option<KeyFn>,
    /// Declarative form of `key_fn`, when the scheme was built from one.
    /// Only spec-carrying schemes can be registered in a wire-served
    /// catalog (UDF closures do not cross the wire).
    key_spec: Option<KeySpec>,
}

impl fmt::Debug for PartitionScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PartitionScheme")
            .field("key_name", &self.key_name)
            .field("partitions", &self.partitions)
            .field("kind", &self.kind)
            .finish()
    }
}

impl PartitionScheme {
    /// A hash scheme over `partitions` partitions keyed by an arbitrary
    /// `key_fn` — the paper's `PartitionComp(getKeyUdf)`. Closure-keyed
    /// schemes work everywhere in-process but cannot be registered in a
    /// wire-served catalog; use [`PartitionScheme::hash_field`] or
    /// [`PartitionScheme::hash_whole`] there.
    pub fn hash(
        key_name: &str,
        partitions: u32,
        key_fn: impl Fn(&[u8]) -> Vec<u8> + Send + Sync + 'static,
    ) -> Self {
        Self {
            key_name: key_name.to_string(),
            partitions: partitions.max(1),
            kind: PartitionKind::Hash,
            key_fn: Some(Arc::new(key_fn)),
            key_spec: None,
        }
    }

    /// A hash scheme keyed by field `index` of each record after
    /// splitting on `delim` — declarative, so it survives the trip
    /// through a wire-served catalog.
    pub fn hash_field(key_name: &str, partitions: u32, delim: u8, index: u32) -> Self {
        Self::from_key_spec(key_name, partitions, KeySpec::Field { delim, index })
    }

    /// A hash scheme keyed by the whole record (declarative).
    pub fn hash_whole(key_name: &str, partitions: u32) -> Self {
        Self::from_key_spec(key_name, partitions, KeySpec::WholeRecord)
    }

    fn from_key_spec(key_name: &str, partitions: u32, spec: KeySpec) -> Self {
        Self {
            key_name: key_name.to_string(),
            partitions: partitions.max(1),
            kind: PartitionKind::Hash,
            key_fn: Some(Arc::new(move |rec: &[u8]| spec.key_of(rec))),
            key_spec: Some(spec),
        }
    }

    /// A round-robin scheme (random dispatch).
    pub fn round_robin(partitions: u32) -> Self {
        Self {
            key_name: "random".to_string(),
            partitions: partitions.max(1),
            kind: PartitionKind::RoundRobin,
            key_fn: None,
            key_spec: None,
        }
    }

    /// The declarative key spec this scheme was built from, if any.
    pub fn key_spec(&self) -> Option<KeySpec> {
        self.key_spec
    }

    /// The wire form of this scheme, for registration in a wire-served
    /// catalog. Fails for hash schemes built from opaque closures.
    pub fn to_spec(&self) -> Result<SchemeSpec> {
        match self.kind {
            PartitionKind::RoundRobin => Ok(SchemeSpec::RoundRobin {
                partitions: self.partitions,
            }),
            PartitionKind::Hash => match self.key_spec {
                Some(key) => Ok(SchemeSpec::Hash {
                    key_name: self.key_name.clone(),
                    partitions: self.partitions,
                    key,
                }),
                None => Err(PangeaError::usage(format!(
                    "scheme '{}' is keyed by an opaque closure; build it with \
                     hash_field/hash_whole to register it over the wire",
                    self.key_name
                ))),
            },
        }
    }

    /// Re-materializes a scheme from its wire form.
    pub fn from_spec(spec: &SchemeSpec) -> Self {
        match spec {
            SchemeSpec::RoundRobin { partitions } => Self::round_robin(*partitions),
            SchemeSpec::Hash {
                key_name,
                partitions,
                key,
            } => Self::from_key_spec(key_name, *partitions, *key),
        }
    }

    /// The partitioning key of `record`, when the scheme is keyed.
    pub fn key_of(&self, record: &[u8]) -> Option<Vec<u8>> {
        self.key_fn.as_ref().map(|f| f(record))
    }

    /// The partition a record belongs to. Round-robin schemes use the
    /// caller-maintained `ordinal` (records are sprayed in arrival order).
    pub fn partition_of(&self, record: &[u8], ordinal: u64) -> PartitionId {
        match self.kind {
            PartitionKind::Hash => {
                let key = self
                    .key_fn
                    .as_ref()
                    .expect("hash schemes always carry a key fn")(record);
                PartitionId((fx_hash64(&key) % self.partitions as u64) as u32)
            }
            PartitionKind::RoundRobin => PartitionId((ordinal % self.partitions as u64) as u32),
        }
    }

    /// The node hosting a partition in an `n`-node cluster (partitions
    /// stripe over nodes).
    pub fn node_of_partition(&self, p: PartitionId, nodes: u32) -> NodeId {
        NodeId(p.raw() % nodes.max(1))
    }

    /// The node a record lands on — the composition used for colliding-
    /// object detection (paper §7).
    pub fn node_of(&self, record: &[u8], ordinal: u64, nodes: u32) -> NodeId {
        self.node_of_partition(self.partition_of(record, ordinal), nodes)
    }

    /// True when two schemes co-partition their inputs: same key name,
    /// same kind, same partition count — the test the paper's query
    /// scheduler runs before pipelining a join without a shuffle (§9.1.2).
    pub fn co_partitioned_with(&self, other: &PartitionScheme) -> bool {
        self.kind == PartitionKind::Hash
            && other.kind == PartitionKind::Hash
            && self.key_name == other.key_name
            && self.partitions == other.partitions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn first_field(rec: &[u8]) -> Vec<u8> {
        rec.split(|&b| b == b'|').next().unwrap_or(rec).to_vec()
    }

    #[test]
    fn hash_scheme_is_deterministic_and_key_based() {
        let s = PartitionScheme::hash("k", 8, first_field);
        let a1 = s.partition_of(b"42|alpha", 0);
        let a2 = s.partition_of(b"42|beta", 99);
        assert_eq!(a1, a2, "same key, same partition regardless of payload");
        assert_eq!(s.key_of(b"42|x").unwrap(), b"42");
    }

    #[test]
    fn round_robin_cycles() {
        let s = PartitionScheme::round_robin(3);
        assert_eq!(s.partition_of(b"x", 0).raw(), 0);
        assert_eq!(s.partition_of(b"x", 1).raw(), 1);
        assert_eq!(s.partition_of(b"x", 2).raw(), 2);
        assert_eq!(s.partition_of(b"x", 3).raw(), 0);
        assert!(s.key_of(b"x").is_none());
    }

    #[test]
    fn partitions_stripe_over_nodes() {
        let s = PartitionScheme::hash("k", 8, first_field);
        for p in 0..8 {
            assert_eq!(s.node_of_partition(PartitionId(p), 4).raw(), p % 4);
        }
    }

    #[test]
    fn co_partitioning_requires_key_kind_and_count() {
        let a = PartitionScheme::hash("l_orderkey", 8, first_field);
        let b = PartitionScheme::hash("l_orderkey", 8, first_field);
        let c = PartitionScheme::hash("l_partkey", 8, first_field);
        let d = PartitionScheme::hash("l_orderkey", 16, first_field);
        let r = PartitionScheme::round_robin(8);
        assert!(a.co_partitioned_with(&b));
        assert!(!a.co_partitioned_with(&c));
        assert!(!a.co_partitioned_with(&d));
        assert!(!a.co_partitioned_with(&r));
    }

    #[test]
    fn declarative_schemes_roundtrip_the_wire_form() {
        let s = PartitionScheme::hash_field("l_orderkey", 8, b'|', 1);
        let spec = s.to_spec().unwrap();
        let back = PartitionScheme::from_spec(&spec);
        assert_eq!(back.key_name, "l_orderkey");
        assert_eq!(back.partitions, 8);
        assert_eq!(back.kind, PartitionKind::Hash);
        assert_eq!(
            back.partition_of(b"a|42|x", 0),
            s.partition_of(b"a|42|zzz", 7),
            "same key field, same partition after the round trip"
        );

        let rr = PartitionScheme::round_robin(3);
        assert_eq!(
            PartitionScheme::from_spec(&rr.to_spec().unwrap()).partitions,
            3
        );

        let whole = PartitionScheme::hash_whole("word", 4);
        assert_eq!(whole.key_of(b"abc").unwrap(), b"abc");
        assert!(whole.to_spec().is_ok());
    }

    #[test]
    fn closure_schemes_refuse_the_wire() {
        let s = PartitionScheme::hash("k", 4, first_field);
        assert!(s.key_spec().is_none());
        assert!(matches!(
            s.to_spec(),
            Err(pangea_common::PangeaError::InvalidUsage(_))
        ));
    }

    #[test]
    fn hash_spreads_keys_reasonably() {
        let s = PartitionScheme::hash("k", 4, first_field);
        let mut counts = [0usize; 4];
        for i in 0..4000u32 {
            let rec = format!("{i}|payload");
            counts[s.partition_of(rec.as_bytes(), 0).raw() as usize] += 1;
        }
        for c in counts {
            assert!(c > 700, "skewed partition: {counts:?}");
        }
    }
}
