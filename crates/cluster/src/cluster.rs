//! The simulated Pangea cluster: one light-weight manager plus N worker
//! nodes, each running a full per-node storage engine (paper §3.3).
//!
//! Substitution note (DESIGN.md §2): the paper's 11–31 AWS nodes become
//! N in-process workers. Each worker owns its own buffer pool, disk
//! directories, paging strategy, and catalog slice — the per-node code
//! paths the experiments measure run for real; only the wire between
//! nodes is simulated (byte-counted, optionally throttled).
//!
//! Since the control-plane refactor, `SimCluster` is a thin frontend
//! over the generic [`ClusterCore`] engine: [`SimWorkers`] implements
//! the [`WorkerBackend`] seam with in-process [`StorageNode`]s and an
//! explicit [`Transport`], and the in-process [`Manager`] implements the
//! catalog seam. `pangea-coord`'s `RemoteCluster` drives the *same*
//! engine against remote `pangead` processes and a wire-served catalog.

use crate::engine::{
    ClusterCore, DispatchConfig, EngineDispatcher, EngineSet, MapShuffleReport, RecordSink,
    WorkerBackend,
};
use crate::manager::Manager;
use crate::network::SimNetwork;
use crate::partition::PartitionScheme;
use pangea_common::{NodeId, PangeaError, Result};
use pangea_core::{LocalitySet, NodeConfig, ObjectIter, SeqWriter, SetOptions, StorageNode};
use pangea_net::Transport;
use parking_lot::RwLock;
use std::path::PathBuf;
use std::sync::Arc;

/// Cluster construction parameters.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of worker nodes.
    pub nodes: u32,
    /// Root directory; worker `i` stores under `<root>/node<i>`.
    pub data_root: PathBuf,
    /// Per-worker buffer pool capacity in bytes.
    pub pool_capacity: usize,
    /// Default page size.
    pub page_size: usize,
    /// Disks per worker.
    pub disks: usize,
    /// Optional per-disk bandwidth (bytes/s).
    pub disk_bandwidth: Option<u64>,
    /// Optional aggregate network bandwidth (bytes/s).
    pub net_bandwidth: Option<u64>,
    /// Paging strategy for every worker.
    pub strategy: String,
    /// The public key registered for this deployment (paper §3.3:
    /// bootstrap must present the matching private key).
    pub auth_key: String,
}

impl ClusterConfig {
    /// `nodes` workers rooted at `data_root` with library defaults and
    /// the default test key pair.
    pub fn new(data_root: impl Into<PathBuf>, nodes: u32) -> Self {
        Self {
            nodes: nodes.max(1),
            data_root: data_root.into(),
            pool_capacity: 16 * pangea_common::MB,
            page_size: 64 * pangea_common::KB,
            disks: 1,
            disk_bandwidth: None,
            net_bandwidth: None,
            strategy: "data-aware".into(),
            auth_key: "pangea-default-keypair".into(),
        }
    }

    /// Overrides the per-worker pool capacity.
    pub fn with_pool_capacity(mut self, bytes: usize) -> Self {
        self.pool_capacity = bytes;
        self
    }

    /// Overrides the default page size.
    pub fn with_page_size(mut self, bytes: usize) -> Self {
        self.page_size = bytes;
        self
    }

    /// Overrides the per-worker disk count.
    pub fn with_disks(mut self, disks: usize) -> Self {
        self.disks = disks;
        self
    }

    /// Sets disk bandwidth pacing.
    pub fn with_disk_bandwidth(mut self, bytes_per_sec: u64) -> Self {
        self.disk_bandwidth = Some(bytes_per_sec);
        self
    }

    /// Sets network bandwidth pacing.
    pub fn with_net_bandwidth(mut self, bytes_per_sec: u64) -> Self {
        self.net_bandwidth = Some(bytes_per_sec);
        self
    }

    /// Overrides the paging strategy.
    pub fn with_strategy(mut self, name: &str) -> Self {
        self.strategy = name.to_string();
        self
    }

    /// Registers the deployment key the bootstrap must match.
    pub fn with_auth_key(mut self, key: &str) -> Self {
        self.auth_key = key.to_string();
        self
    }

    fn node_config(&self, n: NodeId) -> NodeConfig {
        let mut cfg = NodeConfig::new(self.data_root.join(format!("node{}", n.raw())))
            .with_pool_capacity(self.pool_capacity)
            .with_page_size(self.page_size)
            .with_disks(self.disks)
            .with_strategy(&self.strategy);
        if let Some(bw) = self.disk_bandwidth {
            cfg = cfg.with_disk_bandwidth(bw);
        }
        cfg
    }
}

/// The in-process [`WorkerBackend`]: a slot vector of [`StorageNode`]s
/// plus the [`Transport`] every remote delivery pays.
#[derive(Debug)]
pub struct SimWorkers {
    /// Slot `i` hosts worker `i`; `None` marks a failed node.
    workers: RwLock<Vec<Option<StorageNode>>>,
    net: Arc<dyn Transport>,
}

impl SimWorkers {
    fn get(&self, n: NodeId) -> Result<StorageNode> {
        self.workers
            .read()
            .get(n.raw() as usize)
            .and_then(|w| w.clone())
            .ok_or(PangeaError::NodeUnavailable(n))
    }

    fn local_set(&self, n: NodeId, name: &str) -> Result<LocalitySet> {
        self.get(n)?
            .get_set(name)
            .ok_or_else(|| PangeaError::usage(format!("set '{name}' missing on {n}")))
    }
}

/// The in-process sink: one [`SeqWriter`] held open for the operation's
/// lifetime (batches land on shared pages, sealed once at `finish`),
/// fed through the transport for byte accounting.
struct SimSink {
    writer: SeqWriter,
    net: Arc<dyn Transport>,
    to: NodeId,
}

impl RecordSink for SimSink {
    fn append(&mut self, from: NodeId, records: &[Vec<u8>]) -> Result<()> {
        if records.is_empty() {
            return Ok(());
        }
        // One transfer per batch: the payload is the records
        // back-to-back, so net bytes equal the sum of record lengths —
        // identical accounting to per-record transfers, in fewer
        // messages (and, over TCP, fewer round trips).
        let total: usize = records.iter().map(Vec::len).sum();
        let mut payload = Vec::with_capacity(total);
        for rec in records {
            payload.extend_from_slice(rec);
        }
        let delivered = self.net.transfer(from, self.to, &payload)?;
        let mut off = 0;
        for rec in records {
            let next = off + rec.len();
            self.writer.add_object(&delivered[off..next])?;
            off = next;
        }
        Ok(())
    }

    fn finish(mut self: Box<Self>) -> Result<()> {
        self.writer.finish()
    }
}

impl WorkerBackend for SimWorkers {
    fn num_nodes(&self) -> u32 {
        self.workers.read().len() as u32
    }

    fn alive_nodes(&self) -> Vec<NodeId> {
        self.workers
            .read()
            .iter()
            .enumerate()
            .filter_map(|(i, w)| w.as_ref().map(|_| NodeId(i as u32)))
            .collect()
    }

    fn create_set(&self, n: NodeId, name: &str) -> Result<()> {
        self.get(n)?.create_set(name, SetOptions::write_through())?;
        Ok(())
    }

    fn drop_set(&self, n: NodeId, name: &str) -> Result<()> {
        let node = self.get(n)?;
        if let Some(local) = node.get_set(name) {
            node.drop_set(local.id())?;
        }
        Ok(())
    }

    fn open_sink(&self, n: NodeId, set: &str) -> Result<Box<dyn RecordSink>> {
        Ok(Box::new(SimSink {
            writer: self.local_set(n, set)?.writer(),
            net: Arc::clone(&self.net),
            to: n,
        }))
    }

    fn scan(&self, n: NodeId, set: &str, f: &mut dyn FnMut(&[u8]) -> Result<()>) -> Result<()> {
        let local = self.local_set(n, set)?;
        for num in local.page_numbers() {
            let pin = local.pin_page(num)?;
            let mut it = ObjectIter::new(&pin);
            while let Some(rec) = it.next() {
                f(rec)?;
            }
        }
        Ok(())
    }

    fn net_bytes(&self) -> u64 {
        self.net.bytes_moved()
    }
}

#[derive(Debug)]
pub(crate) struct ClusterInner {
    config: ClusterConfig,
    backend: Arc<SimWorkers>,
    manager: Arc<Manager>,
    /// The interconnect: in-process simulation by default, or any other
    /// [`Transport`] supplied at bootstrap (e.g. TCP via `pangea-net`).
    net: Arc<dyn Transport>,
    core: ClusterCore,
}

/// A handle to the simulated cluster. Cheap to clone.
#[derive(Debug, Clone)]
pub struct SimCluster {
    pub(crate) inner: Arc<ClusterInner>,
}

impl SimCluster {
    /// Bootstraps the cluster. Per the paper (§3.3), the user must submit
    /// the deployment's private key; "a non-valid key will cause the
    /// whole system to terminate".
    pub fn bootstrap(config: ClusterConfig, private_key: &str) -> Result<Self> {
        let net: Arc<dyn Transport> = match config.net_bandwidth {
            Some(bw) => Arc::new(SimNetwork::with_bandwidth(bw)),
            None => Arc::new(SimNetwork::unlimited()),
        };
        Self::bootstrap_with_transport(config, private_key, net)
    }

    /// Bootstraps the cluster over an explicit [`Transport`] — the same
    /// per-node engines and distributed logic, but every inter-node byte
    /// moves through `transport` (e.g. `pangea_net::TcpTransport` against
    /// a fleet of `pangead` peers). `config.net_bandwidth` is ignored
    /// here: pacing belongs to the transport the caller built.
    pub fn bootstrap_with_transport(
        config: ClusterConfig,
        private_key: &str,
        transport: Arc<dyn Transport>,
    ) -> Result<Self> {
        if private_key != config.auth_key {
            return Err(PangeaError::AuthenticationFailed);
        }
        let mut workers = Vec::with_capacity(config.nodes as usize);
        for n in 0..config.nodes {
            let dir = config.data_root.join(format!("node{n}"));
            let _ = std::fs::remove_dir_all(&dir);
            workers.push(Some(StorageNode::new(config.node_config(NodeId(n)))?));
        }
        let backend = Arc::new(SimWorkers {
            workers: RwLock::new(workers),
            net: Arc::clone(&transport),
        });
        let manager = Arc::new(Manager::new());
        let core = ClusterCore::new(
            Arc::clone(&backend) as Arc<dyn WorkerBackend>,
            Arc::clone(&manager) as Arc<dyn crate::engine::Catalog>,
        );
        Ok(Self {
            inner: Arc::new(ClusterInner {
                config,
                backend,
                manager,
                net: transport,
                core,
            }),
        })
    }

    /// Total node slots (alive or failed).
    pub fn num_nodes(&self) -> u32 {
        self.inner.config.nodes
    }

    /// Nodes currently alive, ascending.
    pub fn alive_nodes(&self) -> Vec<NodeId> {
        self.inner.backend.alive_nodes()
    }

    /// The storage engine of one worker.
    pub fn worker(&self, n: NodeId) -> Result<StorageNode> {
        self.inner.backend.get(n)
    }

    /// The manager's catalog / statistics database.
    pub fn manager(&self) -> &Manager {
        &self.inner.manager
    }

    /// The generic engine this frontend drives (shared with
    /// `RemoteCluster` in `pangea-coord`).
    pub fn core(&self) -> &ClusterCore {
        &self.inner.core
    }

    /// The cluster interconnect (simulated or real, per bootstrap).
    pub fn network(&self) -> &Arc<dyn Transport> {
        &self.inner.net
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.inner.config
    }

    /// Kills a node: its memory vanishes and its disks are wiped
    /// (total machine loss, the Fig. 6 failure model).
    pub fn kill_node(&self, n: NodeId) -> Result<()> {
        let mut workers = self.inner.backend.workers.write();
        let slot = workers
            .get_mut(n.raw() as usize)
            .ok_or(PangeaError::NodeUnavailable(n))?;
        if slot.take().is_none() {
            return Err(PangeaError::NodeUnavailable(n));
        }
        drop(workers);
        let _ =
            std::fs::remove_dir_all(self.inner.config.data_root.join(format!("node{}", n.raw())));
        Ok(())
    }

    /// Re-provisions a failed slot with a fresh, empty worker and
    /// re-creates the local locality sets of every cataloged distributed
    /// set. The data is restored separately by recovery (§7).
    pub fn restart_node(&self, n: NodeId) -> Result<StorageNode> {
        let mut workers = self.inner.backend.workers.write();
        let slot = workers
            .get_mut(n.raw() as usize)
            .ok_or(PangeaError::NodeUnavailable(n))?;
        if slot.is_some() {
            return Err(PangeaError::usage(format!("{n} is still alive")));
        }
        let node = StorageNode::new(self.inner.config.node_config(n))?;
        *slot = Some(node.clone());
        drop(workers);
        self.inner.core.provision_node(n)?;
        Ok(node)
    }

    // ------------------------------------------------------------------
    // Distributed sets
    // ------------------------------------------------------------------

    /// Creates a distributed set: a same-named write-through locality set
    /// on every alive worker plus a catalog entry with its partitioning
    /// scheme.
    pub fn create_dist_set(&self, name: &str, scheme: PartitionScheme) -> Result<DistSet> {
        let inner = self.inner.core.create_dist_set(name, scheme)?;
        Ok(DistSet {
            cluster: self.clone(),
            inner,
        })
    }

    /// Looks up a cataloged distributed set.
    pub fn get_dist_set(&self, name: &str) -> Option<DistSet> {
        self.inner
            .core
            .get_dist_set(name)
            .ok()
            .flatten()
            .map(|inner| DistSet {
                cluster: self.clone(),
                inner,
            })
    }

    /// Drops a distributed set everywhere.
    pub fn drop_dist_set(&self, name: &str) -> Result<()> {
        self.inner.core.drop_dist_set(name)
    }

    /// A map-shuffle over the cluster: applies the declarative `map` to
    /// every record of `input` and materializes the routed output as a
    /// normal distributed set named `output` under `scheme`. In the
    /// simulation this runs serially through the engine's dispatch path
    /// (UDF-closure schemes work fine here); `RemoteCluster` runs the
    /// *same* engine call distributed — one shipped task per worker —
    /// and this serial run is the record-for-record reference for it.
    /// That parity covers round-robin output schemes too: both backends
    /// stripe RR outputs per source node with a slot-offset start
    /// (source `s`'s `i`-th emission → partition `(s + i) %
    /// partitions`), so placement is identical, not merely balanced.
    pub fn map_shuffle(
        &self,
        input: &str,
        output: &str,
        map: &pangea_net::MapSpec,
        scheme: PartitionScheme,
    ) -> Result<MapShuffleReport> {
        self.inner.core.map_shuffle(input, output, map, scheme)
    }

    /// A map-**combine-reduce** over the cluster: like
    /// [`SimCluster::map_shuffle`] plus a declarative
    /// [`pangea_net::ReduceSpec`] folding the mapped output per key
    /// (count/sum/min/max of a delimited numeric field). Here the fold
    /// runs as one serial in-process pass — the reference the
    /// distributed combine-then-merge (`RemoteCluster::map_reduce`)
    /// must match record-for-record.
    pub fn map_reduce(
        &self,
        input: &str,
        output: &str,
        map: &pangea_net::MapSpec,
        reduce: &pangea_net::ReduceSpec,
        scheme: PartitionScheme,
    ) -> Result<MapShuffleReport> {
        self.inner
            .core
            .map_reduce(input, output, map, reduce, scheme)
    }
}

/// A distributed dataset: one locality set per worker plus manager
/// metadata.
#[derive(Debug, Clone)]
pub struct DistSet {
    cluster: SimCluster,
    inner: EngineSet,
}

impl DistSet {
    /// The set's cluster-wide name.
    pub fn name(&self) -> &str {
        self.inner.name()
    }

    /// The owning cluster.
    pub fn cluster(&self) -> &SimCluster {
        &self.cluster
    }

    /// The set's partitioning scheme, from the manager catalog.
    pub fn scheme(&self) -> Result<PartitionScheme> {
        self.inner.scheme()
    }

    /// The node-local locality set on worker `n` (in-process backends
    /// only; remote clusters read through the wire instead).
    pub fn local(&self, n: NodeId) -> Result<LocalitySet> {
        self.cluster.inner.backend.local_set(n, self.name())
    }

    /// A dispatcher that routes records to workers by the set's scheme,
    /// batching per destination. `origin` is the node (or client) the
    /// records are sent from, for network accounting; loading from
    /// outside the cluster uses [`DistSet::loader`].
    pub fn dispatcher(&self, origin: NodeId) -> Result<Dispatcher> {
        Ok(Dispatcher {
            inner: self.inner.dispatcher(origin)?,
        })
    }

    /// [`DistSet::dispatcher`] with explicit batching thresholds.
    pub fn dispatcher_with(&self, origin: NodeId, config: DispatchConfig) -> Result<Dispatcher> {
        Ok(Dispatcher {
            inner: self.inner.dispatcher_with(origin, config)?,
        })
    }

    /// A dispatcher for records loaded from outside the cluster (every
    /// delivery crosses the wire).
    pub fn loader(&self) -> Result<Dispatcher> {
        self.dispatcher(NodeId(u32::MAX))
    }

    /// [`DistSet::loader`] with explicit batching thresholds.
    pub fn loader_with(&self, config: DispatchConfig) -> Result<Dispatcher> {
        self.dispatcher_with(NodeId(u32::MAX), config)
    }

    /// Runs `f` over every record of the set on every alive node
    /// (single-threaded convenience; hot paths scan per node).
    pub fn for_each_record(&self, f: impl FnMut(NodeId, &[u8])) -> Result<()> {
        self.inner.for_each_record(f)
    }

    /// Fallible variant of [`DistSet::for_each_record`]: the first error
    /// aborts the scan.
    pub fn try_for_each_record(&self, f: impl FnMut(NodeId, &[u8]) -> Result<()>) -> Result<()> {
        self.inner.try_for_each_record(f)
    }

    /// Counts records per alive node (placement diagnostics).
    pub fn records_per_node(&self) -> Result<Vec<(NodeId, u64)>> {
        self.inner.records_per_node()
    }

    /// Total records across alive nodes.
    pub fn total_records(&self) -> Result<u64> {
        self.inner.total_records()
    }
}

/// Routes records to workers according to a partitioning scheme, paying
/// network costs per flushed batch (see [`DispatchConfig`]).
#[derive(Debug)]
pub struct Dispatcher {
    inner: EngineDispatcher,
}

impl Dispatcher {
    /// Routes one record, returning the node it lands on. Delivery may
    /// be deferred until the destination's batch flushes.
    pub fn dispatch(&mut self, record: &[u8]) -> Result<NodeId> {
        self.inner.dispatch(record)
    }

    /// Records dispatched so far.
    pub fn dispatched(&self) -> u64 {
        self.inner.dispatched()
    }

    /// Flushes all batches, seals all writers, and publishes statistics
    /// to the manager.
    pub fn finish(self) -> Result<()> {
        self.inner.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "pangea-cluster-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn small_cluster(tag: &str, nodes: u32) -> SimCluster {
        let cfg = ClusterConfig::new(test_root(tag), nodes)
            .with_pool_capacity(256 * pangea_common::KB)
            .with_page_size(4 * pangea_common::KB);
        SimCluster::bootstrap(cfg, "pangea-default-keypair").unwrap()
    }

    fn first_field(rec: &[u8]) -> Vec<u8> {
        rec.split(|&b| b == b'|').next().unwrap_or(rec).to_vec()
    }

    #[test]
    fn bad_key_terminates_bootstrap() {
        let cfg = ClusterConfig::new(test_root("auth"), 2).with_auth_key("right");
        assert!(matches!(
            SimCluster::bootstrap(cfg.clone(), "wrong"),
            Err(PangeaError::AuthenticationFailed)
        ));
        assert!(SimCluster::bootstrap(cfg, "right").is_ok());
    }

    #[test]
    fn round_robin_dispatch_balances_nodes() {
        let c = small_cluster("rr", 4);
        let s = c
            .create_dist_set("points", PartitionScheme::round_robin(8))
            .unwrap();
        let mut d = s.loader().unwrap();
        for i in 0..400u32 {
            d.dispatch(format!("{i}|payload").as_bytes()).unwrap();
        }
        d.finish().unwrap();
        let per_node = s.records_per_node().unwrap();
        assert_eq!(per_node.len(), 4);
        for (_, count) in &per_node {
            assert_eq!(*count, 100, "round robin balances exactly: {per_node:?}");
        }
        assert_eq!(s.total_records().unwrap(), 400);
        assert_eq!(c.manager().entry("points").unwrap().stats.objects, 400);
        assert!(c.network().bytes_moved() > 0);
    }

    #[test]
    fn batching_moves_the_same_bytes_in_fewer_messages() {
        // The satellite claim behind DispatchConfig: identical payload
        // accounting, strictly fewer Transport::transfer calls.
        let run = |tag: &str, config: DispatchConfig| {
            let c = small_cluster(tag, 3);
            let s = c
                .create_dist_set("batched", PartitionScheme::round_robin(3))
                .unwrap();
            let mut d = s.loader_with(config).unwrap();
            for i in 0..300u32 {
                d.dispatch(format!("{i}|row-{i:04}").as_bytes()).unwrap();
            }
            d.finish().unwrap();
            assert_eq!(s.total_records().unwrap(), 300);
            let snap = c.network().stats().snapshot();
            (snap.net_bytes, snap.net_messages)
        };
        let (bytes_unbatched, msgs_unbatched) = run("unbatched", DispatchConfig::unbatched());
        let (bytes_batched, msgs_batched) = run("batched", DispatchConfig::default());
        assert_eq!(
            bytes_batched, bytes_unbatched,
            "batching must not change payload accounting"
        );
        assert_eq!(
            msgs_unbatched, 300,
            "one transfer per record without batching"
        );
        assert!(
            msgs_batched * 10 <= msgs_unbatched,
            "batching should collapse transfers ≥10×: {msgs_batched} vs {msgs_unbatched}"
        );
    }

    #[test]
    fn hash_dispatch_groups_keys_on_one_node() {
        let c = small_cluster("hash", 3);
        let s = c
            .create_dist_set(
                "orders",
                PartitionScheme::hash("o_orderkey", 6, first_field),
            )
            .unwrap();
        let mut d = s.loader().unwrap();
        for i in 0..300u32 {
            d.dispatch(format!("{}|row{}", i % 30, i).as_bytes())
                .unwrap();
        }
        d.finish().unwrap();
        // Every record with the same key is on exactly one node.
        let mut key_nodes: std::collections::HashMap<Vec<u8>, NodeId> =
            std::collections::HashMap::new();
        s.for_each_record(|node, rec| {
            let k = first_field(rec);
            let prev = key_nodes.insert(k.clone(), node);
            if let Some(p) = prev {
                assert_eq!(p, node, "key {k:?} split across nodes");
            }
        })
        .unwrap();
        assert_eq!(key_nodes.len(), 30);
    }

    #[test]
    fn kill_makes_node_unavailable_and_restart_reprovisions() {
        let c = small_cluster("kill", 3);
        let s = c
            .create_dist_set("data", PartitionScheme::round_robin(3))
            .unwrap();
        let mut d = s.loader().unwrap();
        for i in 0..30u32 {
            d.dispatch(&i.to_le_bytes()).unwrap();
        }
        d.finish().unwrap();
        c.kill_node(NodeId(1)).unwrap();
        assert_eq!(c.alive_nodes(), vec![NodeId(0), NodeId(2)]);
        assert!(matches!(
            c.worker(NodeId(1)),
            Err(PangeaError::NodeUnavailable(_))
        ));
        assert!(c.kill_node(NodeId(1)).is_err(), "already dead");
        // Survivors keep serving their shares.
        assert_eq!(s.total_records().unwrap(), 20);
        // Restart provisions an empty node with the set re-created.
        c.restart_node(NodeId(1)).unwrap();
        assert_eq!(c.alive_nodes().len(), 3);
        assert_eq!(s.total_records().unwrap(), 20, "restart restores no data");
        assert!(s.local(NodeId(1)).is_ok());
    }

    #[test]
    fn map_shuffle_serial_materializes_a_routed_set() {
        use pangea_net::{FilterSpec, KeySpec, MapSpec};
        let c = small_cluster("mapshuffle", 3);
        let s = c
            .create_dist_set("lines", PartitionScheme::round_robin(3))
            .unwrap();
        let mut d = s.loader().unwrap();
        for i in 0..120u32 {
            d.dispatch(format!("{}|w{}|junk", i % 2, i % 9).as_bytes())
                .unwrap();
        }
        d.finish().unwrap();
        // Keep rows whose first field is "1", emit field 1, hash by the
        // emitted word.
        let map = MapSpec::extract(KeySpec::Field {
            delim: b'|',
            index: 1,
        })
        .with_filter(FilterSpec::KeyEquals {
            key: KeySpec::Field {
                delim: b'|',
                index: 0,
            },
            value: b"1".to_vec(),
        });
        let report = c
            .map_shuffle(
                "lines",
                "words",
                &map,
                PartitionScheme::hash_whole("word", 6),
            )
            .unwrap();
        assert_eq!(report.scanned, 120);
        assert_eq!(report.records_out, 60, "half the rows pass the filter");
        assert!(report.bytes_out > 0);
        let out = c.get_dist_set("words").unwrap();
        assert_eq!(out.total_records().unwrap(), 60);
        // Every output record is a projected word placed by its hash,
        // and honest duplicates survive (rows share words).
        let scheme = out.scheme().unwrap();
        out.for_each_record(|node, rec| {
            assert!(rec.starts_with(b"w"));
            assert_eq!(scheme.node_of(rec, 0, 3), node);
        })
        .unwrap();
        assert_eq!(c.manager().entry("words").unwrap().stats.objects, 60);
        // Re-running the job replaces the output instead of duplicating.
        let again = c
            .map_shuffle(
                "lines",
                "words",
                &map,
                PartitionScheme::hash_whole("word", 6),
            )
            .unwrap();
        assert_eq!(again.records_out, 60);
        assert_eq!(
            c.get_dist_set("words").unwrap().total_records().unwrap(),
            60
        );
        // A conflicting-scheme output is a usage error.
        assert!(c
            .map_shuffle("lines", "words", &map, PartitionScheme::round_robin(3))
            .is_err());
        // …and so is shuffling a set into itself.
        assert!(c
            .map_shuffle("lines", "lines", &map, PartitionScheme::hash_whole("w", 6))
            .is_err());
    }

    #[test]
    fn duplicate_dist_set_rejected() {
        let c = small_cluster("dup", 2);
        c.create_dist_set("s", PartitionScheme::round_robin(2))
            .unwrap();
        assert!(c
            .create_dist_set("s", PartitionScheme::round_robin(2))
            .is_err());
        assert!(c.get_dist_set("s").is_some());
        assert!(c.get_dist_set("t").is_none());
    }

    #[test]
    fn drop_dist_set_removes_everywhere() {
        let c = small_cluster("drop", 2);
        let s = c
            .create_dist_set("gone", PartitionScheme::round_robin(2))
            .unwrap();
        let mut d = s.loader().unwrap();
        d.dispatch(b"x").unwrap();
        d.finish().unwrap();
        c.drop_dist_set("gone").unwrap();
        assert!(c.get_dist_set("gone").is_none());
        for n in c.alive_nodes() {
            assert!(c.worker(n).unwrap().get_set("gone").is_none());
        }
    }
}
