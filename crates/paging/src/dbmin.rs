//! DBMIN (Chou & DeWitt, 1986) baseline, in the four sizing variants the
//! paper benchmarks.
//!
//! DBMIN assigns every locality set a *desired size* and a per-pattern
//! replacement policy; a set whose resident pages exceed its desired size
//! evicts from itself. Crucially, DBMIN performs **admission control**:
//! when the sum of desired sizes exceeds available memory, new requests
//! block — which the paper surfaces as the failures of `DBMIN-adaptive`
//! and `DBMIN-1000` in Fig. 3. We reproduce blocking as the
//! [`pangea_common::PangeaError::DbminBlocked`] error.
//!
//! Sizing variants (paper §9.1.1 and §9.2.1):
//! * **Adaptive** — per the original QLSM algorithm, with reference
//!   patterns learned from Pangea services: a loop-sequential set (scanned
//!   repeatedly) wants its whole size resident; a straight-sequential set
//!   wants one page; a random set wants a working-set estimate (we use the
//!   set's estimated size, matching the paper's "estimates locality set
//!   size exactly following the algorithm in \[21\]").
//! * **Fixed(1)** — `DBMIN-1`: every set's desired size is 1 page.
//! * **Fixed(1000)** — `DBMIN-1000`: every set wants 1000 pages.
//! * **Tuned** — Fig. 9's variant: adaptive, but each desired size is
//!   capped at pool capacity so admission never blocks.

use crate::{CurrentOp, PageView, PagingStrategy, ReadPattern, SetProfile, WithinSetPolicy};
use pangea_common::{FxHashMap, PageId, PangeaError, Result, SetId, Tick};

/// How DBMIN estimates each locality set's desired size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DbminSizing {
    /// QLSM-style estimation from the set's (learned) reference pattern.
    Adaptive,
    /// Every set desires exactly this many pages.
    Fixed(u64),
    /// Adaptive, but capped at pool capacity (never blocks).
    Tuned,
}

/// See module docs.
#[derive(Debug)]
pub struct DbminStrategy {
    sizing: DbminSizing,
    /// Pool capacity in pages, for admission control.
    capacity_pages: u64,
    profiles: FxHashMap<SetId, SetProfile>,
    desired: FxHashMap<SetId, u64>,
}

impl DbminStrategy {
    /// Creates a DBMIN strategy for a pool of `capacity_pages` pages.
    pub fn new(sizing: DbminSizing, capacity_pages: u64) -> Self {
        Self {
            sizing,
            capacity_pages,
            profiles: FxHashMap::default(),
            desired: FxHashMap::default(),
        }
    }

    /// The desired size DBMIN would assign to `profile`.
    fn desired_size(&self, profile: &SetProfile) -> u64 {
        match self.sizing {
            DbminSizing::Fixed(n) => n,
            DbminSizing::Adaptive | DbminSizing::Tuned => {
                let raw = match (profile.reading, profile.op) {
                    // Loop-sequential (read sets are re-scanned in analytics
                    // dataflows): QLSM wants the full set resident.
                    (Some(ReadPattern::Sequential), _) => profile.estimated_pages.unwrap_or(1),
                    // Random access: working set ≈ the set size (hash data
                    // is fully live while the aggregation runs).
                    (Some(ReadPattern::Random), _) => profile.estimated_pages.unwrap_or(100),
                    // Pure sequential write: one page suffices.
                    (None, CurrentOp::Write) => 1,
                    _ => profile.estimated_pages.unwrap_or(1),
                };
                if self.sizing == DbminSizing::Tuned {
                    raw.min(self.capacity_pages)
                } else {
                    raw
                }
            }
        }
    }

    fn check_admission(&self) -> Result<()> {
        let total: u64 = self.desired.values().sum();
        if total > self.capacity_pages {
            return Err(PangeaError::DbminBlocked {
                desired_bytes: total as usize,
                available_bytes: self.capacity_pages as usize,
            });
        }
        Ok(())
    }
}

impl PagingStrategy for DbminStrategy {
    fn update_set(&mut self, set: SetId, profile: SetProfile) -> Result<()> {
        let want = self.desired_size(&profile);
        self.profiles.insert(set, profile);
        self.desired.insert(set, want);
        // DBMIN admission control: block (error) when the sum of desired
        // sizes no longer fits — the Fig. 3 failure mode.
        self.check_admission()
    }

    fn remove_set(&mut self, set: SetId) {
        self.profiles.remove(&set);
        self.desired.remove(&set);
    }

    fn on_page_cached(&mut self, _page: PageId, _tick: Tick) {}

    fn on_page_accessed(&mut self, _page: PageId, _tick: Tick) {}

    fn on_page_evicted(&mut self, _page: PageId) {}

    fn choose_victims(&mut self, pages: &[PageView], _now: Tick) -> Vec<PageId> {
        let mut by_set: FxHashMap<SetId, Vec<&PageView>> = FxHashMap::default();
        let mut resident: FxHashMap<SetId, u64> = FxHashMap::default();
        for pv in pages {
            *resident.entry(pv.page.set).or_default() += 1;
            if pv.evictable {
                by_set.entry(pv.page.set).or_default().push(pv);
            }
        }
        if by_set.is_empty() {
            return Vec::new();
        }
        // Evict from the set most over its desired size; if nobody is over
        // budget (sizes were under-estimated), fall back to the set with
        // the most resident pages so progress is still possible.
        let over_budget = |set: SetId| {
            let res = resident.get(&set).copied().unwrap_or(0) as i64;
            let want = self.desired.get(&set).copied().unwrap_or(1) as i64;
            res - want
        };
        let victim_set = by_set
            .keys()
            .copied()
            .max_by_key(|&s| {
                (
                    over_budget(s),
                    resident.get(&s).copied().unwrap_or(0),
                    std::cmp::Reverse(s),
                )
            })
            .expect("non-empty");

        let profile = self.profiles.get(&victim_set).copied().unwrap_or_default();
        let mut cands = by_set.remove(&victim_set).expect("present");
        match profile.within_set_policy() {
            WithinSetPolicy::Lru => cands.sort_by_key(|p| p.last_access),
            WithinSetPolicy::Mru => cands.sort_by_key(|p| std::cmp::Reverse(p.last_access)),
        }
        // DBMIN evicts down to the desired size, one page at a time; we
        // return a single victim per round (the caller loops as needed).
        cands.into_iter().take(1).map(|p| p.page).collect()
    }

    fn name(&self) -> &'static str {
        match self.sizing {
            DbminSizing::Adaptive => "dbmin-adaptive",
            DbminSizing::Fixed(1) => "dbmin-1",
            DbminSizing::Fixed(_) => "dbmin-1000",
            DbminSizing::Tuned => "dbmin-tuned",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Durability;

    fn pv(set: u64, num: u64, last: Tick, evictable: bool) -> PageView {
        PageView {
            page: PageId::new(SetId(set), num),
            last_access: last,
            evictable,
            dirty: false,
        }
    }

    fn seq_read_profile(pages: u64) -> SetProfile {
        SetProfile {
            durability: Durability::WriteBack,
            reading: Some(ReadPattern::Sequential),
            op: CurrentOp::Read,
            estimated_pages: Some(pages),
            ..Default::default()
        }
    }

    #[test]
    fn adaptive_blocks_when_desired_exceeds_capacity() {
        let mut s = DbminStrategy::new(DbminSizing::Adaptive, 100);
        assert!(s.update_set(SetId(1), seq_read_profile(60)).is_ok());
        let err = s.update_set(SetId(2), seq_read_profile(60)).unwrap_err();
        assert!(matches!(err, PangeaError::DbminBlocked { .. }));
        assert!(err.is_reported_as_gap(), "matches Fig. 3 failure rendering");
    }

    #[test]
    fn dbmin_1000_blocks_on_small_pools() {
        let mut s = DbminStrategy::new(DbminSizing::Fixed(1000), 128);
        assert!(matches!(
            s.update_set(SetId(1), SetProfile::default()),
            Err(PangeaError::DbminBlocked { .. })
        ));
    }

    #[test]
    fn dbmin_1_never_blocks_and_evicts_over_budget_sets() {
        let mut s = DbminStrategy::new(DbminSizing::Fixed(1), 128);
        for i in 0..10 {
            s.update_set(SetId(i), SetProfile::default()).unwrap();
        }
        // Set 3 holds 5 pages (4 over budget), others hold 1.
        let mut pages = vec![];
        for i in 0..10u64 {
            pages.push(pv(i, 0, i, true));
        }
        for n in 1..5u64 {
            pages.push(pv(3, n, 50 + n, true));
        }
        let victims = s.choose_victims(&pages, 100);
        assert_eq!(victims.len(), 1, "DBMIN evicts one page per round");
        assert_eq!(victims[0].set, SetId(3));
    }

    #[test]
    fn tuned_caps_at_capacity_and_admits() {
        let mut s = DbminStrategy::new(DbminSizing::Tuned, 100);
        // A set 10x the pool would block adaptive DBMIN; tuned caps it.
        assert!(s.update_set(SetId(1), seq_read_profile(1000)).is_ok());
    }

    #[test]
    fn sequential_sets_evict_mru_within_set() {
        let mut s = DbminStrategy::new(DbminSizing::Fixed(1), 128);
        s.update_set(SetId(1), seq_read_profile(4)).unwrap();
        let pages = vec![pv(1, 0, 10, true), pv(1, 1, 90, true)];
        let victims = s.choose_victims(&pages, 100);
        assert_eq!(victims, vec![PageId::new(SetId(1), 1)]);
    }

    #[test]
    fn random_sets_evict_lru_within_set() {
        let mut s = DbminStrategy::new(DbminSizing::Fixed(1), 1000);
        s.update_set(
            SetId(1),
            SetProfile {
                reading: Some(ReadPattern::Random),
                estimated_pages: Some(4),
                ..Default::default()
            },
        )
        .unwrap();
        let pages = vec![pv(1, 0, 10, true), pv(1, 1, 90, true)];
        let victims = s.choose_victims(&pages, 100);
        assert_eq!(victims, vec![PageId::new(SetId(1), 0)]);
    }

    #[test]
    fn removing_a_set_unblocks_admission() {
        let mut s = DbminStrategy::new(DbminSizing::Adaptive, 100);
        s.update_set(SetId(1), seq_read_profile(80)).unwrap();
        assert!(s.update_set(SetId(2), seq_read_profile(80)).is_err());
        s.remove_set(SetId(2));
        s.remove_set(SetId(1));
        assert!(s.update_set(SetId(3), seq_read_profile(80)).is_ok());
    }

    #[test]
    fn never_selects_pinned_pages() {
        let mut s = DbminStrategy::new(DbminSizing::Fixed(1), 128);
        s.update_set(SetId(1), SetProfile::default()).unwrap();
        let pages = vec![pv(1, 0, 10, false), pv(1, 1, 20, true)];
        let victims = s.choose_victims(&pages, 100);
        assert_eq!(victims, vec![PageId::new(SetId(1), 1)]);
    }
}
