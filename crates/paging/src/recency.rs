//! Plain recency-based baselines: global LRU and global MRU.
//!
//! These are the comparison strategies of Figs. 3, 9 and 10. Per §9.2.1:
//! "In our implementation, 10 % of most recently used pages will be evicted
//! at each eviction for MRU, and at most 10 % of least recently used pages
//! will be evicted for LRU." Both ignore locality-set structure entirely —
//! that blindness is exactly what the paper's data-aware policy fixes.

use crate::{PageView, PagingStrategy, SetProfile, EVICT_FRACTION};
use pangea_common::{PageId, Result, SetId, Tick};

fn batch_size(total_resident: usize) -> usize {
    ((total_resident as f64 * EVICT_FRACTION).ceil() as usize).max(1)
}

/// Global least-recently-used eviction in 10 % batches.
#[derive(Debug, Default)]
pub struct LruStrategy;

impl LruStrategy {
    /// Creates the strategy.
    pub fn new() -> Self {
        Self
    }
}

impl PagingStrategy for LruStrategy {
    fn update_set(&mut self, _set: SetId, _profile: SetProfile) -> Result<()> {
        Ok(())
    }

    fn remove_set(&mut self, _set: SetId) {}

    fn on_page_cached(&mut self, _page: PageId, _tick: Tick) {}

    fn on_page_accessed(&mut self, _page: PageId, _tick: Tick) {}

    fn on_page_evicted(&mut self, _page: PageId) {}

    fn choose_victims(&mut self, pages: &[PageView], _now: Tick) -> Vec<PageId> {
        let mut evictable: Vec<&PageView> = pages.iter().filter(|p| p.evictable).collect();
        evictable.sort_by_key(|p| p.last_access);
        evictable
            .into_iter()
            .take(batch_size(pages.len()))
            .map(|p| p.page)
            .collect()
    }

    fn name(&self) -> &'static str {
        "lru"
    }
}

/// Global most-recently-used eviction in 10 % batches.
#[derive(Debug, Default)]
pub struct MruStrategy;

impl MruStrategy {
    /// Creates the strategy.
    pub fn new() -> Self {
        Self
    }
}

impl PagingStrategy for MruStrategy {
    fn update_set(&mut self, _set: SetId, _profile: SetProfile) -> Result<()> {
        Ok(())
    }

    fn remove_set(&mut self, _set: SetId) {}

    fn on_page_cached(&mut self, _page: PageId, _tick: Tick) {}

    fn on_page_accessed(&mut self, _page: PageId, _tick: Tick) {}

    fn on_page_evicted(&mut self, _page: PageId) {}

    fn choose_victims(&mut self, pages: &[PageView], _now: Tick) -> Vec<PageId> {
        let mut evictable: Vec<&PageView> = pages.iter().filter(|p| p.evictable).collect();
        evictable.sort_by_key(|p| std::cmp::Reverse(p.last_access));
        evictable
            .into_iter()
            .take(batch_size(pages.len()))
            .map(|p| p.page)
            .collect()
    }

    fn name(&self) -> &'static str {
        "mru"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pv(set: u64, num: u64, last: Tick, evictable: bool) -> PageView {
        PageView {
            page: PageId::new(SetId(set), num),
            last_access: last,
            evictable,
            dirty: false,
        }
    }

    #[test]
    fn lru_takes_stalest_first() {
        let mut s = LruStrategy::new();
        let pages = vec![pv(1, 0, 30, true), pv(1, 1, 10, true), pv(1, 2, 20, true)];
        let victims = s.choose_victims(&pages, 100);
        assert_eq!(victims[0], PageId::new(SetId(1), 1));
    }

    #[test]
    fn mru_takes_freshest_first() {
        let mut s = MruStrategy::new();
        let pages = vec![pv(1, 0, 30, true), pv(1, 1, 10, true), pv(1, 2, 20, true)];
        let victims = s.choose_victims(&pages, 100);
        assert_eq!(victims[0], PageId::new(SetId(1), 0));
    }

    #[test]
    fn both_evict_ten_percent_batches() {
        let pages: Vec<PageView> = (0..50).map(|i| pv(1, i, i, true)).collect();
        assert_eq!(LruStrategy::new().choose_victims(&pages, 100).len(), 5);
        assert_eq!(MruStrategy::new().choose_victims(&pages, 100).len(), 5);
    }

    #[test]
    fn pinned_pages_skipped_even_if_best_candidates() {
        let mut s = LruStrategy::new();
        let pages = vec![pv(1, 0, 1, false), pv(1, 1, 2, true)];
        let victims = s.choose_victims(&pages, 100);
        assert_eq!(victims, vec![PageId::new(SetId(1), 1)]);
    }

    #[test]
    fn cross_set_blindness_is_preserved() {
        // LRU/MRU must ignore set boundaries: a batch may span sets.
        let mut s = LruStrategy::new();
        let pages: Vec<PageView> = (0..20).map(|i| pv(i % 3, i, i, true)).collect();
        let victims = s.choose_victims(&pages, 100);
        let sets: std::collections::HashSet<SetId> = victims.iter().map(|p| p.set).collect();
        assert!(sets.len() > 1, "global LRU spans locality sets");
    }
}
