//! The paper's data-aware page replacement strategy (§6).
//!
//! Victim selection happens in two steps:
//!
//! 1. **Pick the victim locality set.** If any set has ended its lifetime,
//!    those sets win immediately (their pages can never be useful again).
//!    Otherwise every set nominates its next victim page according to its
//!    within-set policy (MRU for sequential patterns, LRU for random ones),
//!    and the set whose nominee has the *lowest expected eviction cost*
//!    `cw + p_reuse·cr` is chosen.
//! 2. **Evict a batch from that set.** One page if the set is being
//!    written (`write` / `read-and-write`); 10 % of its resident pages if
//!    it is read-only — the paper's observation that well-behaved read
//!    patterns warrant larger evictions to overlap I/O with computation.

use crate::cost::{eviction_cost, CostParams};
use crate::{PageView, PagingStrategy, SetProfile, WithinSetPolicy};
use pangea_common::{FxHashMap, PageId, Result, SetId, Tick};

/// See module docs.
#[derive(Debug, Default)]
pub struct DataAwareStrategy {
    profiles: FxHashMap<SetId, SetProfile>,
}

impl DataAwareStrategy {
    /// Creates the strategy with no registered sets.
    pub fn new() -> Self {
        Self::default()
    }

    fn profile_of(&self, set: SetId) -> SetProfile {
        self.profiles.get(&set).copied().unwrap_or_default()
    }

    /// Orders one set's evictable pages best-victim-first under `policy`.
    fn order_victims(mut pages: Vec<&PageView>, policy: WithinSetPolicy) -> Vec<PageId> {
        match policy {
            WithinSetPolicy::Lru => pages.sort_by_key(|p| p.last_access),
            WithinSetPolicy::Mru => pages.sort_by_key(|p| std::cmp::Reverse(p.last_access)),
        }
        pages.into_iter().map(|p| p.page).collect()
    }
}

impl PagingStrategy for DataAwareStrategy {
    fn update_set(&mut self, set: SetId, profile: SetProfile) -> Result<()> {
        self.profiles.insert(set, profile);
        Ok(())
    }

    fn remove_set(&mut self, set: SetId) {
        self.profiles.remove(&set);
    }

    // The data-aware strategy works entirely from the residency view passed
    // to `choose_victims` (recency lives in the buffer pool frames), so the
    // per-page notifications need no bookkeeping here.
    fn on_page_cached(&mut self, _page: PageId, _tick: Tick) {}

    fn on_page_accessed(&mut self, _page: PageId, _tick: Tick) {}

    fn on_page_evicted(&mut self, _page: PageId) {}

    fn choose_victims(&mut self, pages: &[PageView], now: Tick) -> Vec<PageId> {
        // Group evictable pages per set.
        let mut by_set: FxHashMap<SetId, Vec<&PageView>> = FxHashMap::default();
        let mut resident_count: FxHashMap<SetId, usize> = FxHashMap::default();
        for pv in pages {
            *resident_count.entry(pv.page.set).or_default() += 1;
            if pv.evictable {
                by_set.entry(pv.page.set).or_default().push(pv);
            }
        }
        if by_set.is_empty() {
            return Vec::new();
        }

        // Step 0: lifetime-ended sets are always evicted first (§6), still
        // ordered by minimum eviction cost among them.
        let mut candidates: Vec<(SetId, f64)> = Vec::new();
        let mut expired: Vec<(SetId, f64)> = Vec::new();
        for (&set, cands) in &by_set {
            let profile = self.profile_of(set);
            let policy = profile.within_set_policy();
            // The set's nominee is its best victim under the set policy.
            let nominee = match policy {
                WithinSetPolicy::Lru => cands.iter().min_by_key(|p| p.last_access),
                WithinSetPolicy::Mru => cands.iter().max_by_key(|p| p.last_access),
            }
            .expect("by_set entries are non-empty");
            let cost = eviction_cost(
                &profile,
                CostParams::at(now, nominee.last_access, nominee.dirty),
            );
            if profile.lifetime_ended {
                expired.push((set, cost));
            } else {
                candidates.push((set, cost));
            }
        }
        let pick_from = if expired.is_empty() {
            &mut candidates
        } else {
            &mut expired
        };
        // Tie-break deterministically by set id so tests are stable.
        pick_from.sort_by(|a, b| {
            a.1.partial_cmp(&b.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        let victim_set = pick_from[0].0;

        let profile = self.profile_of(victim_set);
        let resident = resident_count.get(&victim_set).copied().unwrap_or(0);
        let batch = profile.evict_batch(resident);
        let ordered = Self::order_victims(
            by_set.remove(&victim_set).expect("victim set present"),
            profile.within_set_policy(),
        );
        ordered.into_iter().take(batch).collect()
    }

    fn name(&self) -> &'static str {
        "data-aware"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CurrentOp, Durability, ReadPattern, WritePattern};

    fn pv(set: u64, num: u64, last: Tick, evictable: bool, dirty: bool) -> PageView {
        PageView {
            page: PageId::new(SetId(set), num),
            last_access: last,
            evictable,
            dirty,
        }
    }

    #[test]
    fn never_selects_pinned_pages() {
        let mut s = DataAwareStrategy::new();
        let pages = vec![pv(1, 0, 10, false, false), pv(1, 1, 20, true, false)];
        let victims = s.choose_victims(&pages, 100);
        assert_eq!(victims, vec![PageId::new(SetId(1), 1)]);
    }

    #[test]
    fn empty_when_nothing_evictable() {
        let mut s = DataAwareStrategy::new();
        let pages = vec![pv(1, 0, 10, false, false)];
        assert!(s.choose_victims(&pages, 100).is_empty());
        assert!(s.choose_victims(&[], 100).is_empty());
    }

    #[test]
    fn lifetime_ended_sets_evicted_first() {
        let mut s = DataAwareStrategy::new();
        // Set 1: alive write-back (expensive to evict? doesn't matter).
        s.update_set(
            SetId(1),
            SetProfile {
                durability: Durability::WriteBack,
                ..Default::default()
            },
        )
        .unwrap();
        // Set 2: lifetime ended.
        s.update_set(
            SetId(2),
            SetProfile {
                lifetime_ended: true,
                ..Default::default()
            },
        )
        .unwrap();
        // Set 2's page was accessed *very* recently (normally protected).
        let pages = vec![pv(1, 0, 1, true, false), pv(2, 0, 99, true, true)];
        let victims = s.choose_victims(&pages, 100);
        assert_eq!(victims[0].set, SetId(2));
    }

    #[test]
    fn cheaper_set_loses_its_page_first() {
        let mut s = DataAwareStrategy::new();
        // Write-through user data: cw = 0.
        s.update_set(
            SetId(1),
            SetProfile {
                durability: Durability::WriteThrough,
                ..Default::default()
            },
        )
        .unwrap();
        // Write-back job data with dirty pages: cw = vw > 0.
        s.update_set(
            SetId(2),
            SetProfile {
                durability: Durability::WriteBack,
                ..Default::default()
            },
        )
        .unwrap();
        // Same recency; only durability differs.
        let pages = vec![pv(1, 0, 50, true, true), pv(2, 0, 50, true, true)];
        let victims = s.choose_victims(&pages, 100);
        assert_eq!(
            victims[0].set,
            SetId(1),
            "write-through page is free to evict; write-back costs a spill"
        );
    }

    #[test]
    fn sequential_set_evicts_mru_random_set_evicts_lru() {
        let mut s = DataAwareStrategy::new();
        s.update_set(
            SetId(1),
            SetProfile {
                writing: Some(WritePattern::Sequential),
                op: CurrentOp::Write,
                ..Default::default()
            },
        )
        .unwrap();
        let pages = vec![pv(1, 0, 10, true, false), pv(1, 1, 90, true, false)];
        let victims = s.choose_victims(&pages, 100);
        assert_eq!(victims, vec![PageId::new(SetId(1), 1)], "MRU in seq set");

        let mut s = DataAwareStrategy::new();
        s.update_set(
            SetId(1),
            SetProfile {
                reading: Some(ReadPattern::Random),
                op: CurrentOp::Write,
                ..Default::default()
            },
        )
        .unwrap();
        let victims = s.choose_victims(&pages, 100);
        assert_eq!(victims, vec![PageId::new(SetId(1), 0)], "LRU in random set");
    }

    #[test]
    fn writing_sets_lose_one_page_reading_sets_ten_percent() {
        let mk_pages = || {
            (0..30)
                .map(|i| pv(1, i, i, true, false))
                .collect::<Vec<_>>()
        };
        let mut s = DataAwareStrategy::new();
        s.update_set(
            SetId(1),
            SetProfile {
                op: CurrentOp::Write,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(s.choose_victims(&mk_pages(), 100).len(), 1);

        let mut s = DataAwareStrategy::new();
        s.update_set(
            SetId(1),
            SetProfile {
                op: CurrentOp::Read,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(s.choose_victims(&mk_pages(), 100).len(), 3, "10 % of 30");
    }

    #[test]
    fn recently_read_set_survives_over_stale_set() {
        let mut s = DataAwareStrategy::new();
        s.update_set(SetId(1), SetProfile::default()).unwrap();
        s.update_set(SetId(2), SetProfile::default()).unwrap();
        // Set 1 stale, set 2 hot.
        let pages = vec![pv(1, 0, 5, true, false), pv(2, 0, 999, true, false)];
        let victims = s.choose_victims(&pages, 1000);
        assert_eq!(victims[0].set, SetId(1));
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]
            #[test]
            fn victims_are_evictable_and_from_one_set(
                raw in proptest::collection::vec(
                    (0u64..4, 0u64..64, 0u64..1000, any::<bool>(), any::<bool>()),
                    1..80
                )
            ) {
                let mut s = DataAwareStrategy::new();
                let mut pages: Vec<PageView> = Vec::new();
                let mut seen = std::collections::HashSet::new();
                for (set, num, last, evictable, dirty) in raw {
                    if seen.insert((set, num)) {
                        pages.push(pv(set, num, last, evictable, dirty));
                    }
                }
                let victims = s.choose_victims(&pages, 2000);
                let any_evictable = pages.iter().any(|p| p.evictable);
                prop_assert_eq!(victims.is_empty(), !any_evictable);
                if let Some(first) = victims.first() {
                    for v in &victims {
                        prop_assert_eq!(v.set, first.set, "batch stays in one set");
                        let view = pages.iter().find(|p| p.page == *v).unwrap();
                        prop_assert!(view.evictable, "never a pinned page");
                    }
                }
            }
        }
    }
}
