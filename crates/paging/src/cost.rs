//! The data-aware eviction cost model (paper §6).
//!
//! The expected cost of evicting a page is
//!
//! ```text
//! cost = cw + p_reuse · cr
//! ```
//!
//! * `cw = d · vw` — the write-out cost: `vw` is the profiled time to write
//!   the page to disk; `d = 1` for write-back data (evicting it forces a
//!   spill) and `d = 0` for write-through data (already persisted).
//!   Refinement kept from the paper's intent: a write-back page that is
//!   *clean* (already spilled once and unmodified since) also costs 0 to
//!   write out, so `d` additionally requires the dirty bit.
//! * `cr = vr · wr` — the re-read cost if the page is used again: `vr` is
//!   the profiled page read time and `wr ≥ 1` penalizes random-read sets,
//!   whose spilled pages need hash-map reconstruction and re-aggregation.
//! * `p_reuse = 1 − e^(−λt)` — the probability the page is referenced in
//!   the next `t` ticks, modelling the next reference as a Poisson arrival
//!   with rate `λ = 1/(t_now − t_ref)`, the inverse time-since-last-
//!   reference (the paper's chosen estimator, footnote 2).

use crate::{Durability, SetProfile};
use pangea_common::Tick;

/// Inputs to [`eviction_cost`] for one candidate victim page.
#[derive(Debug, Clone, Copy)]
pub struct CostParams {
    /// Current logical time.
    pub now: Tick,
    /// The candidate's last access tick.
    pub last_access: Tick,
    /// Whether the candidate currently holds unflushed modifications.
    pub dirty: bool,
    /// Horizon `t` (ticks) over which reuse probability is evaluated.
    pub horizon: f64,
}

impl CostParams {
    /// Convenience constructor with the default horizon of one tick (the
    /// paper notes that `t = 1` makes the model a λ-weighting of `cr`).
    pub fn at(now: Tick, last_access: Tick, dirty: bool) -> Self {
        Self {
            now,
            last_access,
            dirty,
            horizon: 1.0,
        }
    }
}

/// Reference-rate estimate `λ = 1/(t_now − t_ref)` (paper §6).
///
/// A page accessed at the current tick gets `λ = 1` (the maximum: the
/// elapsed time is clamped to one tick, since the clock advances on every
/// access and equal ticks mean "just now").
#[inline]
pub fn reference_rate(now: Tick, last_access: Tick) -> f64 {
    let dt = now.saturating_sub(last_access).max(1);
    1.0 / dt as f64
}

/// Reuse probability `p_reuse = 1 − e^(−λt)` (paper §6).
#[inline]
pub fn reuse_probability(now: Tick, last_access: Tick, horizon: f64) -> f64 {
    let lambda = reference_rate(now, last_access);
    1.0 - (-lambda * horizon).exp()
}

/// Expected cost of evicting one candidate page of the given locality set.
pub fn eviction_cost(profile: &SetProfile, p: CostParams) -> f64 {
    let d = match profile.durability {
        Durability::WriteBack if p.dirty => 1.0,
        _ => 0.0,
    };
    let cw = d * profile.write_time;
    let cr = profile.read_time * profile.read_penalty();
    cw + reuse_probability(p.now, p.last_access, p.horizon) * cr
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ReadPattern;

    fn wb() -> SetProfile {
        SetProfile {
            durability: Durability::WriteBack,
            ..Default::default()
        }
    }

    fn wt() -> SetProfile {
        SetProfile {
            durability: Durability::WriteThrough,
            ..Default::default()
        }
    }

    #[test]
    fn reuse_probability_decays_with_staleness() {
        let fresh = reuse_probability(100, 99, 1.0);
        let stale = reuse_probability(100, 10, 1.0);
        assert!(fresh > stale);
        assert!((0.0..=1.0).contains(&fresh));
        assert!((0.0..=1.0).contains(&stale));
    }

    #[test]
    fn just_accessed_pages_have_max_lambda() {
        assert_eq!(reference_rate(5, 5), 1.0);
        assert_eq!(reference_rate(10, 9), 1.0);
        assert_eq!(reference_rate(12, 9), 1.0 / 3.0);
    }

    #[test]
    fn dirty_write_back_costs_more_than_write_through() {
        let p = CostParams::at(100, 50, true);
        assert!(
            eviction_cost(&wb(), p) > eviction_cost(&wt(), p),
            "evicting dirty write-back data incurs the extra spill cost"
        );
    }

    #[test]
    fn clean_write_back_has_no_write_cost() {
        let dirty = CostParams::at(100, 50, true);
        let clean = CostParams::at(100, 50, false);
        assert!(eviction_cost(&wb(), dirty) > eviction_cost(&wb(), clean));
        assert_eq!(
            eviction_cost(&wb(), clean),
            eviction_cost(&wt(), clean),
            "already-spilled write-back pages cost the same as write-through"
        );
    }

    #[test]
    fn random_read_sets_cost_more_to_evict() {
        let mut rnd = wt();
        rnd.reading = Some(ReadPattern::Random);
        let mut seq = wt();
        seq.reading = Some(ReadPattern::Sequential);
        let p = CostParams::at(100, 99, false);
        assert!(eviction_cost(&rnd, p) > eviction_cost(&seq, p));
    }

    #[test]
    fn recently_used_pages_cost_more_than_stale_ones() {
        let prof = wt();
        let recent = eviction_cost(&prof, CostParams::at(1000, 999, false));
        let stale = eviction_cost(&prof, CostParams::at(1000, 1, false));
        assert!(recent > stale);
    }

    #[test]
    fn linear_approximation_matches_small_lambda() {
        // Paper §6 "A note on rate vs. probability": for t=1 and small λ,
        // p_reuse ≈ λ. Check the first-order agreement.
        let now = 10_000;
        let last = 10; // λ ≈ 1e-4
        let lambda = reference_rate(now, last);
        let p = reuse_probability(now, last, 1.0);
        assert!((p - lambda).abs() < lambda * 0.01);
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn probability_bounded_and_monotone(
                now in 1u64..1_000_000,
                d1 in 1u64..1000,
                d2 in 1u64..1000,
            ) {
                let (near, far) = if d1 < d2 { (d1, d2) } else { (d2, d1) };
                let p_near = reuse_probability(now + far, now + far - near, 1.0);
                let p_far = reuse_probability(now + far, now, 1.0);
                prop_assert!((0.0..=1.0).contains(&p_near));
                prop_assert!((0.0..=1.0).contains(&p_far));
                prop_assert!(p_near >= p_far);
            }

            #[test]
            fn cost_is_nonnegative(
                now in 0u64..1_000_000,
                last in 0u64..1_000_000,
                dirty: bool,
                rt in 0.0f64..100.0,
                wt in 0.0f64..100.0,
            ) {
                let prof = SetProfile {
                    durability: Durability::WriteBack,
                    read_time: rt,
                    write_time: wt,
                    ..Default::default()
                };
                let c = eviction_cost(&prof, CostParams::at(now, last, dirty));
                prop_assert!(c >= 0.0);
                prop_assert!(c.is_finite());
            }
        }
    }
}
