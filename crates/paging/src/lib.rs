//! # pangea-paging
//!
//! Page-replacement policy for the unified buffer pool (paper §6), plus the
//! baseline strategies the paper evaluates against (Figs. 3, 9, 10):
//!
//! * [`DataAwareStrategy`] — the paper's contribution. Locality sets are
//!   prioritized by the expected cost of evicting their next victim,
//!   `cw + p_reuse · cr`, with the victim-within-set chosen by a policy
//!   matched to the set's access pattern (MRU for sequential patterns, LRU
//!   for random patterns). Lifetime-ended sets are always evicted first.
//! * [`LruStrategy`] / [`MruStrategy`] — global recency-based baselines,
//!   evicting 10 % batches as described in §9.2.1.
//! * [`DbminStrategy`] — DBMIN (Chou & DeWitt 1986) with the three sizing
//!   modes from Fig. 3 (`adaptive`, fixed 1, fixed 1000) plus the `tuned`
//!   mode of Fig. 9 (sizes capped at memory so it does not block).
//!
//! The strategies are *pure policy*: they observe page lifecycle events
//! (cached / accessed / evicted) and, on demand, name victim pages. The
//! storage node in `pangea-core` owns the mechanism (actually evicting and
//! flushing pages).

pub mod cost;
pub mod data_aware;
pub mod dbmin;
pub mod recency;

pub use cost::{eviction_cost, reuse_probability, CostParams};
pub use data_aware::DataAwareStrategy;
pub use dbmin::{DbminSizing, DbminStrategy};
pub use recency::{LruStrategy, MruStrategy};

use pangea_common::{PageId, Result, SetId, Tick};

/// Fraction of a read-only locality set evicted per eviction round
/// (paper §6: "For read-only locality sets, 10 % of the locality set is
/// evicted"). Also the batch fraction of the plain LRU/MRU baselines
/// (§9.2.1).
pub const EVICT_FRACTION: f64 = 0.10;

/// Durability requirement of a locality set (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Durability {
    /// Persist each page as soon as it is fully written.
    WriteThrough,
    /// Keep pages in memory; spill only on eviction.
    WriteBack,
}

/// Writing pattern of a locality set (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WritePattern {
    /// Immutable data written page-by-page by one writer.
    Sequential,
    /// Multiple concurrent streams into one page (shuffle).
    Concurrent,
    /// Dynamic allocate/modify/free within pages (hash, join).
    RandomMutable,
}

/// Reading pattern of a locality set (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReadPattern {
    /// Full scans.
    Sequential,
    /// Point accesses (hash probes).
    Random,
}

/// What the application is currently doing with the set (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CurrentOp {
    /// Being scanned.
    Read,
    /// Being produced.
    Write,
    /// Both (e.g. in-place aggregation).
    ReadAndWrite,
    /// Not in active use.
    #[default]
    None,
}

/// Victim-selection order within one locality set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WithinSetPolicy {
    /// Evict least-recently-used first.
    Lru,
    /// Evict most-recently-used first.
    Mru,
}

/// The slice of locality-set metadata the paging policies consume.
///
/// `pangea-core` derives this from the full locality-set attributes
/// (Table 1) and keeps it updated as services run.
#[derive(Debug, Clone, Copy)]
pub struct SetProfile {
    /// Durability requirement.
    pub durability: Durability,
    /// Writing pattern, when known.
    pub writing: Option<WritePattern>,
    /// Reading pattern, when known.
    pub reading: Option<ReadPattern>,
    /// Current operation.
    pub op: CurrentOp,
    /// True once the application declared the set's lifetime over;
    /// such sets are always evicted first (paper §6).
    pub lifetime_ended: bool,
    /// Profiled time to read one page back from disk (`vr`), in cost units.
    pub read_time: f64,
    /// Profiled time to write one page to disk (`vw`), in cost units.
    pub write_time: f64,
    /// Estimated total pages of the set, when the application knows it
    /// (used by DBMIN's adaptive sizing; Pangea itself never requires it).
    pub estimated_pages: Option<u64>,
}

impl Default for SetProfile {
    fn default() -> Self {
        Self {
            durability: Durability::WriteThrough,
            writing: None,
            reading: None,
            op: CurrentOp::None,
            lifetime_ended: false,
            read_time: 1.0,
            write_time: 1.0,
            estimated_pages: None,
        }
    }
}

impl SetProfile {
    /// Paging policy matched to the set's access pattern (paper §6):
    /// MRU for `sequential-write`, `concurrent-write`, `sequential-read`;
    /// LRU for `random-mutable-write`, `random-read`.
    pub fn within_set_policy(&self) -> WithinSetPolicy {
        let random = matches!(self.writing, Some(WritePattern::RandomMutable))
            || matches!(self.reading, Some(ReadPattern::Random));
        if random {
            WithinSetPolicy::Lru
        } else {
            WithinSetPolicy::Mru
        }
    }

    /// Read-pattern penalty `wr` (paper §6): random-read spills need hash
    /// reconstruction and re-aggregation on reload, so their re-read is
    /// costlier than a plain sequential page read.
    pub fn read_penalty(&self) -> f64 {
        match self.reading {
            Some(ReadPattern::Random) => 3.0,
            _ => 1.0,
        }
    }

    /// Number of pages to evict from this set per round (paper §6): one for
    /// sets being written, 10 % (at least one) for read-only sets.
    pub fn evict_batch(&self, resident_pages: usize) -> usize {
        match self.op {
            CurrentOp::Write | CurrentOp::ReadAndWrite => 1,
            CurrentOp::Read | CurrentOp::None => {
                ((resident_pages as f64 * EVICT_FRACTION).ceil() as usize).max(1)
            }
        }
    }
}

/// Everything a strategy may inspect about one resident page when choosing
/// victims.
#[derive(Debug, Clone, Copy)]
pub struct PageView {
    /// The page.
    pub page: PageId,
    /// Last access tick.
    pub last_access: Tick,
    /// True when the page can be evicted right now (pin count is zero).
    pub evictable: bool,
    /// True when eviction would require a write-back flush.
    pub dirty: bool,
}

/// A page-replacement strategy over one node's buffer pool.
///
/// Strategies are driven by the storage node: lifecycle notifications keep
/// the strategy's books current; [`PagingStrategy::choose_victims`] names
/// pages to evict when an allocation fails.
pub trait PagingStrategy: Send + std::fmt::Debug {
    /// A new locality set was registered (or its profile changed).
    fn update_set(&mut self, set: SetId, profile: SetProfile) -> Result<()>;

    /// A locality set was removed entirely.
    fn remove_set(&mut self, set: SetId);

    /// A page became resident in the pool.
    fn on_page_cached(&mut self, page: PageId, tick: Tick);

    /// A resident page was accessed.
    fn on_page_accessed(&mut self, page: PageId, tick: Tick);

    /// A page left the pool (evicted or dropped).
    fn on_page_evicted(&mut self, page: PageId);

    /// Names pages to evict, best victims first. `pages` views the current
    /// residency state (including pin and dirty bits); `now` is the current
    /// clock tick. Implementations must only return evictable pages, and at
    /// least one when any page is evictable.
    fn choose_victims(&mut self, pages: &[PageView], now: Tick) -> Vec<PageId>;

    /// Human-readable strategy name for benchmark output.
    fn name(&self) -> &'static str;
}

/// Selects a strategy by benchmark name.
///
/// Accepted names: `data-aware`, `lru`, `mru`, `dbmin-adaptive`, `dbmin-1`,
/// `dbmin-1000`, `dbmin-tuned` (matching Fig. 3 / Fig. 9 labels).
pub fn strategy_by_name(name: &str, pool_capacity_pages: u64) -> Result<Box<dyn PagingStrategy>> {
    match name {
        "data-aware" => Ok(Box::new(DataAwareStrategy::new())),
        "lru" => Ok(Box::new(LruStrategy::new())),
        "mru" => Ok(Box::new(MruStrategy::new())),
        "dbmin-adaptive" => Ok(Box::new(DbminStrategy::new(
            DbminSizing::Adaptive,
            pool_capacity_pages,
        ))),
        "dbmin-1" => Ok(Box::new(DbminStrategy::new(
            DbminSizing::Fixed(1),
            pool_capacity_pages,
        ))),
        "dbmin-1000" => Ok(Box::new(DbminStrategy::new(
            DbminSizing::Fixed(1000),
            pool_capacity_pages,
        ))),
        "dbmin-tuned" => Ok(Box::new(DbminStrategy::new(
            DbminSizing::Tuned,
            pool_capacity_pages,
        ))),
        other => Err(pangea_common::PangeaError::config(format!(
            "unknown paging strategy '{other}'"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn within_set_policy_matches_paper_table() {
        let mut p = SetProfile {
            writing: Some(WritePattern::Sequential),
            ..Default::default()
        };
        assert_eq!(p.within_set_policy(), WithinSetPolicy::Mru);
        p.writing = Some(WritePattern::Concurrent);
        assert_eq!(p.within_set_policy(), WithinSetPolicy::Mru);
        p.writing = None;
        p.reading = Some(ReadPattern::Sequential);
        assert_eq!(p.within_set_policy(), WithinSetPolicy::Mru);
        p.reading = Some(ReadPattern::Random);
        assert_eq!(p.within_set_policy(), WithinSetPolicy::Lru);
        p.reading = None;
        p.writing = Some(WritePattern::RandomMutable);
        assert_eq!(p.within_set_policy(), WithinSetPolicy::Lru);
    }

    #[test]
    fn evict_batch_is_one_for_writers_and_ten_percent_for_readers() {
        let mut p = SetProfile {
            op: CurrentOp::Write,
            ..Default::default()
        };
        assert_eq!(p.evict_batch(100), 1);
        p.op = CurrentOp::ReadAndWrite;
        assert_eq!(p.evict_batch(100), 1);
        p.op = CurrentOp::Read;
        assert_eq!(p.evict_batch(100), 10);
        assert_eq!(p.evict_batch(5), 1, "batch is at least one page");
        assert_eq!(p.evict_batch(95), 10, "ceil of 10 %");
    }

    #[test]
    fn random_read_sets_pay_a_reload_penalty() {
        let seq = SetProfile {
            reading: Some(ReadPattern::Sequential),
            ..Default::default()
        };
        let rnd = SetProfile {
            reading: Some(ReadPattern::Random),
            ..Default::default()
        };
        assert_eq!(seq.read_penalty(), 1.0);
        assert!(rnd.read_penalty() > 1.0);
    }

    #[test]
    fn strategy_factory_knows_all_benchmark_names() {
        for name in [
            "data-aware",
            "lru",
            "mru",
            "dbmin-adaptive",
            "dbmin-1",
            "dbmin-1000",
            "dbmin-tuned",
        ] {
            let s = strategy_by_name(name, 128).unwrap();
            assert!(!s.name().is_empty());
        }
        assert!(strategy_by_name("arc", 128).is_err());
    }
}
