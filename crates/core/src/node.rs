//! The per-node storage engine: one unified buffer pool, one multi-disk
//! file system, one paging strategy — serving every locality set on the
//! node (paper §3.3 components 1–3).
//!
//! The node is the *mechanism* half of paging: when a page allocation
//! fails it snapshots the pool's residency state, asks the configured
//! [`PagingStrategy`] for victims, evicts them (flushing dirty write-back
//! pages whose lifetime has not ended — the paper's "spill"), and retries.

use crate::attributes::{SetAttributes, SetOptions};
use crate::set::LocalitySet;
use pangea_common::{FxHashMap, IoStats, PageId, PageNum, PangeaError, Result, SetId};
use pangea_paging::{strategy_by_name, CurrentOp, Durability, PageView, PagingStrategy};
use pangea_storage::{BufferPool, BufferPoolConfig, DiskConfig, DiskManager, PagePin, PagedFile};
use parking_lot::{Mutex, RwLock};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Eviction rounds attempted before an allocation is declared out of
/// memory. Each round can free many pages, so this bounds pathological
/// strategies, not normal operation.
const MAX_EVICTION_ROUNDS: usize = 256;

/// Storage-node construction parameters.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// Unified buffer pool capacity in bytes.
    pub pool_capacity: usize,
    /// Pool allocator: `"tlsf"` (default) or `"slab"`.
    pub pool_allocator: String,
    /// Root directory for this node's simulated disks.
    pub data_dir: PathBuf,
    /// Number of disk drives to stripe locality-set files over.
    pub num_disks: usize,
    /// Optional per-disk bandwidth throttle (bytes/second). `None`
    /// disables throttling (unit tests); benches set it so wall-clock
    /// shapes track I/O volume.
    pub disk_bandwidth: Option<u64>,
    /// Paging strategy name (see [`pangea_paging::strategy_by_name`]).
    pub strategy: String,
    /// Default page size for new locality sets.
    pub default_page_size: usize,
}

impl NodeConfig {
    /// A node rooted at `dir` with sensible defaults: 64 MB pool, one
    /// disk, unthrottled, data-aware paging, 256 KB pages.
    pub fn new(dir: impl AsRef<Path>) -> Self {
        Self {
            pool_capacity: 64 * pangea_common::MB,
            pool_allocator: "tlsf".into(),
            data_dir: dir.as_ref().to_path_buf(),
            num_disks: 1,
            disk_bandwidth: None,
            strategy: "data-aware".into(),
            default_page_size: 256 * pangea_common::KB,
        }
    }

    /// Overrides the buffer pool capacity.
    pub fn with_pool_capacity(mut self, bytes: usize) -> Self {
        self.pool_capacity = bytes;
        self
    }

    /// Overrides the number of disks.
    pub fn with_disks(mut self, n: usize) -> Self {
        self.num_disks = n;
        self
    }

    /// Sets the per-disk bandwidth throttle.
    pub fn with_disk_bandwidth(mut self, bytes_per_sec: u64) -> Self {
        self.disk_bandwidth = Some(bytes_per_sec);
        self
    }

    /// Overrides the paging strategy.
    pub fn with_strategy(mut self, name: &str) -> Self {
        self.strategy = name.to_string();
        self
    }

    /// Overrides the default page size.
    pub fn with_page_size(mut self, bytes: usize) -> Self {
        self.default_page_size = bytes;
        self
    }

    /// Switches the pool to the slab allocator.
    pub fn with_slab_allocator(mut self) -> Self {
        self.pool_allocator = "slab".into();
        self
    }
}

/// Per-set state owned by the node.
#[derive(Debug)]
pub(crate) struct SetState {
    pub(crate) id: SetId,
    pub(crate) name: String,
    pub(crate) page_size: usize,
    pub(crate) attrs: RwLock<SetAttributes>,
    pub(crate) file: PagedFile,
    /// Next page ordinal to allocate (pages are dense `0..next_page`).
    pub(crate) next_page: AtomicU64,
}

impl SetState {
    pub(crate) fn attrs(&self) -> SetAttributes {
        *self.attrs.read()
    }
}

#[derive(Debug)]
pub(crate) struct NodeInner {
    pub(crate) pool: BufferPool,
    pub(crate) disks: Arc<DiskManager>,
    strategy: Mutex<Box<dyn PagingStrategy>>,
    pub(crate) sets: RwLock<FxHashMap<SetId, Arc<SetState>>>,
    names: Mutex<FxHashMap<String, SetId>>,
    next_set: AtomicU64,
    default_page_size: usize,
    paging: PagingCounters,
}

/// Node-level paging counters, shared by every locality set: a pin that
/// found its page resident (hit), a pin that had to read the disk
/// (miss), and bytes written out by spills and dirty-page eviction
/// flushes. Evictions themselves are counted by the pool's own stats.
#[derive(Debug, Default)]
struct PagingCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    spill_bytes: AtomicU64,
}

/// One coherent snapshot of a node's paging activity, combining the
/// node-level pin/spill counters with the pool's eviction counter and
/// residency gauges. This is the task-state memory story in numbers: a
/// job whose working set exceeds `pool_capacity` shows `spill_bytes`
/// and `misses` climbing while `pool_used` stays bounded.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PagingStats {
    /// Page pins satisfied from the pool.
    pub hits: u64,
    /// Page pins that had to load the page from disk.
    pub misses: u64,
    /// Pages evicted from the pool.
    pub evictions: u64,
    /// Bytes flushed out by explicit spills and dirty-page evictions.
    pub spill_bytes: u64,
    /// Bytes of pool frames currently allocated.
    pub pool_used: u64,
    /// The pool's hard capacity in bytes (the `--pool-mb` budget).
    pub pool_capacity: u64,
    /// Pages currently resident in the pool.
    pub resident_pages: u64,
    /// Resident pages currently pinned by some service.
    pub pinned_pages: u64,
}

/// One worker node's storage engine. Cheap to clone (shared handle); all
/// methods are thread-safe.
#[derive(Debug, Clone)]
pub struct StorageNode {
    pub(crate) inner: Arc<NodeInner>,
}

impl StorageNode {
    /// Creates a node: allocates the buffer pool, opens the disks, and
    /// instantiates the paging strategy.
    pub fn new(config: NodeConfig) -> Result<Self> {
        if config.default_page_size <= crate::page::PAGE_HEADER {
            return Err(PangeaError::config(format!(
                "default page size {} too small",
                config.default_page_size
            )));
        }
        let mut pool_cfg = BufferPoolConfig::new(config.pool_capacity);
        pool_cfg.allocator = config.pool_allocator.clone();
        let pool = BufferPool::new(pool_cfg)?;
        let mut disk_cfg = DiskConfig::under(&config.data_dir, config.num_disks);
        if let Some(bw) = config.disk_bandwidth {
            disk_cfg = disk_cfg.with_bandwidth(bw);
        }
        let disks = Arc::new(DiskManager::new(disk_cfg)?);
        let capacity_pages = (config.pool_capacity / config.default_page_size).max(1) as u64;
        let strategy = strategy_by_name(&config.strategy, capacity_pages)?;
        Ok(Self {
            inner: Arc::new(NodeInner {
                pool,
                disks,
                strategy: Mutex::new(strategy),
                sets: RwLock::new(FxHashMap::default()),
                names: Mutex::new(FxHashMap::default()),
                next_set: AtomicU64::new(1),
                default_page_size: config.default_page_size,
                paging: PagingCounters::default(),
            }),
        })
    }

    /// The node's unified buffer pool.
    pub fn pool(&self) -> &BufferPool {
        &self.inner.pool
    }

    /// The node's disk manager.
    pub fn disks(&self) -> &Arc<DiskManager> {
        &self.inner.disks
    }

    /// Disk I/O counters (reads/writes move through these).
    pub fn disk_stats(&self) -> &Arc<IoStats> {
        self.inner.disks.stats()
    }

    /// Configured paging strategy name.
    pub fn strategy_name(&self) -> &'static str {
        self.inner.strategy.lock().name()
    }

    /// Default page size for new sets.
    pub fn default_page_size(&self) -> usize {
        self.inner.default_page_size
    }

    /// Snapshot of the node's paging activity (pin hits/misses, spill
    /// bytes) combined with the pool's eviction counter and residency.
    pub fn paging_stats(&self) -> PagingStats {
        let pool = self.inner.pool.pool_stats();
        PagingStats {
            hits: self.inner.paging.hits.load(Ordering::Relaxed),
            misses: self.inner.paging.misses.load(Ordering::Relaxed),
            evictions: self.inner.pool.stats().snapshot().pages_evicted,
            spill_bytes: self.inner.paging.spill_bytes.load(Ordering::Relaxed),
            pool_used: self.inner.pool.used() as u64,
            pool_capacity: self.inner.pool.capacity() as u64,
            resident_pages: pool.resident_pages as u64,
            pinned_pages: pool.pinned_pages as u64,
        }
    }

    // ------------------------------------------------------------------
    // Set lifecycle
    // ------------------------------------------------------------------

    /// Creates a locality set (paper §3.2 `createSet`). Names are unique
    /// per node.
    pub fn create_set(&self, name: &str, options: SetOptions) -> Result<LocalitySet> {
        let page_size = options.page_size.unwrap_or(self.inner.default_page_size);
        if page_size <= crate::page::PAGE_HEADER + crate::page::RECORD_PREFIX {
            return Err(PangeaError::config(format!(
                "page size {page_size} too small for the record layout"
            )));
        }
        if page_size > self.inner.pool.capacity() {
            return Err(PangeaError::config(format!(
                "page size {page_size} exceeds pool capacity {}",
                self.inner.pool.capacity()
            )));
        }
        let mut names = self.inner.names.lock();
        if names.contains_key(name) {
            return Err(PangeaError::usage(format!(
                "locality set '{name}' already exists"
            )));
        }
        let id = SetId(self.inner.next_set.fetch_add(1, Ordering::Relaxed));
        let attrs = SetAttributes {
            durability: options.durability,
            estimated_pages: options.estimated_pages,
            ..Default::default()
        };
        let state = Arc::new(SetState {
            id,
            name: name.to_string(),
            page_size,
            attrs: RwLock::new(attrs),
            file: PagedFile::create(id, Arc::clone(&self.inner.disks)),
            next_page: AtomicU64::new(0),
        });
        self.inner
            .strategy
            .lock()
            .update_set(id, attrs.profile(page_size))?;
        names.insert(name.to_string(), id);
        self.inner.sets.write().insert(id, Arc::clone(&state));
        Ok(LocalitySet::new(self.clone(), state))
    }

    /// Looks a set up by name.
    pub fn get_set(&self, name: &str) -> Option<LocalitySet> {
        let id = *self.inner.names.lock().get(name)?;
        let state = Arc::clone(self.inner.sets.read().get(&id)?);
        Some(LocalitySet::new(self.clone(), state))
    }

    /// Looks a set up by id.
    pub fn get_set_by_id(&self, id: SetId) -> Option<LocalitySet> {
        let state = Arc::clone(self.inner.sets.read().get(&id)?);
        Some(LocalitySet::new(self.clone(), state))
    }

    /// All locality sets currently on this node.
    pub fn set_ids(&self) -> Vec<SetId> {
        let mut v: Vec<SetId> = self.inner.sets.read().keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Removes a set entirely: drops its resident pages (no flush) and
    /// deletes its files.
    pub fn drop_set(&self, id: SetId) -> Result<()> {
        let state = self
            .inner
            .sets
            .write()
            .remove(&id)
            .ok_or(PangeaError::SetNotFound(id))?;
        self.inner.names.lock().remove(&state.name);
        for num in self.inner.pool.resident_of_set(id) {
            // Pinned pages mean the caller is still using the set; that is
            // an API misuse we surface rather than ignore.
            self.inner.pool.drop_page(PageId::new(id, num))?;
            self.inner
                .strategy
                .lock()
                .on_page_evicted(PageId::new(id, num));
        }
        state.file.delete()?;
        self.inner.strategy.lock().remove_set(id);
        Ok(())
    }

    /// Re-publishes a set's paging profile after an attribute change.
    pub(crate) fn republish_profile(&self, state: &SetState) -> Result<()> {
        let profile = state.attrs().profile(state.page_size);
        self.inner.strategy.lock().update_set(state.id, profile)
    }

    // ------------------------------------------------------------------
    // Page operations
    // ------------------------------------------------------------------

    /// Allocates and pins a brand-new page of `set`, evicting as needed.
    /// The page bytes are initialized as an empty record page.
    pub(crate) fn new_pinned_page(&self, state: &SetState) -> Result<PagePin> {
        let num = state.next_page.fetch_add(1, Ordering::Relaxed);
        let page = PageId::new(state.id, num);
        let pin = self.with_room(state.page_size, || {
            self.inner.pool.create_page(page, state.page_size)
        })?;
        crate::page::init_record_page(&mut pin.write());
        self.inner
            .strategy
            .lock()
            .on_page_cached(page, pin.last_access());
        Ok(pin)
    }

    /// Pins page `num` of `set`, loading it from disk when not resident
    /// (paper §4: "When reading a page, Pangea first checks the buffer
    /// pool [...] If the page is not present, the page needs to be cached
    /// first").
    pub(crate) fn pin_page(&self, state: &SetState, num: PageNum) -> Result<PagePin> {
        let page = PageId::new(state.id, num);
        if let Some(pin) = self.inner.pool.pin_existing(page) {
            self.inner.paging.hits.fetch_add(1, Ordering::Relaxed);
            self.inner
                .strategy
                .lock()
                .on_page_accessed(page, pin.last_access());
            return Ok(pin);
        }
        self.inner.paging.misses.fetch_add(1, Ordering::Relaxed);
        let bytes = state.file.read_page(num)?;
        let pin = self.with_room(bytes.len(), || {
            // Another thread may have loaded it while we read the disk.
            if let Some(pin) = self.inner.pool.pin_existing(page) {
                return Ok(pin);
            }
            self.inner.pool.insert_from_disk(page, &bytes)
        })?;
        self.inner
            .strategy
            .lock()
            .on_page_cached(page, pin.last_access());
        Ok(pin)
    }

    /// Seals a page a writer has finished with: under `write-through`
    /// durability the page is persisted immediately and marked clean;
    /// under `write-back` it stays dirty in memory until evicted.
    pub(crate) fn seal_page(&self, state: &SetState, pin: &PagePin) -> Result<()> {
        if state.attrs().durability == Durability::WriteThrough {
            let bytes = pin.read();
            state.file.write_page(pin.page_id().num, &bytes)?;
            drop(bytes);
            pin.mark_clean();
            self.inner.disks.stats().record_flush();
        }
        Ok(())
    }

    /// Explicitly spills a pinned page: flushes its bytes to the set's
    /// file and removes it from the pool, recycling its memory. The
    /// caller must hold the *only* pin. Used by the hash service when a
    /// full hash page must be "unpinned and spilled to disk as
    /// partial-aggregation results" (paper §8).
    pub(crate) fn spill_page_out(&self, state: &SetState, pin: PagePin) -> Result<()> {
        let page = pin.page_id();
        {
            let bytes = pin.read();
            state.file.write_page(page.num, &bytes)?;
            self.inner
                .paging
                .spill_bytes
                .fetch_add(bytes.len() as u64, Ordering::Relaxed);
        }
        drop(pin);
        if !self.inner.pool.drop_page(page)? {
            return Err(PangeaError::usage(format!(
                "page {page} vanished while being spilled"
            )));
        }
        self.inner.strategy.lock().on_page_evicted(page);
        self.inner.disks.stats().record_flush();
        Ok(())
    }

    /// Marks a set's lifetime ended: unpinned resident pages are dropped
    /// immediately without flushing ("data that will not be accessed
    /// should be evicted as soon as their lifetimes expire", §3.1), and
    /// the paging system will evict any still-pinned remainder first.
    pub(crate) fn end_lifetime(&self, state: &SetState) -> Result<()> {
        {
            let mut attrs = state.attrs.write();
            attrs.lifetime_ended = true;
            attrs.op = CurrentOp::None;
        }
        self.republish_profile(state)?;
        let mut strategy = self.inner.strategy.lock();
        for num in self.inner.pool.resident_of_set(state.id) {
            let page = PageId::new(state.id, num);
            if self
                .inner
                .pool
                .evict(page)
                .map(|e| e.is_some())
                .unwrap_or(false)
            {
                strategy.on_page_evicted(page);
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Eviction (the mechanism half of paper §6)
    // ------------------------------------------------------------------

    /// Runs `attempt`; on [`PangeaError::OutOfMemory`] evicts victims
    /// chosen by the paging strategy and retries, up to
    /// [`MAX_EVICTION_ROUNDS`] rounds.
    ///
    /// Under concurrency, two threads can pick the same victims: the
    /// loser's eviction round frees nothing even though memory was just
    /// released (and possibly re-consumed). An empty round is therefore
    /// not proof of exhaustion — OOM is surfaced only after several
    /// consecutive empty rounds.
    pub(crate) fn with_room<T>(
        &self,
        _requested: usize,
        mut attempt: impl FnMut() -> Result<T>,
    ) -> Result<T> {
        let mut consecutive_empty = 0u32;
        for _ in 0..MAX_EVICTION_ROUNDS {
            match attempt() {
                Err(PangeaError::OutOfMemory { .. }) => {
                    if self.evict_round()? == 0 {
                        consecutive_empty += 1;
                        if consecutive_empty >= 8 {
                            return attempt(); // surface the real OOM error
                        }
                        std::thread::yield_now();
                    } else {
                        consecutive_empty = 0;
                    }
                }
                other => return other,
            }
        }
        attempt()
    }

    /// One eviction round: snapshot residency, ask the strategy for
    /// victims, evict and (when required) spill them. Returns the number
    /// of pages actually evicted.
    pub(crate) fn evict_round(&self) -> Result<usize> {
        let views = self.page_views();
        if views.is_empty() {
            return Ok(0);
        }
        let now = self.inner.pool.clock().now();
        let victims = {
            let mut strategy = self.inner.strategy.lock();
            strategy.choose_victims(&views, now)
        };
        let mut evicted = 0;
        for page in victims {
            if self.evict_one(page)? {
                evicted += 1;
            }
        }
        Ok(evicted)
    }

    /// Evicts a single page, spilling it first when it is dirty, its
    /// set is still alive, and (write-back) it has no up-to-date on-disk
    /// image. Returns false when the page was pinned or already gone.
    ///
    /// Ordering matters: the flush happens *while the page is still
    /// resident* (under a short-lived pin), and only then is the frame
    /// removed. A reader that misses the pool therefore always finds a
    /// complete on-disk image — flushing after removal would open a
    /// window where a concurrent `pin_page` reads a stale or in-flight
    /// file version.
    fn evict_one(&self, page: PageId) -> Result<bool> {
        let Some(state) = self.inner.sets.read().get(&page.set).cloned() else {
            // Set dropped concurrently; nothing to spill to.
            let _ = self.inner.pool.drop_page(page);
            self.inner.strategy.lock().on_page_evicted(page);
            return Ok(true);
        };
        let attrs = state.attrs();
        let Some(pin) = self.inner.pool.pin_existing(page) else {
            return Ok(false); // evicted by a racing round
        };
        if pin.is_dirty() && !attrs.lifetime_ended {
            // Paper §5: "Before evicting an unpinned page that is marked
            // as dirty but is still within its locality set's lifetime,
            // we need to make sure that all the changes are written back
            // to the Pangea file system first."
            let bytes = pin.read();
            state.file.write_page(page.num, &bytes)?;
            self.inner
                .paging
                .spill_bytes
                .fetch_add(bytes.len() as u64, Ordering::Relaxed);
            drop(bytes);
            pin.mark_clean();
            self.inner.disks.stats().record_flush();
        }
        drop(pin);
        // Another thread may have pinned it meanwhile — skip then; the
        // flush above is still valid (the page is now clean).
        match self.inner.pool.evict(page) {
            Ok(Some(frame)) => {
                drop(frame); // recycles the arena block
                self.inner.strategy.lock().on_page_evicted(page);
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    /// Snapshot of every resident page as the paging strategies see it.
    /// Pages of `Location: pinned` sets are reported unevictable.
    fn page_views(&self) -> Vec<PageView> {
        let sets = self.inner.sets.read();
        self.inner
            .pool
            .resident_pages()
            .into_iter()
            .filter_map(|page| {
                let (pins, dirty, last_access) = self.inner.pool.page_meta(page)?;
                let location_pinned = sets
                    .get(&page.set)
                    .map(|s| s.attrs().pinned)
                    .unwrap_or(false);
                Some(PageView {
                    page,
                    last_access,
                    evictable: pins == 0 && !location_pinned,
                    dirty,
                })
            })
            .collect()
    }

    /// Flushes every dirty resident page of live sets to disk and
    /// persists all meta files (an orderly shutdown / checkpoint).
    pub fn checkpoint(&self) -> Result<()> {
        let sets: Vec<Arc<SetState>> = self.inner.sets.read().values().cloned().collect();
        for state in sets {
            if state.attrs().lifetime_ended {
                continue;
            }
            for num in self.inner.pool.resident_of_set(state.id) {
                let page = PageId::new(state.id, num);
                let Some(pin) = self.inner.pool.pin_existing(page) else {
                    continue;
                };
                if pin.is_dirty() {
                    let bytes = pin.read();
                    state.file.write_page(num, &bytes)?;
                    drop(bytes);
                    pin.mark_clean();
                    self.inner.disks.stats().record_flush();
                }
            }
            state.file.persist_meta()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pangea_common::KB;
    use std::path::PathBuf;

    fn test_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "pangea-node-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn node(tag: &str, pool: usize, page: usize) -> StorageNode {
        StorageNode::new(
            NodeConfig::new(test_dir(tag))
                .with_pool_capacity(pool)
                .with_page_size(page),
        )
        .unwrap()
    }

    #[test]
    fn create_and_lookup_sets() {
        let n = node("lookup", 64 * KB, 4 * KB);
        let s = n.create_set("points", SetOptions::write_through()).unwrap();
        assert_eq!(n.get_set("points").unwrap().id(), s.id());
        assert!(n.get_set("missing").is_none());
        assert!(n.create_set("points", SetOptions::default()).is_err());
        assert_eq!(n.set_ids(), vec![s.id()]);
    }

    #[test]
    fn page_size_validation() {
        let n = node("pagesz", 64 * KB, 4 * KB);
        assert!(n
            .create_set("tiny", SetOptions::default().with_page_size(4))
            .is_err());
        assert!(n
            .create_set("huge", SetOptions::default().with_page_size(1 << 30))
            .is_err());
    }

    #[test]
    fn eviction_spills_write_back_pages_and_reloads_them() {
        // Pool fits 4 pages; write 8, then read them all back.
        let n = node("spill", 16 * KB, 4 * KB);
        let s = n.create_set("job", SetOptions::write_back()).unwrap();
        let mut w = s.writer();
        for i in 0..8u64 {
            w.add_object(&i.to_le_bytes()).unwrap();
            w.seal_current().unwrap(); // force one record per page
        }
        w.finish().unwrap();
        assert!(
            n.disk_stats().snapshot().pages_flushed > 0,
            "evictions must have spilled dirty pages"
        );
        // Every record is recoverable (resident or spilled).
        let mut seen = Vec::new();
        for num in s.page_numbers() {
            let pin = s.pin_page(num).unwrap();
            crate::page::ObjectIter::new(&pin).for_each(|rec| {
                seen.push(u64::from_le_bytes(rec.try_into().unwrap()));
            });
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn write_through_pages_flush_on_seal_not_on_evict() {
        let n = node("wt", 16 * KB, 4 * KB);
        let s = n.create_set("user", SetOptions::write_through()).unwrap();
        let mut w = s.writer();
        w.add_object(b"persist me").unwrap();
        w.finish().unwrap();
        let after_seal = n.disk_stats().snapshot();
        assert_eq!(after_seal.pages_flushed, 1, "seal persisted the page");
        // Evicting the (clean) page must not write again.
        let evicted = n.evict_round().unwrap();
        assert!(evicted >= 1);
        assert_eq!(
            n.disk_stats().snapshot().pages_flushed,
            after_seal.pages_flushed
        );
        // And it reloads from disk.
        let pin = s.pin_page(0).unwrap();
        let mut it = crate::page::ObjectIter::new(&pin);
        assert_eq!(it.next(), Some(b"persist me".as_slice()));
    }

    #[test]
    fn lifetime_ended_pages_drop_without_flush() {
        let n = node("lifetime", 16 * KB, 4 * KB);
        let s = n.create_set("tmp", SetOptions::write_back()).unwrap();
        let mut w = s.writer();
        w.add_object(b"scratch").unwrap();
        w.finish().unwrap();
        s.end_lifetime().unwrap();
        assert_eq!(
            n.disk_stats().snapshot().pages_flushed,
            0,
            "expired data must never be spilled"
        );
        assert!(n.pool().resident_of_set(s.id()).is_empty());
    }

    #[test]
    fn oom_when_everything_is_pinned() {
        let n = node("oom", 8 * KB, 4 * KB);
        let s = n.create_set("s", SetOptions::write_back()).unwrap();
        let _a = s.new_page().unwrap();
        let _b = s.new_page().unwrap();
        match s.new_page() {
            Err(PangeaError::OutOfMemory { .. }) => {}
            other => panic!("expected OOM, got {other:?}"),
        }
    }

    #[test]
    fn drop_set_removes_pages_and_files() {
        let n = node("dropset", 32 * KB, 4 * KB);
        let s = n.create_set("gone", SetOptions::write_back()).unwrap();
        let mut w = s.writer();
        for i in 0..4u64 {
            w.add_object(&i.to_le_bytes()).unwrap();
            w.seal_current().unwrap();
        }
        w.finish().unwrap();
        let id = s.id();
        drop(w);
        n.drop_set(id).unwrap();
        assert!(n.get_set("gone").is_none());
        assert!(n.pool().resident_of_set(id).is_empty());
        assert!(n.get_set_by_id(id).is_none());
    }

    #[test]
    fn checkpoint_then_reload_meta() {
        let dir = test_dir("ckpt");
        let n = StorageNode::new(
            NodeConfig::new(&dir)
                .with_pool_capacity(32 * KB)
                .with_page_size(4 * KB),
        )
        .unwrap();
        let s = n.create_set("durable", SetOptions::write_back()).unwrap();
        let mut w = s.writer();
        w.add_object(b"survives").unwrap();
        w.finish().unwrap();
        n.checkpoint().unwrap();
        // The page is now on disk even though the set is write-back.
        assert!(s.bytes_on_disk() > 0);
    }

    #[test]
    fn pinned_location_sets_are_never_victims() {
        let n = node("pinned", 16 * KB, 4 * KB);
        let s = n.create_set("keep", SetOptions::write_back()).unwrap();
        s.set_pinned(true).unwrap();
        let mut w = s.writer();
        w.add_object(b"a").unwrap();
        w.finish().unwrap();
        assert_eq!(n.evict_round().unwrap(), 0, "pinned set has no victims");
        s.set_pinned(false).unwrap();
        assert!(n.evict_round().unwrap() >= 1);
    }
}
