//! An independent hash table living entirely inside one page's bytes
//! (paper §8, hash service: "each page contains an independent hash
//! table, as well as all of its associated key-value pairs").
//!
//! The layout bounds all allocation to the page's memory, mirroring the
//! paper's memcached-slab-allocator-in-a-page trick:
//!
//! ```text
//! [u32 n_buckets][u32 n_items][u32 heap_top][u32 local_depth]
//! [bucket heads: n_buckets × u32]            (0 = empty)
//! [entries, bump-allocated upward]
//!    entry: [u32 next][u16 klen][u16 vlen][key bytes][value bytes]
//! ```
//!
//! Values are updated in place when the new value has the same encoded
//! length (the common case for aggregation states); otherwise the old
//! entry is unlinked and a new one appended. When the bump heap reaches
//! the end of the page the table reports [`HashInsert::Full`] and the
//! virtual hash buffer splits the partition or spills the page.

use pangea_common::{fx_hash64, PangeaError, Result};

/// Fixed header size.
const HDR: usize = 16;
/// Per-entry fixed overhead (`next` + `klen` + `vlen`).
const ENTRY_HDR: usize = 8;

/// Outcome of an insert into one hash page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HashInsert {
    /// A new key was added.
    Inserted,
    /// An existing key's value was replaced.
    Updated,
    /// The page has no room; split or spill.
    Full,
}

/// Chooses a bucket count for a page: one bucket per ~64 bytes keeps
/// chains short for typical small aggregation entries.
pub fn buckets_for(page_size: usize) -> u32 {
    ((page_size / 64).max(4) as u32).next_power_of_two()
}

/// Initializes `bytes` as an empty hash page with `n_buckets` buckets and
/// the given extendible-split depth.
pub fn init(bytes: &mut [u8], n_buckets: u32, local_depth: u32) -> Result<()> {
    let need = HDR + n_buckets as usize * 4 + ENTRY_HDR;
    if bytes.len() < need {
        return Err(PangeaError::config(format!(
            "hash page of {} B cannot hold {n_buckets} buckets",
            bytes.len()
        )));
    }
    bytes[0..4].copy_from_slice(&n_buckets.to_le_bytes());
    bytes[4..8].copy_from_slice(&0u32.to_le_bytes());
    let heap_top = (HDR + n_buckets as usize * 4) as u32;
    bytes[8..12].copy_from_slice(&heap_top.to_le_bytes());
    bytes[12..16].copy_from_slice(&local_depth.to_le_bytes());
    bytes[HDR..HDR + n_buckets as usize * 4].fill(0);
    Ok(())
}

#[inline]
fn read_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"))
}

#[inline]
fn write_u32(bytes: &mut [u8], at: usize, v: u32) {
    bytes[at..at + 4].copy_from_slice(&v.to_le_bytes());
}

#[inline]
fn read_u16(bytes: &[u8], at: usize) -> u16 {
    u16::from_le_bytes(bytes[at..at + 2].try_into().expect("2 bytes"))
}

/// Number of buckets.
pub fn n_buckets(bytes: &[u8]) -> u32 {
    read_u32(bytes, 0)
}

/// Number of live entries.
pub fn n_items(bytes: &[u8]) -> u32 {
    read_u32(bytes, 4)
}

/// Bytes of the page consumed (header + buckets + heap).
pub fn used_bytes(bytes: &[u8]) -> usize {
    read_u32(bytes, 8) as usize
}

/// The page's extendible-hashing local depth (managed by the virtual
/// hash buffer's splitting logic).
pub fn local_depth(bytes: &[u8]) -> u32 {
    read_u32(bytes, 12)
}

/// Updates the local depth (after a split).
pub fn set_local_depth(bytes: &mut [u8], depth: u32) {
    write_u32(bytes, 12, depth);
}

#[inline]
fn bucket_slot(bytes: &[u8], hash: u64) -> usize {
    let nb = n_buckets(bytes) as u64;
    HDR + ((hash & (nb - 1)) as usize) * 4
}

// Entry accessors -------------------------------------------------------

#[inline]
fn entry_key(bytes: &[u8], at: usize) -> &[u8] {
    let klen = read_u16(bytes, at + 4) as usize;
    &bytes[at + ENTRY_HDR..at + ENTRY_HDR + klen]
}

#[inline]
fn entry_val_range(bytes: &[u8], at: usize) -> (usize, usize) {
    let klen = read_u16(bytes, at + 4) as usize;
    let vlen = read_u16(bytes, at + 6) as usize;
    let start = at + ENTRY_HDR + klen;
    (start, start + vlen)
}

/// Looks a key up, returning its value bytes.
pub fn lookup<'a>(bytes: &'a [u8], key: &[u8]) -> Option<&'a [u8]> {
    let hash = fx_hash64(key);
    let mut at = read_u32(bytes, bucket_slot(bytes, hash)) as usize;
    while at != 0 {
        if entry_key(bytes, at) == key {
            let (s, e) = entry_val_range(bytes, at);
            return Some(&bytes[s..e]);
        }
        at = read_u32(bytes, at) as usize;
    }
    None
}

/// Inserts or replaces `key → val`. Same-length replacements happen in
/// place; different-length replacements unlink and re-append (the old
/// entry's bytes become dead slab space, as in a real slab allocator).
pub fn insert(bytes: &mut [u8], key: &[u8], val: &[u8]) -> Result<HashInsert> {
    if key.len() > u16::MAX as usize || val.len() > u16::MAX as usize {
        return Err(PangeaError::usage("hash key/value longer than 64 KiB"));
    }
    let hash = fx_hash64(key);
    let slot = bucket_slot(bytes, hash);
    // Probe the chain for an existing key.
    let mut prev: Option<usize> = None;
    let mut at = read_u32(bytes, slot) as usize;
    while at != 0 {
        if entry_key(bytes, at) == key {
            let (s, e) = entry_val_range(bytes, at);
            if e - s == val.len() {
                bytes[s..e].copy_from_slice(val);
                return Ok(HashInsert::Updated);
            }
            // Unlink; fall through to append the resized entry.
            let next = read_u32(bytes, at);
            match prev {
                Some(p) => write_u32(bytes, p, next),
                None => write_u32(bytes, slot, next),
            }
            let n = n_items(bytes);
            write_u32(bytes, 4, n - 1);
            break;
        }
        prev = Some(at);
        at = read_u32(bytes, at) as usize;
    }
    // Append a fresh entry at the heap top.
    let heap_top = used_bytes(bytes);
    let need = ENTRY_HDR + key.len() + val.len();
    if heap_top + need > bytes.len() {
        return Ok(HashInsert::Full);
    }
    let head = read_u32(bytes, slot);
    write_u32(bytes, heap_top, head);
    bytes[heap_top + 4..heap_top + 6].copy_from_slice(&(key.len() as u16).to_le_bytes());
    bytes[heap_top + 6..heap_top + 8].copy_from_slice(&(val.len() as u16).to_le_bytes());
    bytes[heap_top + ENTRY_HDR..heap_top + ENTRY_HDR + key.len()].copy_from_slice(key);
    bytes[heap_top + ENTRY_HDR + key.len()..heap_top + need].copy_from_slice(val);
    write_u32(bytes, slot, heap_top as u32);
    write_u32(bytes, 8, (heap_top + need) as u32);
    write_u32(bytes, 4, n_items(bytes) + 1);
    Ok(HashInsert::Inserted)
}

/// Calls `f(key, value)` for every live entry.
pub fn for_each(bytes: &[u8], mut f: impl FnMut(&[u8], &[u8])) {
    let nb = n_buckets(bytes);
    for b in 0..nb {
        let mut at = read_u32(bytes, HDR + b as usize * 4) as usize;
        while at != 0 {
            let key = entry_key(bytes, at);
            let (s, e) = entry_val_range(bytes, at);
            f(key, &bytes[s..e]);
            at = read_u32(bytes, at) as usize;
        }
    }
}

/// Collects every live entry (tests and spill paths).
pub fn entries(bytes: &[u8]) -> Vec<(Vec<u8>, Vec<u8>)> {
    let mut out = Vec::with_capacity(n_items(bytes) as usize);
    for_each(bytes, |k, v| out.push((k.to_vec(), v.to_vec())));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh(cap: usize) -> Vec<u8> {
        let mut v = vec![0u8; cap];
        init(&mut v, buckets_for(cap), 0).unwrap();
        v
    }

    #[test]
    fn empty_table_has_nothing() {
        let p = fresh(1024);
        assert_eq!(n_items(&p), 0);
        assert!(lookup(&p, b"missing").is_none());
        assert!(entries(&p).is_empty());
    }

    #[test]
    fn insert_lookup_roundtrip() {
        let mut p = fresh(4096);
        for i in 0..50u32 {
            let k = format!("key-{i}");
            let r = insert(&mut p, k.as_bytes(), &i.to_le_bytes()).unwrap();
            assert_eq!(r, HashInsert::Inserted);
        }
        assert_eq!(n_items(&p), 50);
        for i in 0..50u32 {
            let k = format!("key-{i}");
            let v = lookup(&p, k.as_bytes()).expect("present");
            assert_eq!(u32::from_le_bytes(v.try_into().unwrap()), i);
        }
        assert!(lookup(&p, b"key-50").is_none());
    }

    #[test]
    fn same_length_update_is_in_place() {
        let mut p = fresh(1024);
        insert(&mut p, b"k", &7u64.to_le_bytes()).unwrap();
        let used = used_bytes(&p);
        let r = insert(&mut p, b"k", &9u64.to_le_bytes()).unwrap();
        assert_eq!(r, HashInsert::Updated);
        assert_eq!(used_bytes(&p), used, "no heap growth on in-place update");
        assert_eq!(
            lookup(&p, b"k").unwrap(),
            &9u64.to_le_bytes(),
            "value replaced"
        );
        assert_eq!(n_items(&p), 1);
    }

    #[test]
    fn resized_update_relinks() {
        let mut p = fresh(1024);
        insert(&mut p, b"k", b"short").unwrap();
        insert(&mut p, b"other", b"x").unwrap();
        let r = insert(&mut p, b"k", b"a much longer value").unwrap();
        assert_eq!(r, HashInsert::Inserted, "resize appends a fresh entry");
        assert_eq!(lookup(&p, b"k").unwrap(), b"a much longer value");
        assert_eq!(lookup(&p, b"other").unwrap(), b"x");
        assert_eq!(n_items(&p), 2, "no phantom entries");
        let mut keys: Vec<_> = entries(&p).into_iter().map(|(k, _)| k).collect();
        keys.sort();
        assert_eq!(keys, vec![b"k".to_vec(), b"other".to_vec()]);
    }

    #[test]
    fn reports_full_and_stays_consistent() {
        let mut p = fresh(256);
        let mut inserted = 0u32;
        loop {
            let k = format!("key-{inserted:04}");
            match insert(&mut p, k.as_bytes(), &[0u8; 16]).unwrap() {
                HashInsert::Inserted => inserted += 1,
                HashInsert::Full => break,
                HashInsert::Updated => unreachable!(),
            }
        }
        assert!(inserted > 0);
        assert_eq!(n_items(&p), inserted);
        // Everything inserted before the page filled is still there.
        for i in 0..inserted {
            let k = format!("key-{i:04}");
            assert!(lookup(&p, k.as_bytes()).is_some());
        }
    }

    #[test]
    fn colliding_keys_chain_correctly() {
        // Force collisions with a 4-bucket table.
        let mut p = vec![0u8; 2048];
        init(&mut p, 4, 0).unwrap();
        for i in 0..64u32 {
            insert(&mut p, format!("k{i}").as_bytes(), &i.to_le_bytes()).unwrap();
        }
        for i in 0..64u32 {
            let v = lookup(&p, format!("k{i}").as_bytes()).unwrap();
            assert_eq!(u32::from_le_bytes(v.try_into().unwrap()), i);
        }
        assert_eq!(entries(&p).len(), 64);
    }

    #[test]
    fn local_depth_roundtrips() {
        let mut p = fresh(512);
        assert_eq!(local_depth(&p), 0);
        set_local_depth(&mut p, 3);
        assert_eq!(local_depth(&p), 3);
    }

    #[test]
    fn init_rejects_impossible_layouts() {
        let mut tiny = vec![0u8; 16];
        assert!(init(&mut tiny, 64, 0).is_err());
    }

    #[test]
    fn oversized_keys_rejected() {
        let mut p = fresh(1 << 18);
        let big = vec![0u8; (u16::MAX as usize) + 1];
        assert!(insert(&mut p, &big, b"v").is_err());
    }
}
