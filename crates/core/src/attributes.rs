//! Locality-set attributes (paper Table 1).
//!
//! A locality set is "a set of pages associated with one dataset that are
//! used by an application in a uniform way". Its attributes describe how
//! the application uses it — durability requirement, writing/reading
//! pattern, lifetime, and the operation currently in flight. Services
//! update these attributes automatically as they run ("determining
//! attributes", paper §3.2); the paging system consumes them through
//! [`SetProfile`].

use pangea_common::PangeaError;
use pangea_paging::{CurrentOp, Durability, ReadPattern, SetProfile, WritePattern};

/// Runtime attributes of one locality set (paper Table 1).
///
/// `AccessRecency` from Table 1 is tracked per page by the buffer pool's
/// logical clock rather than stored here.
#[derive(Debug, Clone, Copy)]
pub struct SetAttributes {
    /// `write-through` persists each page as soon as it is sealed;
    /// `write-back` spills dirty pages only on eviction.
    pub durability: Durability,
    /// Writing pattern, learned from the service used to produce the set.
    pub writing: Option<WritePattern>,
    /// Reading pattern, learned from the service used to consume the set.
    pub reading: Option<ReadPattern>,
    /// Table 1 `Location`: a pinned set's pages are never eviction victims.
    pub pinned: bool,
    /// Table 1 `Lifetime`: once ended, pages are dropped without flushing
    /// and the set is evicted before all live sets.
    pub lifetime_ended: bool,
    /// Table 1 `CurrentOperation`.
    pub op: CurrentOp,
    /// Page count estimate supplied by the application, used only by the
    /// DBMIN baselines (Pangea itself never requires it).
    pub estimated_pages: Option<u64>,
}

impl Default for SetAttributes {
    fn default() -> Self {
        Self {
            durability: Durability::WriteThrough,
            writing: None,
            reading: None,
            pinned: false,
            lifetime_ended: false,
            op: CurrentOp::None,
            estimated_pages: None,
        }
    }
}

impl SetAttributes {
    /// Projects these attributes onto the slice the paging policies consume.
    ///
    /// `page_size` feeds the profiled per-page I/O times `vr`/`vw` (cost is
    /// proportional to bytes moved; the disk throttle turns bytes into
    /// wall-clock in benches).
    pub fn profile(&self, page_size: usize) -> SetProfile {
        SetProfile {
            durability: self.durability,
            writing: self.writing,
            reading: self.reading,
            op: self.op,
            lifetime_ended: self.lifetime_ended,
            read_time: page_size as f64,
            write_time: page_size as f64,
            estimated_pages: self.estimated_pages,
        }
    }
}

/// Options supplied when creating a locality set.
#[derive(Debug, Clone)]
pub struct SetOptions {
    /// Durability requirement; the paper's default is `write-through`
    /// ("if `write-back` is not specified here, `write-through` is used by
    /// default", §8).
    pub durability: Durability,
    /// Page size for every page of the set; `None` uses the node default.
    pub page_size: Option<usize>,
    /// Optional page-count estimate for the DBMIN baselines.
    pub estimated_pages: Option<u64>,
}

impl Default for SetOptions {
    fn default() -> Self {
        Self {
            durability: Durability::WriteThrough,
            page_size: None,
            estimated_pages: None,
        }
    }
}

impl SetOptions {
    /// A `write-through` (persistent, user-data) set.
    pub fn write_through() -> Self {
        Self::default()
    }

    /// A `write-back` (transient, job/execution-data) set.
    pub fn write_back() -> Self {
        Self {
            durability: Durability::WriteBack,
            ..Self::default()
        }
    }

    /// Overrides the page size.
    pub fn with_page_size(mut self, page_size: usize) -> Self {
        self.page_size = Some(page_size);
        self
    }

    /// Supplies the page-count estimate DBMIN's adaptive sizing wants.
    pub fn with_estimated_pages(mut self, pages: u64) -> Self {
        self.estimated_pages = Some(pages);
        self
    }

    /// Parses the paper's string form (`"write-through"` / `"write-back"`,
    /// as in `createSet(setName, "write-back")`).
    pub fn from_durability_str(s: &str) -> pangea_common::Result<Self> {
        match s {
            "write-through" => Ok(Self::write_through()),
            "write-back" => Ok(Self::write_back()),
            other => Err(PangeaError::config(format!(
                "unknown durability '{other}' (expected write-through or write-back)"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_defaults() {
        let a = SetAttributes::default();
        assert_eq!(a.durability, Durability::WriteThrough);
        assert!(!a.lifetime_ended);
        assert_eq!(a.op, CurrentOp::None);
        let o = SetOptions::default();
        assert_eq!(o.durability, Durability::WriteThrough);
    }

    #[test]
    fn durability_strings_parse_like_the_paper_api() {
        assert_eq!(
            SetOptions::from_durability_str("write-back")
                .unwrap()
                .durability,
            Durability::WriteBack
        );
        assert_eq!(
            SetOptions::from_durability_str("write-through")
                .unwrap()
                .durability,
            Durability::WriteThrough
        );
        assert!(SetOptions::from_durability_str("write-sometimes").is_err());
    }

    #[test]
    fn profile_projection_keeps_patterns_and_costs() {
        let attrs = SetAttributes {
            durability: Durability::WriteBack,
            writing: Some(WritePattern::Concurrent),
            reading: Some(ReadPattern::Random),
            op: CurrentOp::Write,
            ..Default::default()
        };
        let p = attrs.profile(4096);
        assert_eq!(p.durability, Durability::WriteBack);
        assert_eq!(p.writing, Some(WritePattern::Concurrent));
        assert_eq!(p.reading, Some(ReadPattern::Random));
        assert_eq!(p.op, CurrentOp::Write);
        assert_eq!(p.read_time, 4096.0);
        assert_eq!(p.write_time, 4096.0);
    }
}
