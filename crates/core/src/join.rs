//! Join-map and broadcast-map services (paper §8: "Pangea also provides
//! other services such as join map service for building hash table
//! distributedly from shuffled data; and broadcast map service, which
//! broadcasts a locality set and constructs a hash table from it on each
//! node for broadcast join").
//!
//! A [`JoinMap`] is a read-optimized multimap over Pangea pages: build
//! it once from a record stream (shuffled partition data or a broadcast
//! copy of a small set), then probe it many times during a pipelined
//! join. Payloads live in pinned record pages; an in-memory index maps
//! key hashes to payload positions, so probes cost one hash lookup plus
//! direct shared-memory reads — no per-probe deserialization.

use crate::attributes::SetOptions;
use crate::node::StorageNode;
use crate::page::{self, ObjectIter};
use crate::set::LocalitySet;
use pangea_common::{fx_hash64, FxHashMap, PangeaError, Result};
use pangea_paging::{ReadPattern, WritePattern};
use pangea_storage::PagePin;

/// Where one entry's payload lives: `(page index, byte offset of the
/// record's length prefix within the page)`.
type Slot = (u32, u32);

/// Builds a [`JoinMap`] by streaming `(key, payload)` entries.
pub struct JoinMapBuilder {
    set: LocalitySet,
    pages: Vec<PagePin>,
    index: FxHashMap<u64, Vec<Slot>>,
    scratch: Vec<u8>,
    entries: u64,
}

impl JoinMapBuilder {
    /// Starts a builder backed by a fresh write-back locality set.
    pub fn new(node: &StorageNode, name: &str) -> Result<Self> {
        Self::with_page_size(node, name, node.default_page_size())
    }

    /// Starts a builder with an explicit page size.
    pub fn with_page_size(node: &StorageNode, name: &str, page_size: usize) -> Result<Self> {
        let set = node.create_set(name, SetOptions::write_back().with_page_size(page_size))?;
        set.declare_write(WritePattern::RandomMutable)?;
        Ok(Self {
            set,
            pages: Vec::new(),
            index: FxHashMap::default(),
            scratch: Vec::new(),
            entries: 0,
        })
    }

    /// Adds one `(key, payload)` entry. Duplicate keys accumulate (a
    /// join map is a multimap).
    pub fn insert(&mut self, key: &[u8], payload: &[u8]) -> Result<()> {
        if key.len() > u16::MAX as usize {
            return Err(PangeaError::usage("join key longer than 64 KiB"));
        }
        // Record layout: [u16 klen][key][payload].
        self.scratch.clear();
        self.scratch
            .extend_from_slice(&(key.len() as u16).to_le_bytes());
        self.scratch.extend_from_slice(key);
        self.scratch.extend_from_slice(payload);
        let max_payload = self.set.page_size() - page::PAGE_HEADER - page::RECORD_PREFIX;
        if self.scratch.len() > max_payload {
            return Err(PangeaError::usage(format!(
                "join entry of {} B exceeds page capacity {max_payload} B",
                self.scratch.len()
            )));
        }
        loop {
            if self.pages.is_empty() || {
                let pin = self.pages.last().expect("non-empty");
                let mut guard = pin.write();
                let offset = (page::PAGE_HEADER + page::used_bytes(&guard)) as u32;
                let fits = page::append_record(&mut guard, &self.scratch);
                drop(guard);
                if fits {
                    let slot = ((self.pages.len() - 1) as u32, offset);
                    self.index.entry(fx_hash64(key)).or_default().push(slot);
                    self.entries += 1;
                    return Ok(());
                }
                true // full → roll over
            } {
                self.pages.push(self.set.new_page()?);
            }
        }
    }

    /// Finishes building: the map becomes read-only and probe-able.
    pub fn build(self) -> Result<JoinMap> {
        self.set.declare_read(ReadPattern::Random)?;
        Ok(JoinMap {
            set: self.set,
            pages: self.pages,
            index: self.index,
            entries: self.entries,
        })
    }
}

/// A read-only multimap from keys to payload byte strings, with payloads
/// stored in pinned Pangea pages.
pub struct JoinMap {
    set: LocalitySet,
    pages: Vec<PagePin>,
    index: FxHashMap<u64, Vec<Slot>>,
    entries: u64,
}

impl std::fmt::Debug for JoinMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JoinMap")
            .field("set", &self.set.id())
            .field("pages", &self.pages.len())
            .field("entries", &self.entries)
            .finish()
    }
}

impl JoinMap {
    /// Total entries in the map.
    pub fn len(&self) -> u64 {
        self.entries
    }

    /// True when the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Number of backing pages.
    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }

    /// Probes the map, calling `f` for every payload whose key equals
    /// `key`. Returns the number of matches. Each probe is one hash
    /// lookup plus direct shared-memory reads at the recorded offsets.
    pub fn probe(&self, key: &[u8], mut f: impl FnMut(&[u8])) -> usize {
        let Some(slots) = self.index.get(&fx_hash64(key)) else {
            return 0;
        };
        let mut matches = 0;
        for &(page_idx, offset) in slots {
            let pin = &self.pages[page_idx as usize];
            let guard = pin.read();
            let at = offset as usize;
            let len = u32::from_le_bytes(guard[at..at + 4].try_into().expect("4 bytes")) as usize;
            let rec = &guard[at + 4..at + 4 + len];
            let klen = u16::from_le_bytes(rec[..2].try_into().expect("2 bytes")) as usize;
            if &rec[2..2 + klen] == key {
                f(&rec[2 + klen..]);
                matches += 1;
            }
        }
        matches
    }

    /// Collects the payloads for `key` (convenience; `probe` avoids the
    /// allocation).
    pub fn get(&self, key: &[u8]) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        self.probe(key, |p| out.push(p.to_vec()));
        out
    }

    /// True when the key has at least one entry (semi-join probes).
    pub fn contains(&self, key: &[u8]) -> bool {
        let mut found = false;
        self.probe(key, |_| found = true);
        found
    }

    /// Releases the map's storage.
    pub fn release(self) -> Result<()> {
        let node = self.set.node().clone();
        let id = self.set.id();
        drop(self.pages);
        self.set.end_lifetime()?;
        node.drop_set(id)
    }
}

/// The broadcast map service: builds a [`JoinMap`] on this node from an
/// existing locality set by extracting a key from every record. In the
/// distributed setting the cluster layer first copies the set to every
/// node, then calls this on each (paper §8).
pub fn broadcast_map(
    node: &StorageNode,
    source: &LocalitySet,
    map_name: &str,
    mut key_of: impl FnMut(&[u8]) -> Vec<u8>,
) -> Result<JoinMap> {
    let mut builder = JoinMapBuilder::with_page_size(node, map_name, source.page_size())?;
    source.declare_read(ReadPattern::Sequential)?;
    for num in source.page_numbers() {
        let pin = source.pin_page(num)?;
        let mut it = ObjectIter::new(&pin);
        let mut staged: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        while let Some(rec) = it.next() {
            staged.push((key_of(rec), rec.to_vec()));
        }
        drop(it);
        for (k, payload) in staged {
            builder.insert(&k, &payload)?;
        }
    }
    source.declare_idle()?;
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{NodeConfig, StorageNode};
    use pangea_common::KB;

    fn node(tag: &str, pool_kb: usize) -> StorageNode {
        let dir = std::env::temp_dir().join(format!(
            "pangea-join-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        StorageNode::new(
            NodeConfig::new(dir)
                .with_pool_capacity(pool_kb * KB)
                .with_page_size(KB),
        )
        .unwrap()
    }

    #[test]
    fn multimap_probe_returns_all_matches() {
        let n = node("probe", 64);
        let mut b = JoinMapBuilder::new(&n, "jm").unwrap();
        b.insert(b"k1", b"a").unwrap();
        b.insert(b"k2", b"b").unwrap();
        b.insert(b"k1", b"c").unwrap();
        let m = b.build().unwrap();
        assert_eq!(m.len(), 3);
        let mut vals = m.get(b"k1");
        vals.sort();
        assert_eq!(vals, vec![b"a".to_vec(), b"c".to_vec()]);
        assert_eq!(m.get(b"k2"), vec![b"b".to_vec()]);
        assert!(m.get(b"k3").is_empty());
        assert!(m.contains(b"k2"));
        assert!(!m.contains(b"k3"));
    }

    #[test]
    fn spans_many_pages() {
        let n = node("pages", 256);
        let mut b = JoinMapBuilder::new(&n, "jm").unwrap();
        for i in 0..500u32 {
            b.insert(
                format!("key-{:03}", i % 100).as_bytes(),
                format!("payload-{i:05}").as_bytes(),
            )
            .unwrap();
        }
        let m = b.build().unwrap();
        assert!(m.num_pages() > 1);
        for k in 0..100u32 {
            assert_eq!(m.get(format!("key-{k:03}").as_bytes()).len(), 5);
        }
    }

    #[test]
    fn hash_collisions_are_filtered_by_key_equality() {
        let n = node("collide", 64);
        let mut b = JoinMapBuilder::new(&n, "jm").unwrap();
        b.insert(b"aaa", b"1").unwrap();
        b.insert(b"bbb", b"2").unwrap();
        let m = b.build().unwrap();
        // Regardless of hash behaviour, only exact key matches count.
        assert_eq!(m.get(b"aaa"), vec![b"1".to_vec()]);
        assert_eq!(m.get(b"bbb"), vec![b"2".to_vec()]);
    }

    #[test]
    fn broadcast_map_from_set() {
        let n = node("bcast", 64);
        let s = n.create_set("src", SetOptions::write_back()).unwrap();
        let mut w = s.writer();
        for i in 0..50u32 {
            w.add_object(format!("{:02}|value-{i}", i % 10).as_bytes())
                .unwrap();
        }
        w.finish().unwrap();
        let m = broadcast_map(&n, &s, "src.map", |rec| rec[..2].to_vec()).unwrap();
        assert_eq!(m.len(), 50);
        assert_eq!(m.get(b"07").len(), 5);
        m.release().unwrap();
        assert_eq!(n.pool().pool_stats().pinned_pages, 0);
    }

    #[test]
    fn release_frees_pinned_pages() {
        let n = node("release", 64);
        let mut b = JoinMapBuilder::new(&n, "jm").unwrap();
        for i in 0..100u32 {
            b.insert(&i.to_le_bytes(), b"payload").unwrap();
        }
        let m = b.build().unwrap();
        assert!(n.pool().pool_stats().pinned_pages > 0);
        m.release().unwrap();
        assert_eq!(n.pool().pool_stats().pinned_pages, 0);
    }
}
