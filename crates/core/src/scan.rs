//! The sequential read service (paper §8 and Fig. 2).
//!
//! Two access paths, both exposing the paper's long-lived-worker model
//! (workers pull pages in a loop; there is no "wave of tasks" — §5):
//!
//! * [`LocalitySet::page_iterators`] — the `getPageIterators(numThreads)`
//!   API: N iterators sharing one atomic cursor over the set's pages.
//!   Each `next()` pins (and, if spilled, reloads) the next unclaimed
//!   page.
//! * [`DataProxy::scan`] — the Fig. 2 protocol: a storage thread answers
//!   the `GetSetPages` request by pinning pages ahead and pushing their
//!   metadata ("page pinned: id, offset") into a bounded, thread-safe
//!   circular buffer; worker threads pull pins from the buffer and read
//!   the page bytes through shared memory (the pool arena). A `NoMorePage`
//!   sentinel ends the scan.

use crate::set::LocalitySet;
use pangea_common::{PageNum, Result};
use pangea_paging::ReadPattern;
use pangea_storage::PagePin;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// One of N concurrent page iterators over a locality set.
///
/// All iterators from one [`LocalitySet::page_iterators`] call share a
/// cursor, so each page is delivered to exactly one iterator.
#[derive(Debug)]
pub struct PageIterator {
    set: LocalitySet,
    pages: Arc<Vec<PageNum>>,
    cursor: Arc<AtomicUsize>,
}

impl PageIterator {
    /// Pins and returns the next unclaimed page, or `None` when the scan
    /// is complete. Pages spilled to disk are transparently reloaded.
    #[allow(clippy::should_implement_trait)] // fallible iterator
    pub fn next(&mut self) -> Option<Result<PagePin>> {
        let i = self.cursor.fetch_add(1, Ordering::Relaxed);
        let num = *self.pages.get(i)?;
        Some(self.set.pin_page(num))
    }

    /// Total pages in the shared scan.
    pub fn total_pages(&self) -> usize {
        self.pages.len()
    }
}

impl LocalitySet {
    /// Returns `threads` iterators sharing one scan over the whole set
    /// (paper §8: `getPageIterators(numThreads)`). Declares the
    /// `sequential-read` pattern on the set.
    pub fn page_iterators(&self, threads: usize) -> Result<Vec<PageIterator>> {
        self.declare_read(ReadPattern::Sequential)?;
        let pages = Arc::new(self.page_numbers());
        let cursor = Arc::new(AtomicUsize::new(0));
        Ok((0..threads.max(1))
            .map(|_| PageIterator {
                set: self.clone(),
                pages: Arc::clone(&pages),
                cursor: Arc::clone(&cursor),
            })
            .collect())
    }

    /// Scans the whole set with `threads` worker threads through the
    /// Fig. 2 data-proxy protocol, calling `work` on every pinned page.
    /// Returns the number of pages processed.
    pub fn scan(
        &self,
        threads: usize,
        work: impl Fn(PagePin) -> Result<()> + Send + Sync,
    ) -> Result<usize> {
        DataProxy::new(self.clone()).scan(threads, work)
    }
}

/// Maximum capacity of the circular buffer between the storage thread
/// and the computation workers (Fig. 2). The effective capacity also
/// adapts to the pool so prefetch can never pin the whole pool.
const CIRCULAR_BUFFER_SLOTS: usize = 8;

/// The computation process's access point to the storage process
/// (paper §5): forwards `GetSetPages`, receives pinned-page metadata
/// through a bounded circular buffer, and hands pages to workers.
#[derive(Debug)]
pub struct DataProxy {
    set: LocalitySet,
}

impl DataProxy {
    /// A proxy bound to one locality set.
    pub fn new(set: LocalitySet) -> Self {
        Self { set }
    }

    /// Runs a full scan: one storage thread pins pages in order and
    /// pushes them into the circular buffer; `threads` workers pull and
    /// run `work`. Errors on either side abort the scan.
    pub fn scan(
        &self,
        threads: usize,
        work: impl Fn(PagePin) -> Result<()> + Send + Sync,
    ) -> Result<usize> {
        self.set.declare_read(ReadPattern::Sequential)?;
        // Budget the pins the scan holds concurrently (buffered pages +
        // one per worker + one in the producer's hand) against the pool,
        // so a small pool is streamed through rather than exhausted.
        let pool_pages = (self.set.node().pool().capacity() / self.set.page_size()).max(1);
        let threads = threads.max(1).min(pool_pages.saturating_sub(2).max(1));
        let slots = pool_pages
            .saturating_sub(threads + 1)
            .clamp(1, CIRCULAR_BUFFER_SLOTS);
        let (tx, rx) = crossbeam::channel::bounded::<PagePin>(slots);
        let set = self.set.clone();
        let pages = set.page_numbers();
        let total = pages.len();
        let processed = AtomicUsize::new(0);
        let result: Result<()> = std::thread::scope(|scope| {
            // The storage thread: answers GetSetPages by pinning pages
            // and publishing their metadata. Dropping `tx` at the end is
            // the NoMorePage sentinel.
            let producer = scope.spawn(move || -> Result<()> {
                for num in pages {
                    let pin = set.pin_page(num)?;
                    if tx.send(pin).is_err() {
                        break; // workers bailed out early
                    }
                }
                Ok(())
            });
            let mut workers = Vec::new();
            for _ in 0..threads {
                let rx = rx.clone();
                let work = &work;
                let processed = &processed;
                workers.push(scope.spawn(move || -> Result<()> {
                    // Long-lived worker loop: pull page metadata, access
                    // the page through shared memory, repeat (§5).
                    while let Ok(pin) = rx.recv() {
                        work(pin)?;
                        processed.fetch_add(1, Ordering::Relaxed);
                    }
                    Ok(())
                }));
            }
            drop(rx);
            let mut first_err = None;
            for w in workers {
                if let Err(e) = w.join().expect("worker panicked") {
                    first_err.get_or_insert(e);
                }
            }
            if let Err(e) = producer.join().expect("storage thread panicked") {
                first_err.get_or_insert(e);
            }
            match first_err {
                Some(e) => Err(e),
                None => Ok(()),
            }
        });
        result?;
        self.set.declare_idle()?;
        Ok(processed.load(Ordering::Relaxed).min(total))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::SetOptions;
    use crate::node::{NodeConfig, StorageNode};
    use crate::page::ObjectIter;
    use pangea_common::KB;
    use pangea_paging::CurrentOp;
    use std::sync::atomic::AtomicU64;

    fn node(tag: &str, pool_kb: usize) -> StorageNode {
        let dir = std::env::temp_dir().join(format!(
            "pangea-scan-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        StorageNode::new(
            NodeConfig::new(dir)
                .with_pool_capacity(pool_kb * KB)
                .with_page_size(KB),
        )
        .unwrap()
    }

    fn fill(set: &LocalitySet, n: u64) {
        let mut w = set.writer();
        for i in 0..n {
            w.add_object(&i.to_le_bytes()).unwrap();
        }
        w.finish().unwrap();
    }

    #[test]
    fn page_iterators_cover_every_page_exactly_once() {
        let n = node("iters", 64);
        let s = n.create_set("s", SetOptions::write_back()).unwrap();
        fill(&s, 500);
        let iters = s.page_iterators(4).unwrap();
        assert_eq!(s.attributes().op, CurrentOp::Read);
        let sum = Arc::new(AtomicU64::new(0));
        let count = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            for mut it in iters {
                let sum = Arc::clone(&sum);
                let count = Arc::clone(&count);
                scope.spawn(move || {
                    while let Some(pin) = it.next() {
                        let pin = pin.unwrap();
                        ObjectIter::new(&pin).for_each(|rec| {
                            sum.fetch_add(
                                u64::from_le_bytes(rec.try_into().unwrap()),
                                Ordering::Relaxed,
                            );
                            count.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        assert_eq!(count.load(Ordering::Relaxed), 500);
        assert_eq!(sum.load(Ordering::Relaxed), (0..500).sum::<u64>());
    }

    #[test]
    fn proxy_scan_visits_all_pages_with_small_pool() {
        // Pool holds 8 pages; the set has ~40: the scan must page data
        // back in from disk as it streams.
        let n = node("proxy", 8);
        let s = n.create_set("s", SetOptions::write_back()).unwrap();
        fill(&s, 1000);
        let total_pages = s.num_pages() as usize;
        assert!(total_pages > 8, "working set must exceed the pool");
        let seen = AtomicU64::new(0);
        let pages = s
            .scan(3, |pin| {
                ObjectIter::new(&pin).for_each(|rec| {
                    seen.fetch_add(
                        u64::from_le_bytes(rec.try_into().unwrap()),
                        Ordering::Relaxed,
                    );
                });
                Ok(())
            })
            .unwrap();
        assert_eq!(pages, total_pages);
        assert_eq!(seen.load(Ordering::Relaxed), (0..1000).sum::<u64>());
        assert_eq!(s.attributes().op, CurrentOp::None, "scan declared idle");
    }

    #[test]
    fn scan_of_empty_set_is_empty() {
        let n = node("empty", 16);
        let s = n.create_set("s", SetOptions::write_back()).unwrap();
        assert_eq!(s.scan(2, |_| Ok(())).unwrap(), 0);
        let mut iters = s.page_iterators(2).unwrap();
        assert!(iters[0].next().is_none());
        assert!(iters[1].next().is_none());
    }

    #[test]
    fn worker_errors_abort_the_scan() {
        let n = node("err", 16);
        let s = n.create_set("s", SetOptions::write_back()).unwrap();
        fill(&s, 50);
        let r = s.scan(2, |_pin| Err(pangea_common::PangeaError::usage("boom")));
        assert!(r.is_err());
    }

    #[test]
    fn repeated_scans_reread_spilled_data() {
        let n = node("rescan", 8);
        let s = n.create_set("s", SetOptions::write_back()).unwrap();
        fill(&s, 300);
        for _ in 0..3 {
            let cnt = AtomicU64::new(0);
            s.scan(2, |pin| {
                cnt.fetch_add(ObjectIter::new(&pin).count() as u64, Ordering::Relaxed);
                Ok(())
            })
            .unwrap();
            assert_eq!(cnt.load(Ordering::Relaxed), 300);
        }
    }
}
