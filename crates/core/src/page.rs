//! In-page record layout shared by the sequential, shuffle, and spill
//! services.
//!
//! Every page written by those services is self-framing: an 8-byte header
//! holding the number of payload bytes in use, followed by a stream of
//! length-prefixed records (`u32` little-endian length + payload). A page
//! can therefore be scanned by an [`ObjectIter`] with no external index —
//! this is the "object iterator" of the paper's sequential read service
//! (§8), and it works identically for pages filled by one sequential writer
//! or by many concurrent shuffle writers (the shuffle service appends whole
//! records, so the stream stays valid).

use pangea_common::{PangeaError, Result};
use pangea_storage::{PagePin, PageReadGuard};

/// Bytes reserved at the start of every record page.
pub const PAGE_HEADER: usize = 8;

/// Per-record framing overhead (the `u32` length prefix).
pub const RECORD_PREFIX: usize = 4;

/// Initializes `bytes` as an empty record page.
pub fn init_record_page(bytes: &mut [u8]) {
    debug_assert!(bytes.len() >= PAGE_HEADER);
    bytes[..PAGE_HEADER].copy_from_slice(&0u64.to_le_bytes());
}

/// Payload-region bytes currently used in an initialized record page.
pub fn used_bytes(bytes: &[u8]) -> usize {
    let mut hdr = [0u8; 8];
    hdr.copy_from_slice(&bytes[..PAGE_HEADER]);
    u64::from_le_bytes(hdr) as usize
}

fn set_used(bytes: &mut [u8], used: usize) {
    bytes[..PAGE_HEADER].copy_from_slice(&(used as u64).to_le_bytes());
}

/// Bytes still available for records in the page.
pub fn free_bytes(bytes: &[u8]) -> usize {
    bytes.len() - PAGE_HEADER - used_bytes(bytes)
}

/// Appends one length-prefixed record. Returns `false` (leaving the page
/// untouched) when the record does not fit.
pub fn append_record(bytes: &mut [u8], payload: &[u8]) -> bool {
    let need = RECORD_PREFIX + payload.len();
    let used = used_bytes(bytes);
    if used + need > bytes.len() - PAGE_HEADER {
        return false;
    }
    let at = PAGE_HEADER + used;
    bytes[at..at + 4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    bytes[at + 4..at + need].copy_from_slice(payload);
    set_used(bytes, used + need);
    true
}

/// Appends a pre-framed run of records (each already carrying its `u32`
/// length prefix), as produced by a shuffle staging buffer. Returns the
/// number of bytes consumed from `framed` — always a whole number of
/// records, possibly zero when nothing fits.
pub fn append_framed(bytes: &mut [u8], framed: &[u8]) -> usize {
    let mut fits = 0usize;
    let room = bytes.len() - PAGE_HEADER - used_bytes(bytes);
    while fits < framed.len() {
        let rest = &framed[fits..];
        if rest.len() < RECORD_PREFIX {
            break;
        }
        let len = u32::from_le_bytes(rest[..4].try_into().expect("4 bytes")) as usize;
        let rec = RECORD_PREFIX + len;
        if fits + rec > room || rec > rest.len() {
            break;
        }
        fits += rec;
    }
    if fits > 0 {
        let used = used_bytes(bytes);
        let at = PAGE_HEADER + used;
        bytes[at..at + fits].copy_from_slice(&framed[..fits]);
        set_used(bytes, used + fits);
    }
    fits
}

/// Iterates the records of one page snapshot (a byte slice from a read
/// guard or a disk read). A *lending* iterator: each `next` borrows the
/// underlying bytes, so no per-record allocation happens.
#[derive(Debug, Clone)]
pub struct RecordSlices<'a> {
    payload: &'a [u8],
    pos: usize,
}

impl<'a> RecordSlices<'a> {
    /// Builds an iterator over an initialized record page.
    pub fn new(page_bytes: &'a [u8]) -> Self {
        let used = used_bytes(page_bytes);
        Self {
            payload: &page_bytes[PAGE_HEADER..PAGE_HEADER + used],
            pos: 0,
        }
    }

    /// Validating variant for bytes read back from disk.
    pub fn checked(page_bytes: &'a [u8]) -> Result<Self> {
        if page_bytes.len() < PAGE_HEADER {
            return Err(PangeaError::Corruption("page shorter than header".into()));
        }
        let used = used_bytes(page_bytes);
        if used > page_bytes.len() - PAGE_HEADER {
            return Err(PangeaError::Corruption(format!(
                "page header claims {used} used bytes of {} available",
                page_bytes.len() - PAGE_HEADER
            )));
        }
        Ok(Self::new(page_bytes))
    }
}

impl<'a> Iterator for RecordSlices<'a> {
    type Item = &'a [u8];

    fn next(&mut self) -> Option<&'a [u8]> {
        if self.pos + RECORD_PREFIX > self.payload.len() {
            return None;
        }
        let len = u32::from_le_bytes(
            self.payload[self.pos..self.pos + 4]
                .try_into()
                .expect("4 bytes"),
        ) as usize;
        let start = self.pos + RECORD_PREFIX;
        if start + len > self.payload.len() {
            return None; // torn tail; treat as end of stream
        }
        self.pos = start + len;
        Some(&self.payload[start..start + len])
    }
}

/// The paper's object iterator (§8: `createObjectIterator(page)` /
/// `objIter->next()`): owns a read guard on a pinned page and lends out
/// record payloads one at a time without copying.
pub struct ObjectIter {
    guard: PageReadGuard,
    pos: usize,
    used: usize,
}

impl ObjectIter {
    /// Opens an iterator over a pinned record page.
    pub fn new(pin: &PagePin) -> Self {
        let guard = pin.read();
        let used = used_bytes(&guard);
        Self {
            guard,
            pos: 0,
            used,
        }
    }

    /// The next record payload, or `None` at end of page.
    #[allow(clippy::should_implement_trait)] // lending iterator: borrows self
    pub fn next(&mut self) -> Option<&[u8]> {
        let payload = &self.guard[PAGE_HEADER..PAGE_HEADER + self.used];
        if self.pos + RECORD_PREFIX > payload.len() {
            return None;
        }
        let len = u32::from_le_bytes(payload[self.pos..self.pos + 4].try_into().expect("4 bytes"))
            as usize;
        let start = self.pos + RECORD_PREFIX;
        if start + len > payload.len() {
            return None;
        }
        self.pos = start + len;
        Some(&payload[start..start + len])
    }

    /// Runs `f` over every remaining record.
    pub fn for_each(mut self, mut f: impl FnMut(&[u8])) {
        while let Some(rec) = self.next() {
            f(rec);
        }
    }

    /// Number of records remaining (consumes the iterator).
    pub fn count(mut self) -> usize {
        let mut n = 0;
        while self.next().is_some() {
            n += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(cap: usize) -> Vec<u8> {
        let mut v = vec![0xEEu8; cap];
        init_record_page(&mut v);
        v
    }

    #[test]
    fn empty_page_has_no_records() {
        let p = page(64);
        assert_eq!(used_bytes(&p), 0);
        assert_eq!(free_bytes(&p), 64 - PAGE_HEADER);
        assert_eq!(RecordSlices::new(&p).count(), 0);
    }

    #[test]
    fn append_and_iterate_roundtrip() {
        let mut p = page(128);
        assert!(append_record(&mut p, b"alpha"));
        assert!(append_record(&mut p, b""));
        assert!(append_record(&mut p, b"gamma!"));
        let recs: Vec<&[u8]> = RecordSlices::new(&p).collect();
        assert_eq!(recs, vec![b"alpha".as_slice(), b"", b"gamma!"]);
    }

    #[test]
    fn append_refuses_when_full() {
        let mut p = page(PAGE_HEADER + RECORD_PREFIX + 4);
        assert!(append_record(&mut p, b"1234"));
        assert!(!append_record(&mut p, b"x"), "no room for prefix+payload");
        assert_eq!(RecordSlices::new(&p).count(), 1);
    }

    #[test]
    fn append_framed_takes_whole_records_only() {
        let mut staged = Vec::new();
        for payload in [b"aa".as_slice(), b"bbbb", b"cc"] {
            staged.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            staged.extend_from_slice(payload);
        }
        // Room for the first two records only.
        let mut p = page(PAGE_HEADER + (4 + 2) + (4 + 4) + 3);
        let taken = append_framed(&mut p, &staged);
        assert_eq!(taken, (4 + 2) + (4 + 4));
        let recs: Vec<&[u8]> = RecordSlices::new(&p).collect();
        assert_eq!(recs, vec![b"aa".as_slice(), b"bbbb"]);
        // The remainder fits on a fresh page.
        let mut q = page(64);
        assert_eq!(append_framed(&mut q, &staged[taken..]), 4 + 2);
        assert_eq!(RecordSlices::new(&q).next(), Some(b"cc".as_slice()));
    }

    #[test]
    fn checked_rejects_corrupt_headers() {
        let mut p = page(32);
        set_used(&mut p, 1000);
        assert!(RecordSlices::checked(&p).is_err());
        assert!(RecordSlices::checked(&[0u8; 4]).is_err());
    }

    #[test]
    fn torn_record_tail_is_ignored() {
        let mut p = page(64);
        assert!(append_record(&mut p, b"ok"));
        // Simulate a torn write: header claims more bytes than one whole
        // record provides.
        let used = used_bytes(&p);
        set_used(&mut p, used + 5);
        let recs: Vec<&[u8]> = RecordSlices::new(&p).collect();
        assert_eq!(recs, vec![b"ok".as_slice()]);
    }
}
