//! A spill-capable membership ledger for dedup state (paper §3.1's
//! "job data" tier applied to session bookkeeping).
//!
//! Repair and shuffle-ingest sessions dedup retried batches by content
//! or provenance hash. Those ledgers used to be plain heap hash sets —
//! one more per-task structure growing outside the memory budget. A
//! [`SpillLedger`] keeps at most `threshold` entries in heap; when the
//! in-memory generation fills, it is sorted and flushed as a *run* of
//! record pages through the node's paged pool ([`LocalitySet::
//! spill_page_out`]), leaving only a per-page `(min, max, count)` index
//! in memory. Membership probes check the in-memory generation first,
//! then binary-search each run's page bounds and pin (reload) at most
//! one page per run — bounded by the pool like every other page access.
//!
//! The ledger also supports a *frozen snapshot*: the repair protocol
//! pages a session's seeded ledger out to survivors (`RepairLedger`)
//! and needs a stable enumeration even while new entries keep arriving.
//! Freezing records the current runs plus a sorted copy of the current
//! generation (≤ `threshold` entries); the snapshot enumerates exactly
//! the entries present at freeze time, in a stable order, regardless of
//! later inserts or flushes.

use crate::attributes::SetOptions;
use crate::node::StorageNode;
use crate::page::{self, RecordSlices};
use crate::set::LocalitySet;
use pangea_common::{FxHashSet, PageNum, PangeaError, Result};
use pangea_paging::{ReadPattern, WritePattern};

/// Default in-memory generation size: 64Ki hashes ≈ 512 KB of heap per
/// session before the first flush.
pub const DEFAULT_LEDGER_THRESHOLD: usize = 64 * 1024;

/// One flushed page of a sorted run.
#[derive(Debug, Clone, Copy)]
struct RunPage {
    num: PageNum,
    count: u64,
    min: u64,
    max: u64,
}

/// The frozen-snapshot bookkeeping: how many runs were flushed before
/// the freeze, plus a sorted copy of the generation at freeze time.
#[derive(Debug, Default)]
struct Frozen {
    runs: usize,
    tail: Vec<u64>,
}

/// A set of `u64` hashes whose memory footprint is capped: at most
/// `threshold` live heap entries, everything older in sorted runs of
/// pool-paged record pages.
#[derive(Debug)]
pub struct SpillLedger {
    node: StorageNode,
    name: String,
    threshold: usize,
    gen: FxHashSet<u64>,
    set: Option<LocalitySet>,
    runs: Vec<Vec<RunPage>>,
    spilled_len: u64,
    frozen: Option<Frozen>,
}

impl SpillLedger {
    /// Creates an empty ledger. The backing set `name` is created lazily
    /// on the first flush (small sessions never touch the pool); a
    /// leftover set under the same name (a predecessor that died without
    /// cleanup) is dropped first.
    pub fn new(node: &StorageNode, name: impl Into<String>, threshold: usize) -> Self {
        Self {
            node: node.clone(),
            name: name.into(),
            threshold: threshold.max(1),
            gen: FxHashSet::default(),
            set: None,
            runs: Vec::new(),
            spilled_len: 0,
            frozen: None,
        }
    }

    /// Total entries inserted (assuming callers honor the
    /// check-then-insert contract of [`SpillLedger::insert`]).
    pub fn len(&self) -> u64 {
        self.spilled_len + self.gen.len() as u64
    }

    /// True when no entry was ever inserted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entries flushed out of heap so far.
    pub fn spilled_len(&self) -> u64 {
        self.spilled_len
    }

    /// Membership probe: the in-memory generation, then at most one
    /// page pin per flushed run.
    pub fn contains(&self, h: u64) -> Result<bool> {
        if self.gen.contains(&h) {
            return Ok(true);
        }
        let Some(set) = &self.set else {
            return Ok(false);
        };
        for run in &self.runs {
            let idx = run.partition_point(|p| p.max < h);
            let Some(p) = run.get(idx) else { continue };
            if h < p.min {
                continue;
            }
            let pin = set.pin_page(p.num)?;
            let guard = pin.read();
            for rec in RecordSlices::new(&guard) {
                let v = u64::from_le_bytes(
                    rec.try_into()
                        .map_err(|_| PangeaError::Corruption("ledger record length".into()))?,
                );
                if v == h {
                    return Ok(true);
                }
                if v > h {
                    break; // runs are sorted within a page
                }
            }
        }
        Ok(false)
    }

    /// Inserts `h` into the current generation, flushing it as a run
    /// when full. Callers must have checked [`SpillLedger::contains`]
    /// first — a duplicate of a flushed entry stays correct for
    /// membership but inflates `len`.
    pub fn insert(&mut self, h: u64) -> Result<()> {
        if self.gen.insert(h) && self.gen.len() >= self.threshold {
            self.flush_gen()?;
        }
        Ok(())
    }

    /// Checked insert: returns `true` when `h` was absent and is now a
    /// member. This is the one-call form of check-then-insert.
    pub fn insert_if_absent(&mut self, h: u64) -> Result<bool> {
        if self.contains(h)? {
            return Ok(false);
        }
        self.insert(h)?;
        Ok(true)
    }

    fn backing_set(&mut self) -> Result<&LocalitySet> {
        if self.set.is_none() {
            if let Some(leftover) = self.node.get_set(&self.name) {
                self.node.drop_set(leftover.id())?;
            }
            let set = self.node.create_set(&self.name, SetOptions::write_back())?;
            set.declare_write(WritePattern::Sequential)?;
            set.declare_read(ReadPattern::Random)?;
            self.set = Some(set);
        }
        Ok(self.set.as_ref().expect("just created"))
    }

    /// Sorts and flushes the in-memory generation as one run of spilled
    /// record pages, leaving only the per-page index in heap.
    fn flush_gen(&mut self) -> Result<()> {
        if self.gen.is_empty() {
            return Ok(());
        }
        let mut sorted: Vec<u64> = self.gen.drain().collect();
        sorted.sort_unstable();
        let set = self.backing_set()?.clone();
        let mut pages = Vec::new();
        let mut i = 0;
        while i < sorted.len() {
            let pin = set.new_page()?;
            let start = i;
            {
                let mut guard = pin.write();
                while i < sorted.len() && page::append_record(&mut guard, &sorted[i].to_le_bytes())
                {
                    i += 1;
                }
            }
            debug_assert!(i > start, "a fresh page holds at least one hash");
            pages.push(RunPage {
                num: pin.page_id().num,
                count: (i - start) as u64,
                min: sorted[start],
                max: sorted[i - 1],
            });
            set.spill_page_out(pin)?;
        }
        self.spilled_len += sorted.len() as u64;
        self.runs.push(pages);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Frozen snapshot (stable enumeration for the repair protocol)
    // ------------------------------------------------------------------

    /// Freezes the current membership for stable enumeration: the runs
    /// flushed so far plus a sorted copy of the in-memory generation.
    /// Later inserts and flushes do not disturb the snapshot (runs are
    /// append-only and never rewritten).
    pub fn freeze_snapshot(&mut self) {
        let mut tail: Vec<u64> = self.gen.iter().copied().collect();
        tail.sort_unstable();
        self.frozen = Some(Frozen {
            runs: self.runs.len(),
            tail,
        });
    }

    /// Entries in the frozen snapshot. Zero when never frozen.
    pub fn snapshot_len(&self) -> u64 {
        let Some(f) = &self.frozen else { return 0 };
        let spilled: u64 = self.runs[..f.runs]
            .iter()
            .flat_map(|r| r.iter())
            .map(|p| p.count)
            .sum();
        spilled + f.tail.len() as u64
    }

    /// Returns up to `limit` snapshot entries starting at global index
    /// `start` (frozen runs in flush order, then the frozen tail).
    pub fn snapshot_chunk(&self, start: u64, limit: usize) -> Result<Vec<u64>> {
        let Some(f) = &self.frozen else {
            return Ok(Vec::new());
        };
        let mut out = Vec::with_capacity(limit.min(1024));
        let mut skip = start;
        for run in &self.runs[..f.runs] {
            for p in run {
                if out.len() >= limit {
                    return Ok(out);
                }
                if skip >= p.count {
                    skip -= p.count;
                    continue;
                }
                let set = self.set.as_ref().expect("runs imply a backing set");
                let pin = set.pin_page(p.num)?;
                let guard = pin.read();
                for rec in RecordSlices::new(&guard) {
                    if skip > 0 {
                        skip -= 1;
                        continue;
                    }
                    if out.len() >= limit {
                        return Ok(out);
                    }
                    let v = u64::from_le_bytes(
                        rec.try_into()
                            .map_err(|_| PangeaError::Corruption("ledger record length".into()))?,
                    );
                    out.push(v);
                }
            }
        }
        let skip = skip as usize;
        if skip < f.tail.len() {
            let take = limit.saturating_sub(out.len());
            out.extend(f.tail[skip..].iter().take(take).copied());
        }
        Ok(out)
    }
}

impl Drop for SpillLedger {
    fn drop(&mut self) {
        // Best-effort: a session torn down mid-job must not leak its
        // backing set (name collisions on retry, stranded disk files).
        if let Some(set) = self.set.take() {
            let _ = set.end_lifetime();
            let id = set.id();
            let _ = set.node().drop_set(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeConfig;
    use pangea_common::KB;

    fn node(tag: &str) -> StorageNode {
        let dir = std::env::temp_dir().join(format!(
            "pangea-ledger-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        StorageNode::new(
            NodeConfig::new(dir)
                .with_pool_capacity(16 * KB)
                .with_page_size(KB),
        )
        .unwrap()
    }

    #[test]
    fn small_ledgers_stay_in_heap() {
        let n = node("small");
        let mut l = SpillLedger::new(&n, "led", 100);
        for h in 0..50u64 {
            assert!(l.insert_if_absent(h).unwrap());
        }
        assert!(!l.insert_if_absent(7).unwrap());
        assert_eq!(l.len(), 50);
        assert_eq!(l.spilled_len(), 0);
        assert!(n.get_set("led").is_none(), "no backing set until a flush");
    }

    #[test]
    fn membership_survives_spilling() {
        let n = node("spill");
        let mut l = SpillLedger::new(&n, "led", 64);
        // Insert enough to force several runs through a 16 KB pool.
        for h in (0..1000u64).map(|i| i * 7 + 3) {
            l.insert(h).unwrap();
        }
        assert!(l.spilled_len() > 0, "threshold 64 must have flushed");
        assert_eq!(l.len(), 1000);
        for h in (0..1000u64).map(|i| i * 7 + 3) {
            assert!(l.contains(h).unwrap(), "lost {h}");
        }
        assert!(!l.contains(1).unwrap());
        assert!(!l.contains(7 * 1000 + 3).unwrap());
    }

    #[test]
    fn frozen_snapshot_is_stable_and_complete() {
        let n = node("freeze");
        let mut l = SpillLedger::new(&n, "led", 32);
        let seeded: Vec<u64> = (0..200u64).map(|i| i * 13 + 1).collect();
        for &h in &seeded {
            l.insert(h).unwrap();
        }
        l.freeze_snapshot();
        assert_eq!(l.snapshot_len(), 200);
        // Keep inserting after the freeze; the snapshot must not move.
        for h in (0..500u64).map(|i| i * 17 + 2) {
            l.insert_if_absent(h).unwrap();
        }
        let mut all = Vec::new();
        let mut start = 0;
        loop {
            let chunk = l.snapshot_chunk(start, 37).unwrap();
            if chunk.is_empty() {
                break;
            }
            start += chunk.len() as u64;
            all.extend(chunk);
        }
        let mut want = seeded.clone();
        want.sort_unstable();
        all.sort_unstable();
        assert_eq!(all, want);
    }

    #[test]
    fn drop_releases_the_backing_set() {
        let n = node("drop");
        {
            let mut l = SpillLedger::new(&n, "led", 8);
            for h in 0..100u64 {
                l.insert(h).unwrap();
            }
            assert!(n.get_set("led").is_some());
        }
        assert!(n.get_set("led").is_none(), "drop must release the set");
        assert_eq!(n.pool().pool_stats().pinned_pages, 0);
    }

    #[test]
    fn leftover_set_from_a_dead_predecessor_is_replaced() {
        let n = node("leftover");
        {
            let mut l = SpillLedger::new(&n, "led", 4);
            for h in 0..20u64 {
                l.insert(h).unwrap();
            }
            // Simulate a crash: forget the ledger without Drop.
            std::mem::forget(l);
        }
        assert!(n.get_set("led").is_some(), "leaked by the forget");
        let mut l2 = SpillLedger::new(&n, "led", 4);
        for h in 100..120u64 {
            l2.insert(h).unwrap();
        }
        assert!(l2.contains(110).unwrap());
        assert!(!l2.contains(5).unwrap(), "previous life's entries are gone");
    }
}
