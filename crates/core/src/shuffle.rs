//! The shuffle service and virtual shuffle buffer (paper §8).
//!
//! For shuffling, all data elements dispatched to the same partition are
//! grouped in one locality set — one set per partition, so a node spills
//! at most `numPartitions` files instead of Spark's
//! `numCores × numPartitions` (§9.2.2).
//!
//! Many writer threads append to the *same* page of a partition's set
//! concurrently (the `concurrent-write` pattern). A secondary small-page
//! allocator makes that cheap: each [`VirtualShuffleBuffer`] stages
//! records into a thread-private small page (a few KB of the big page's
//! capacity) and publishes it with a single reservation + `memcpy` into
//! the partition's current big page. Because records are self-framing
//! and published whole, the big page remains a valid record page that
//! the sequential read service can scan directly.

use crate::attributes::SetOptions;
use crate::node::StorageNode;
use crate::page;
use crate::set::LocalitySet;
use pangea_common::{PangeaError, PartitionId, Result};
use pangea_paging::WritePattern;
use pangea_storage::PagePin;
use parking_lot::Mutex;
use std::sync::Arc;

/// Default staging (small page) size: 1/16 of the big page.
fn default_small_page(page_size: usize) -> usize {
    (page_size / 16).max(page::RECORD_PREFIX + 16)
}

/// Shuffle service construction parameters.
#[derive(Debug, Clone)]
pub struct ShuffleConfig {
    /// Number of shuffle partitions (one locality set each).
    pub partitions: u32,
    /// Big-page size for the partition sets; `None` uses the node default.
    pub page_size: Option<usize>,
    /// Small-page (staging) size; `None` derives 1/16 of the page size.
    pub small_page_size: Option<usize>,
}

impl ShuffleConfig {
    /// A shuffle over `partitions` partitions with default sizing.
    pub fn new(partitions: u32) -> Self {
        Self {
            partitions,
            page_size: None,
            small_page_size: None,
        }
    }

    /// Overrides the big-page size.
    pub fn with_page_size(mut self, bytes: usize) -> Self {
        self.page_size = Some(bytes);
        self
    }

    /// Overrides the staging small-page size.
    pub fn with_small_page_size(mut self, bytes: usize) -> Self {
        self.small_page_size = Some(bytes);
        self
    }
}

/// Per-partition shared state: the partition's locality set and the big
/// page currently open for concurrent writing.
#[derive(Debug)]
struct PartitionSink {
    set: LocalitySet,
    current: Mutex<Option<PagePin>>,
}

impl PartitionSink {
    /// Publishes a staged run of framed records into the partition's
    /// current big page, rolling to a fresh page when full. This is the
    /// small-page allocator's "reserve region in the big page" step.
    fn publish(&self, mut framed: &[u8]) -> Result<()> {
        while !framed.is_empty() {
            let mut current = self.current.lock();
            if current.is_none() {
                *current = Some(self.set.new_page()?);
            }
            let pin = current.as_ref().expect("just ensured");
            let taken = page::append_framed(&mut pin.write(), framed);
            framed = &framed[taken..];
            if !framed.is_empty() {
                // Big page full: seal and roll over.
                let full = current.take().expect("held above");
                drop(current);
                self.set.seal_page(&full)?;
            }
        }
        Ok(())
    }

    fn finish(&self) -> Result<()> {
        let page = self.current.lock().take();
        if let Some(pin) = page {
            self.set.seal_page(&pin)?;
        }
        self.set.declare_idle()
    }
}

/// The node-local shuffle service: `partitions` write-back locality sets
/// accepting concurrent writers through virtual shuffle buffers.
#[derive(Debug, Clone)]
pub struct ShuffleService {
    sinks: Arc<Vec<PartitionSink>>,
    small_page_size: usize,
}

impl ShuffleService {
    /// Creates the per-partition locality sets
    /// (`<name>.part0 … <name>.partN-1`) on `node`.
    pub fn create(node: &StorageNode, name: &str, config: ShuffleConfig) -> Result<Self> {
        if config.partitions == 0 {
            return Err(PangeaError::config("shuffle needs at least one partition"));
        }
        let page_size = config.page_size.unwrap_or(node.default_page_size());
        let small = config
            .small_page_size
            .unwrap_or_else(|| default_small_page(page_size));
        if small + page::PAGE_HEADER > page_size {
            return Err(PangeaError::config(format!(
                "small page {small} B does not fit the {page_size} B big page"
            )));
        }
        let mut sinks = Vec::with_capacity(config.partitions as usize);
        for p in 0..config.partitions {
            let set = node.create_set(
                &format!("{name}.part{p}"),
                SetOptions::write_back().with_page_size(page_size),
            )?;
            // Shuffle teaches the set its pattern (§3.2): concurrent-write.
            set.declare_write(WritePattern::Concurrent)?;
            sinks.push(PartitionSink {
                set,
                current: Mutex::new(None),
            });
        }
        Ok(Self {
            sinks: Arc::new(sinks),
            small_page_size: small,
        })
    }

    /// Number of partitions.
    pub fn partitions(&self) -> u32 {
        self.sinks.len() as u32
    }

    /// The locality set holding one partition's data (readable with the
    /// sequential read service once writers finished).
    pub fn partition_set(&self, p: PartitionId) -> Result<&LocalitySet> {
        self.sinks
            .get(p.raw() as usize)
            .map(|s| &s.set)
            .ok_or_else(|| PangeaError::usage(format!("{p} out of range")))
    }

    /// Allocates a virtual shuffle buffer for one (worker, partition)
    /// pair — the paper's
    /// `shuffledData.getVirtualShuffleBuffer(workerId, partitionId)`.
    pub fn virtual_buffer(&self, p: PartitionId) -> Result<VirtualShuffleBuffer> {
        if p.raw() as usize >= self.sinks.len() {
            return Err(PangeaError::usage(format!("{p} out of range")));
        }
        Ok(VirtualShuffleBuffer {
            sinks: Arc::clone(&self.sinks),
            partition: p,
            staging: Vec::with_capacity(self.small_page_size),
            small_page_size: self.small_page_size,
        })
    }

    /// Seals all in-progress big pages. Call after every writer flushed.
    pub fn finish_writes(&self) -> Result<()> {
        for sink in self.sinks.iter() {
            sink.finish()?;
        }
        Ok(())
    }

    /// Ends the lifetime of every partition set (shuffle data spans two
    /// job stages; call this after the consuming stage).
    pub fn end_lifetime(&self) -> Result<()> {
        for sink in self.sinks.iter() {
            sink.set.end_lifetime()?;
        }
        Ok(())
    }
}

/// A thread-private shuffle writer for one partition: stages records in
/// a small page and publishes them to the partition's shared big page.
#[derive(Debug)]
pub struct VirtualShuffleBuffer {
    sinks: Arc<Vec<PartitionSink>>,
    partition: PartitionId,
    staging: Vec<u8>,
    small_page_size: usize,
}

impl VirtualShuffleBuffer {
    /// The partition this buffer feeds.
    pub fn partition(&self) -> PartitionId {
        self.partition
    }

    /// Appends one record (the paper's `buffer->addObject(record)`).
    pub fn add_object(&mut self, payload: &[u8]) -> Result<()> {
        let sink = &self.sinks[self.partition.raw() as usize];
        let max_payload = sink.set.page_size() - page::PAGE_HEADER - page::RECORD_PREFIX;
        if payload.len() > max_payload {
            return Err(PangeaError::usage(format!(
                "shuffle object of {} B exceeds page capacity {max_payload} B",
                payload.len()
            )));
        }
        self.staging
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.staging.extend_from_slice(payload);
        if self.staging.len() >= self.small_page_size {
            self.flush()?;
        }
        Ok(())
    }

    /// Publishes the staged small page to the shared big page.
    pub fn flush(&mut self) -> Result<()> {
        if self.staging.is_empty() {
            return Ok(());
        }
        let sink = &self.sinks[self.partition.raw() as usize];
        sink.publish(&self.staging)?;
        self.staging.clear();
        Ok(())
    }
}

impl Drop for VirtualShuffleBuffer {
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeConfig;
    use crate::page::ObjectIter;
    use pangea_common::{fx_hash64, KB};
    use std::collections::BTreeSet;

    fn node(tag: &str, pool_kb: usize) -> StorageNode {
        let dir = std::env::temp_dir().join(format!(
            "pangea-shuffle-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        StorageNode::new(
            NodeConfig::new(dir)
                .with_pool_capacity(pool_kb * KB)
                .with_page_size(2 * KB),
        )
        .unwrap()
    }

    fn read_partition(svc: &ShuffleService, p: u32) -> Vec<Vec<u8>> {
        let set = svc.partition_set(PartitionId(p)).unwrap();
        let mut out = Vec::new();
        for num in set.page_numbers() {
            let pin = set.pin_page(num).unwrap();
            ObjectIter::new(&pin).for_each(|r| out.push(r.to_vec()));
        }
        out
    }

    #[test]
    fn records_route_to_their_partitions() {
        let n = node("route", 64);
        let svc = ShuffleService::create(&n, "sh", ShuffleConfig::new(4)).unwrap();
        let mut bufs: Vec<_> = (0..4)
            .map(|p| svc.virtual_buffer(PartitionId(p)).unwrap())
            .collect();
        for i in 0..200u64 {
            let rec = format!("key-{i}");
            let p = (fx_hash64(rec.as_bytes()) % 4) as usize;
            bufs[p].add_object(rec.as_bytes()).unwrap();
        }
        for b in &mut bufs {
            b.flush().unwrap();
        }
        svc.finish_writes().unwrap();
        let mut total = 0;
        for p in 0..4 {
            for rec in read_partition(&svc, p) {
                let s = String::from_utf8(rec).unwrap();
                assert_eq!(fx_hash64(s.as_bytes()) % 4, p as u64);
                total += 1;
            }
        }
        assert_eq!(total, 200);
    }

    #[test]
    fn concurrent_writers_share_one_partition_page() {
        let n = node("conc", 256);
        let svc = ShuffleService::create(&n, "sh", ShuffleConfig::new(1)).unwrap();
        std::thread::scope(|scope| {
            for t in 0..4u32 {
                let svc = svc.clone();
                scope.spawn(move || {
                    let mut buf = svc.virtual_buffer(PartitionId(0)).unwrap();
                    for i in 0..100u32 {
                        buf.add_object(format!("w{t}-{i:03}").as_bytes()).unwrap();
                    }
                    buf.flush().unwrap();
                });
            }
        });
        svc.finish_writes().unwrap();
        let recs = read_partition(&svc, 0);
        assert_eq!(recs.len(), 400, "no record lost or torn");
        let unique: BTreeSet<_> = recs.iter().collect();
        assert_eq!(unique.len(), 400, "no record duplicated");
        // All four writers interleave within few pages — far fewer than
        // one page per (writer, batch).
        let set = svc.partition_set(PartitionId(0)).unwrap();
        assert!(set.num_pages() <= 4, "pages: {}", set.num_pages());
    }

    #[test]
    fn spills_when_working_set_exceeds_pool() {
        // 16 KB pool, 2 KB pages -> 8 resident pages; write ~64 KB.
        let n = node("spill", 16);
        let svc = ShuffleService::create(&n, "sh", ShuffleConfig::new(2)).unwrap();
        for p in 0..2u32 {
            let mut buf = svc.virtual_buffer(PartitionId(p)).unwrap();
            for i in 0..400u64 {
                buf.add_object(format!("p{p}-{i:05}-payloadpayload").as_bytes())
                    .unwrap();
            }
            buf.flush().unwrap();
        }
        svc.finish_writes().unwrap();
        assert!(
            n.disk_stats().snapshot().pages_flushed > 0,
            "shuffle data must have spilled"
        );
        // Reading back still sees everything, reloading spilled pages.
        assert_eq!(read_partition(&svc, 0).len(), 400);
        assert_eq!(read_partition(&svc, 1).len(), 400);
    }

    #[test]
    fn concurrent_readers_reload_spilled_pages_consistently() {
        // Regression: eviction used to remove a page from the pool
        // before flushing it, so a concurrent reader missing the pool
        // could read a stale or in-flight on-disk image.
        let n = node("racer", 16);
        let svc = ShuffleService::create(&n, "sh", ShuffleConfig::new(4)).unwrap();
        for p in 0..4u32 {
            let mut buf = svc.virtual_buffer(PartitionId(p)).unwrap();
            for i in 0..300u64 {
                buf.add_object(format!("p{p}-{i:05}-payload").as_bytes())
                    .unwrap();
            }
            buf.flush().unwrap();
        }
        svc.finish_writes().unwrap();
        std::thread::scope(|scope| {
            for p in 0..4u32 {
                let svc = svc.clone();
                scope.spawn(move || {
                    for _ in 0..5 {
                        let set = svc.partition_set(PartitionId(p)).unwrap();
                        let mut seen = 0;
                        for num in set.page_numbers() {
                            let pin = set.pin_page(num).unwrap();
                            ObjectIter::new(&pin).for_each(|rec| {
                                assert!(rec.starts_with(format!("p{p}-").as_bytes()));
                                seen += 1;
                            });
                        }
                        assert_eq!(seen, 300, "partition {p} torn");
                    }
                });
            }
        });
    }

    #[test]
    fn lifetime_end_drops_partitions() {
        let n = node("life", 64);
        let svc = ShuffleService::create(&n, "sh", ShuffleConfig::new(2)).unwrap();
        let mut buf = svc.virtual_buffer(PartitionId(0)).unwrap();
        buf.add_object(b"x").unwrap();
        buf.flush().unwrap();
        svc.finish_writes().unwrap();
        svc.end_lifetime().unwrap();
        assert_eq!(n.disk_stats().snapshot().pages_flushed, 0);
        assert_eq!(
            svc.partition_set(PartitionId(0)).unwrap().resident_pages(),
            0
        );
    }

    #[test]
    fn invalid_configs_rejected() {
        let n = node("cfg", 64);
        assert!(ShuffleService::create(&n, "s0", ShuffleConfig::new(0)).is_err());
        assert!(ShuffleService::create(
            &n,
            "s1",
            ShuffleConfig::new(1).with_small_page_size(4 * KB)
        )
        .is_err());
        let svc = ShuffleService::create(&n, "s2", ShuffleConfig::new(2)).unwrap();
        assert!(svc.virtual_buffer(PartitionId(9)).is_err());
        assert!(svc.partition_set(PartitionId(9)).is_err());
    }
}
