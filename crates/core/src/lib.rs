//! # pangea-core
//!
//! The paper's primary contribution: a per-node monolithic storage engine
//! that manages *all* data — user data, job data, shuffle data, hash
//! data — in one unified buffer pool, with locality sets as the unit of
//! storage and paging (paper §3–§6, §8).
//!
//! * [`StorageNode`] — one node's engine: unified buffer pool, user-level
//!   file system, and the data-aware paging loop.
//! * [`LocalitySet`] — the application-facing dataset handle, carrying
//!   the Table 1 attributes that the paging system consumes.
//! * Services (paper §8), each of which teaches the locality set its
//!   access pattern at runtime:
//!   * sequential write — [`SeqWriter`]
//!   * sequential read — [`PageIterator`] / [`DataProxy`] (Fig. 2)
//!   * shuffle — [`ShuffleService`] / [`VirtualShuffleBuffer`]
//!   * hash aggregation — [`VirtualHashBuffer`]
//!   * join & broadcast maps — [`JoinMap`] / [`broadcast_map`]
//!
//! The distributed pieces (manager, dispatch, heterogeneous replication,
//! recovery) live in `pangea-cluster` and drive these per-node engines.

pub mod attributes;
pub mod hash;
pub mod hashpage;
pub mod join;
pub mod ledger;
pub mod node;
pub mod page;
pub mod scan;
pub mod seq;
pub mod set;
pub mod shuffle;

pub use attributes::{SetAttributes, SetOptions};
pub use hash::{
    counting_hash_buffer, CountingHashBuffer, HashConfig, ReduceBuffer, VirtualHashBuffer,
};
pub use join::{broadcast_map, JoinMap, JoinMapBuilder};
pub use ledger::SpillLedger;
pub use node::{NodeConfig, PagingStats, StorageNode};
pub use page::{ObjectIter, RecordSlices};
pub use scan::{DataProxy, PageIterator};
pub use seq::SeqWriter;
pub use set::LocalitySet;
pub use shuffle::{ShuffleConfig, ShuffleService, VirtualShuffleBuffer};

// Re-export the attribute vocabulary so applications need only this crate.
pub use pangea_paging::{CurrentOp, Durability, ReadPattern, WritePattern};
