//! The sequential write service (paper §8).
//!
//! A [`SeqWriter`] is the paper's "sequential allocator": it allocates
//! bytes from its current page's host memory sequentially; when a page
//! fills up the writer seals it (persisting under `write-through`),
//! unpins it, and pins a fresh page. Each of multiple threads uses its
//! *own* writer, so threads write to separate pages — exactly the paper's
//! "allows each of multiple threads to use a sequential allocator to
//! write to a separate page in a locality set".

use crate::page;
use crate::set::LocalitySet;
use pangea_common::{PangeaError, Record, Result};
use pangea_paging::WritePattern;
use pangea_storage::PagePin;

/// A sequential, append-only writer over one locality set.
#[derive(Debug)]
pub struct SeqWriter {
    set: LocalitySet,
    current: Option<PagePin>,
    objects_written: u64,
    /// Scratch buffer reused across [`SeqWriter::add_record`] calls.
    scratch: Vec<u8>,
}

impl SeqWriter {
    pub(crate) fn new(set: LocalitySet) -> Self {
        // Using the writer teaches the set its writing pattern (§3.2):
        // the sequential write service implies `sequential-write`.
        let _ = set.declare_write(WritePattern::Sequential);
        Self {
            set,
            current: None,
            objects_written: 0,
            scratch: Vec::new(),
        }
    }

    /// The set this writer appends to.
    pub fn set(&self) -> &LocalitySet {
        &self.set
    }

    /// Objects written so far through this writer.
    pub fn objects_written(&self) -> u64 {
        self.objects_written
    }

    /// Appends one object (raw payload bytes). The paper's
    /// `myData.addObject(myObject)`.
    pub fn add_object(&mut self, payload: &[u8]) -> Result<()> {
        let max_payload = self.set.page_size() - page::PAGE_HEADER - page::RECORD_PREFIX;
        if payload.len() > max_payload {
            return Err(PangeaError::usage(format!(
                "object of {} B exceeds page capacity {max_payload} B",
                payload.len()
            )));
        }
        loop {
            if self.current.is_none() {
                self.current = Some(self.set.new_page()?);
            }
            let pin = self.current.as_ref().expect("just ensured");
            if page::append_record(&mut pin.write(), payload) {
                self.objects_written += 1;
                return Ok(());
            }
            // Page full: seal it and retry on a fresh one.
            self.seal_current()?;
        }
    }

    /// Appends one typed record (encoded through the workspace codec).
    /// The paper's `myData.addData(myVec)` generalized over [`Record`].
    pub fn add_record<R: Record>(&mut self, record: &R) -> Result<()> {
        self.scratch.clear();
        record.encode(&mut self.scratch);
        let bytes = std::mem::take(&mut self.scratch);
        let result = self.add_object(&bytes);
        self.scratch = bytes;
        result
    }

    /// Appends every record of an iterator.
    pub fn add_all<R: Record>(&mut self, records: impl IntoIterator<Item = R>) -> Result<()> {
        for r in records {
            self.add_record(&r)?;
        }
        Ok(())
    }

    /// Seals the current page (if any): persists it under
    /// `write-through`, then unpins it so it becomes evictable.
    pub fn seal_current(&mut self) -> Result<()> {
        if let Some(pin) = self.current.take() {
            self.set.seal_page(&pin)?;
        }
        Ok(())
    }

    /// Finishes writing: seals the in-progress page and marks the set
    /// idle. Must be called; dropping a writer with an unsealed page
    /// seals it on a best-effort basis.
    pub fn finish(&mut self) -> Result<()> {
        self.seal_current()?;
        self.set.declare_idle()
    }
}

impl Drop for SeqWriter {
    fn drop(&mut self) {
        let _ = self.seal_current();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::SetOptions;
    use crate::node::{NodeConfig, StorageNode};
    use crate::page::ObjectIter;
    use pangea_common::KB;

    fn node(tag: &str) -> StorageNode {
        let dir = std::env::temp_dir().join(format!(
            "pangea-seq-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        StorageNode::new(
            NodeConfig::new(dir)
                .with_pool_capacity(64 * KB)
                .with_page_size(KB),
        )
        .unwrap()
    }

    fn read_all(set: &LocalitySet) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        for num in set.page_numbers() {
            let pin = set.pin_page(num).unwrap();
            ObjectIter::new(&pin).for_each(|r| out.push(r.to_vec()));
        }
        out
    }

    #[test]
    fn writes_roll_over_page_boundaries() {
        let n = node("rollover");
        let s = n.create_set("s", SetOptions::write_back()).unwrap();
        let mut w = s.writer();
        // 1 KB pages hold ~12 such records; write 100 to force rollover.
        for i in 0..100u64 {
            w.add_object(format!("record-{i:04}").as_bytes()).unwrap();
        }
        w.finish().unwrap();
        assert!(s.num_pages() > 1, "must have rolled over");
        let recs = read_all(&s);
        assert_eq!(recs.len(), 100);
        assert_eq!(recs[0], b"record-0000");
        assert_eq!(recs[99], b"record-0099");
        assert_eq!(w.objects_written(), 100);
    }

    #[test]
    fn oversized_objects_are_rejected() {
        let n = node("oversize");
        let s = n.create_set("s", SetOptions::write_back()).unwrap();
        let mut w = s.writer();
        assert!(w.add_object(&vec![0u8; 2 * KB]).is_err());
    }

    #[test]
    fn typed_records_roundtrip() {
        let n = node("typed");
        let s = n.create_set("s", SetOptions::write_back()).unwrap();
        let mut w = s.writer();
        w.add_record(&vec![1.0f64, 2.0, 3.0]).unwrap();
        w.add_all((0..3u64).map(|i| format!("s{i}"))).unwrap();
        w.finish().unwrap();
        let recs = read_all(&s);
        assert_eq!(recs.len(), 4);
        let v = <Vec<f64> as Record>::decode(&recs[0]).unwrap();
        assert_eq!(v, vec![1.0, 2.0, 3.0]);
        assert_eq!(recs[1], b"s0");
    }

    #[test]
    fn two_writers_use_separate_pages() {
        let n = node("two");
        let s = n.create_set("s", SetOptions::write_back()).unwrap();
        let mut w1 = s.writer();
        let mut w2 = s.writer();
        w1.add_object(b"from-w1").unwrap();
        w2.add_object(b"from-w2").unwrap();
        w1.finish().unwrap();
        w2.finish().unwrap();
        assert_eq!(s.num_pages(), 2, "each writer pinned its own page");
        let mut recs = read_all(&s);
        recs.sort();
        assert_eq!(recs, vec![b"from-w1".to_vec(), b"from-w2".to_vec()]);
    }

    #[test]
    fn write_through_sets_persist_each_sealed_page() {
        let n = node("wt");
        let s = n.create_set("s", SetOptions::write_through()).unwrap();
        let mut w = s.writer();
        for i in 0..40u64 {
            w.add_object(format!("persisted-{i}").as_bytes()).unwrap();
        }
        w.finish().unwrap();
        assert_eq!(
            s.bytes_on_disk(),
            s.num_pages() * KB as u64,
            "every sealed page has an on-disk image"
        );
    }
}
