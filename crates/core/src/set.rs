//! The [`LocalitySet`] handle — the application-facing unit of storage
//! (paper §3.2).

use crate::attributes::SetAttributes;
use crate::node::{SetState, StorageNode};
use crate::seq::SeqWriter;
use pangea_common::{PageNum, Result, SetId};
use pangea_paging::{CurrentOp, Durability, ReadPattern, WritePattern};
use pangea_storage::PagePin;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// A handle to one locality set on one node. Cheap to clone; all methods
/// are thread-safe.
#[derive(Debug, Clone)]
pub struct LocalitySet {
    node: StorageNode,
    state: Arc<SetState>,
}

impl LocalitySet {
    pub(crate) fn new(node: StorageNode, state: Arc<SetState>) -> Self {
        Self { node, state }
    }

    /// The set's id.
    pub fn id(&self) -> SetId {
        self.state.id
    }

    /// The set's name.
    pub fn name(&self) -> &str {
        &self.state.name
    }

    /// The fixed page size of this set.
    pub fn page_size(&self) -> usize {
        self.state.page_size
    }

    /// The owning node.
    pub fn node(&self) -> &StorageNode {
        &self.node
    }

    /// A copy of the current attributes (Table 1).
    pub fn attributes(&self) -> SetAttributes {
        self.state.attrs()
    }

    /// Number of pages ever allocated in this set (dense ordinals
    /// `0..num_pages`).
    pub fn num_pages(&self) -> u64 {
        self.state.next_page.load(Ordering::Relaxed)
    }

    /// All page ordinals of the set, in order.
    pub fn page_numbers(&self) -> Vec<PageNum> {
        (0..self.num_pages()).collect()
    }

    /// Bytes of this set currently on disk.
    pub fn bytes_on_disk(&self) -> u64 {
        self.state.file.bytes_on_disk()
    }

    /// Number of this set's pages resident in the buffer pool.
    pub fn resident_pages(&self) -> usize {
        self.node.pool().resident_of_set(self.state.id).len()
    }

    // ------------------------------------------------------------------
    // Attribute updates (services call these; paper §3.2 "determining
    // attributes")
    // ------------------------------------------------------------------

    fn update_attrs(&self, f: impl FnOnce(&mut SetAttributes)) -> Result<()> {
        {
            let mut attrs = self.state.attrs.write();
            f(&mut attrs);
        }
        self.node.republish_profile(&self.state)
    }

    /// Declares the pattern/operation a service is about to perform.
    pub fn declare_write(&self, pattern: WritePattern) -> Result<()> {
        self.update_attrs(|a| {
            a.writing = Some(pattern);
            a.op = match a.op {
                CurrentOp::Read | CurrentOp::ReadAndWrite => CurrentOp::ReadAndWrite,
                _ => CurrentOp::Write,
            };
        })
    }

    /// Declares the read pattern a service is about to perform.
    pub fn declare_read(&self, pattern: ReadPattern) -> Result<()> {
        self.update_attrs(|a| {
            a.reading = Some(pattern);
            a.op = match a.op {
                CurrentOp::Write | CurrentOp::ReadAndWrite => CurrentOp::ReadAndWrite,
                _ => CurrentOp::Read,
            };
        })
    }

    /// Declares the current operation finished (`CurrentOperation: none`).
    pub fn declare_idle(&self) -> Result<()> {
        self.update_attrs(|a| a.op = CurrentOp::None)
    }

    /// Pins or unpins the whole set in memory (Table 1 `Location`).
    pub fn set_pinned(&self, pinned: bool) -> Result<()> {
        self.update_attrs(|a| a.pinned = pinned)
    }

    /// Ends the set's lifetime: resident pages are dropped without
    /// flushing and the set is preferred for eviction (paper §6).
    pub fn end_lifetime(&self) -> Result<()> {
        self.node.end_lifetime(&self.state)
    }

    /// The set's durability requirement.
    pub fn durability(&self) -> Durability {
        self.state.attrs().durability
    }

    // ------------------------------------------------------------------
    // Page access
    // ------------------------------------------------------------------

    /// Allocates and pins a fresh, empty record page.
    pub fn new_page(&self) -> Result<PagePin> {
        self.node.new_pinned_page(&self.state)
    }

    /// Pins page `num`, loading it from disk when necessary.
    pub fn pin_page(&self, num: PageNum) -> Result<PagePin> {
        self.node.pin_page(&self.state, num)
    }

    /// Seals a finished page (persists it under `write-through`).
    pub fn seal_page(&self, pin: &PagePin) -> Result<()> {
        self.node.seal_page(&self.state, pin)
    }

    /// Spills a pinned page out of memory: flushes it to the set's file
    /// and frees its pool frame. The caller must hold the only pin.
    pub fn spill_page_out(&self, pin: PagePin) -> Result<()> {
        self.node.spill_page_out(&self.state, pin)
    }

    /// A sequential writer bound to this set (paper §8 sequential write
    /// service). Each writer owns its own current page, so multiple
    /// threads can each hold one.
    pub fn writer(&self) -> SeqWriter {
        SeqWriter::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::SetOptions;
    use crate::node::NodeConfig;
    use pangea_common::KB;

    fn node(tag: &str) -> StorageNode {
        let dir = std::env::temp_dir().join(format!(
            "pangea-set-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        StorageNode::new(
            NodeConfig::new(dir)
                .with_pool_capacity(64 * KB)
                .with_page_size(4 * KB),
        )
        .unwrap()
    }

    #[test]
    fn declared_patterns_update_attributes() {
        let n = node("attrs");
        let s = n.create_set("s", SetOptions::write_back()).unwrap();
        s.declare_write(WritePattern::Sequential).unwrap();
        let a = s.attributes();
        assert_eq!(a.writing, Some(WritePattern::Sequential));
        assert_eq!(a.op, CurrentOp::Write);
        s.declare_read(ReadPattern::Random).unwrap();
        let a = s.attributes();
        assert_eq!(a.reading, Some(ReadPattern::Random));
        assert_eq!(a.op, CurrentOp::ReadAndWrite, "write then read overlap");
        s.declare_idle().unwrap();
        assert_eq!(s.attributes().op, CurrentOp::None);
    }

    #[test]
    fn read_only_declaration_is_read_op() {
        let n = node("readonly");
        let s = n.create_set("s", SetOptions::write_back()).unwrap();
        s.declare_read(ReadPattern::Sequential).unwrap();
        assert_eq!(s.attributes().op, CurrentOp::Read);
    }

    #[test]
    fn page_numbers_are_dense() {
        let n = node("dense");
        let s = n.create_set("s", SetOptions::write_back()).unwrap();
        let _a = s.new_page().unwrap();
        let _b = s.new_page().unwrap();
        assert_eq!(s.num_pages(), 2);
        assert_eq!(s.page_numbers(), vec![0, 1]);
    }
}
