//! The hash service and virtual hash buffer (paper §8).
//!
//! "Pangea's hash service adopts a dynamic partitioning approach, where
//! each page contains an independent hash table, as well as all of its
//! associated key-value pairs. [...] We start from K pages as K root
//! partitions, all indexed by a virtual hash buffer. When there is no
//! free memory in one page, we allocate a new page from the buffer pool
//! and split a new child hash partition from the partition in the page
//! that has used up its memory. We iterate using this process until
//! there is no page that can be allocated from the buffer pool [...].
//! Then, when a page is full, the system needs to select a page, unpin
//! it, and spill it to disk as partial-aggregation results. When all
//! objects are inserted through the virtual hash buffer, we re-aggregate
//! those spilled partial aggregation results for each partition."
//!
//! Splitting is extendible: each root partition keeps a directory of
//! pages addressed by the upper hash bits; a full page of local depth
//! `d` splits its entries with bit `d` into a sibling of depth `d+1`.

use crate::attributes::SetOptions;
use crate::hashpage::{self, HashInsert};
use crate::node::StorageNode;
use crate::set::LocalitySet;
use pangea_common::{fx_hash64, FxHashMap, PageNum, PangeaError, Record, Result};
use pangea_paging::{ReadPattern, WritePattern};
use pangea_storage::PagePin;
use std::marker::PhantomData;

/// Hard cap on a root partition's directory depth; with page splitting
/// bounded by memory this is never reached in practice.
const MAX_DEPTH: u32 = 20;

/// Hash-service construction parameters.
#[derive(Debug, Clone)]
pub struct HashConfig {
    /// Number of root partitions `K` (the paper initializes 200 for the
    /// Table 4 benchmark; tests use a handful).
    pub root_partitions: u32,
    /// Page size for hash pages; `None` uses the node default.
    pub page_size: Option<usize>,
}

impl HashConfig {
    /// `k` root partitions with the node's default page size.
    pub fn new(root_partitions: u32) -> Self {
        Self {
            root_partitions,
            page_size: None,
        }
    }

    /// Overrides the hash page size.
    pub fn with_page_size(mut self, bytes: usize) -> Self {
        self.page_size = Some(bytes);
        self
    }
}

/// One root partition's extendible directory.
#[derive(Debug)]
struct RootPartition {
    /// Maps the low `depth` sub-hash bits to an index into
    /// [`VirtualHashBuffer::pages`].
    dir: Vec<u32>,
    depth: u32,
}

/// A distributed aggregation hash map over Pangea pages: keys are byte
/// strings, values any [`Record`]; collisions on insert are resolved by
/// the merge function (the paper's `buffer->set(key, value)` for
/// aggregation).
pub struct VirtualHashBuffer<V, F>
where
    V: Record,
    F: FnMut(&mut V, V),
{
    set: LocalitySet,
    /// Page ordinals spilled to disk as partial-aggregation results.
    spilled_pages: Vec<PageNum>,
    roots: Vec<RootPartition>,
    pages: Vec<Option<PagePin>>,
    merge: F,
    n_buckets: u32,
    scratch: Vec<u8>,
    spilled_entries: u64,
    /// Set by [`VirtualHashBuffer::finalize`]; a buffer dropped without
    /// finalizing (an aborted task, a poisoned session) releases its
    /// pins and backing set in `Drop` instead of leaking them.
    released: bool,
    _values: PhantomData<V>,
}

impl<V, F> Drop for VirtualHashBuffer<V, F>
where
    V: Record,
    F: FnMut(&mut V, V),
{
    fn drop(&mut self) {
        if self.released {
            return;
        }
        for slot in &mut self.pages {
            slot.take();
        }
        let _ = self.set.end_lifetime();
        let id = self.set.id();
        let _ = self.set.node().drop_set(id);
    }
}

impl<V, F> std::fmt::Debug for VirtualHashBuffer<V, F>
where
    V: Record,
    F: FnMut(&mut V, V),
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VirtualHashBuffer")
            .field("set", &self.set.id())
            .field("roots", &self.roots.len())
            .field("pages", &self.pages.len())
            .field("spilled_pages", &self.spilled_pages.len())
            .field("spilled_entries", &self.spilled_entries)
            .finish()
    }
}

#[inline]
fn route(key: &[u8], k: u32) -> (usize, u64) {
    let h = fx_hash64(key);
    ((h % k as u64) as usize, h >> 32)
}

impl<V, F> VirtualHashBuffer<V, F>
where
    V: Record,
    F: FnMut(&mut V, V),
{
    /// Creates the backing write-back locality set (`random-mutable-write`
    /// plus `random-read`, per §3.2's service-driven attribute inference)
    /// and pins `K` empty root pages.
    pub fn create(node: &StorageNode, name: &str, config: HashConfig, merge: F) -> Result<Self> {
        if config.root_partitions == 0 {
            return Err(PangeaError::config("need at least one root partition"));
        }
        let page_size = config.page_size.unwrap_or(node.default_page_size());
        let set = node.create_set(name, SetOptions::write_back().with_page_size(page_size))?;
        set.declare_write(WritePattern::RandomMutable)?;
        set.declare_read(ReadPattern::Random)?;
        let n_buckets = hashpage::buckets_for(page_size);
        let mut pages = Vec::with_capacity(config.root_partitions as usize);
        let mut roots = Vec::with_capacity(config.root_partitions as usize);
        for _ in 0..config.root_partitions {
            let pin = set.new_page()?;
            hashpage::init(&mut pin.write(), n_buckets, 0)?;
            roots.push(RootPartition {
                dir: vec![pages.len() as u32],
                depth: 0,
            });
            pages.push(Some(pin));
        }
        Ok(Self {
            set,
            spilled_pages: Vec::new(),
            roots,
            pages,
            merge,
            n_buckets,
            scratch: Vec::new(),
            spilled_entries: 0,
            released: false,
            _values: PhantomData,
        })
    }

    /// The backing locality set.
    pub fn set(&self) -> &LocalitySet {
        &self.set
    }

    /// Number of hash pages currently pinned.
    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }

    /// Entries spilled to disk as partial-aggregation results so far.
    pub fn spilled_entries(&self) -> u64 {
        self.spilled_entries
    }

    /// Live entries across all in-memory pages (spilled partials not
    /// included).
    pub fn in_memory_items(&self) -> u64 {
        self.pages
            .iter()
            .flatten()
            .map(|p| hashpage::n_items(&p.read()) as u64)
            .sum()
    }

    fn page_for(&self, root: usize, sub: u64) -> usize {
        let r = &self.roots[root];
        let slot = (sub & ((1u64 << r.depth) - 1)) as usize;
        r.dir[slot] as usize
    }

    fn page(&self, idx: usize) -> &PagePin {
        self.pages[idx]
            .as_ref()
            .expect("hash pages are always present")
    }

    /// Inserts `key → val`, merging with the existing value when the key
    /// is already present (the paper's `find` / `insert` / `set` flow,
    /// fused because aggregation always merges).
    pub fn insert_merge(&mut self, key: &[u8], val: V) -> Result<()> {
        let (root, sub) = route(key, self.roots.len() as u32);
        let page_idx = self.page_for(root, sub);
        let pin = self.page(page_idx);
        let mut guard = pin.write();
        self.scratch.clear();
        match hashpage::lookup(&guard, key) {
            Some(existing) => {
                let mut current = V::decode(existing)?;
                (self.merge)(&mut current, val);
                current.encode(&mut self.scratch);
                // Re-borrow val for the retry path below.
                match hashpage::insert(&mut guard, key, &self.scratch)? {
                    HashInsert::Inserted | HashInsert::Updated => Ok(()),
                    HashInsert::Full => {
                        drop(guard);
                        let merged = V::decode(&self.scratch)?;
                        self.make_room(root, page_idx)?;
                        self.insert_no_merge(key, merged)
                    }
                }
            }
            None => {
                val.encode(&mut self.scratch);
                match hashpage::insert(&mut guard, key, &self.scratch)? {
                    HashInsert::Inserted | HashInsert::Updated => Ok(()),
                    HashInsert::Full => {
                        drop(guard);
                        let v = V::decode(&self.scratch)?;
                        self.make_room(root, page_idx)?;
                        // Retry the full merge path: the key may land
                        // on a different page after a split.
                        self.insert_merge(key, v)
                    }
                }
            }
        }
    }

    /// Insert after a merge already happened (no second merge on retry).
    fn insert_no_merge(&mut self, key: &[u8], val: V) -> Result<()> {
        let (root, sub) = route(key, self.roots.len() as u32);
        loop {
            let page_idx = self.page_for(root, sub);
            self.scratch.clear();
            val.encode(&mut self.scratch);
            let outcome = hashpage::insert(&mut self.page(page_idx).write(), key, &self.scratch)?;
            match outcome {
                HashInsert::Inserted | HashInsert::Updated => return Ok(()),
                HashInsert::Full => self.make_room(root, page_idx)?,
            }
        }
    }

    /// Looks up the current in-memory value for `key`. Spilled partial
    /// aggregates are only folded in by [`VirtualHashBuffer::finalize`].
    pub fn get(&self, key: &[u8]) -> Result<Option<V>> {
        let (root, sub) = route(key, self.roots.len() as u32);
        let pin = self.page(self.page_for(root, sub));
        let guard = pin.read();
        match hashpage::lookup(&guard, key) {
            Some(bytes) => Ok(Some(V::decode(bytes)?)),
            None => Ok(None),
        }
    }

    /// A full page needs room: split the partition if the pool can give
    /// us a page, otherwise spill the page as partial-aggregation results.
    fn make_room(&mut self, root: usize, page_idx: usize) -> Result<()> {
        if self.roots[root].depth < MAX_DEPTH {
            match self.set.new_page() {
                Ok(new_pin) => return self.split(root, page_idx, new_pin),
                Err(PangeaError::OutOfMemory { .. }) => {}
                Err(e) => return Err(e),
            }
        }
        self.spill_page(root, page_idx)
    }

    /// Splits `page_idx` (local depth `d`) into itself plus a sibling of
    /// depth `d+1`, redistributing entries by sub-hash bit `d`.
    fn split(&mut self, root: usize, page_idx: usize, new_pin: PagePin) -> Result<()> {
        let old_depth = hashpage::local_depth(&self.page(page_idx).read());
        // Grow the directory if the page is at the directory's depth.
        if old_depth == self.roots[root].depth {
            let r = &mut self.roots[root];
            let old = std::mem::take(&mut r.dir);
            r.dir = old.iter().chain(old.iter()).copied().collect();
            r.depth += 1;
        }
        let new_idx = self.pages.len() as u32;
        hashpage::init(&mut new_pin.write(), self.n_buckets, old_depth + 1)?;
        self.pages.push(Some(new_pin));
        // Re-point directory slots whose bit `old_depth` is set.
        {
            let r = &mut self.roots[root];
            for (slot, target) in r.dir.iter_mut().enumerate() {
                if *target == page_idx as u32 && (slot >> old_depth) & 1 == 1 {
                    *target = new_idx;
                }
            }
        }
        // Redistribute: drain the old page, reinsert by bit `old_depth`.
        let moved = hashpage::entries(&self.page(page_idx).read());
        {
            let mut old_guard = self.page(page_idx).write();
            hashpage::init(&mut old_guard, self.n_buckets, old_depth + 1)?;
        }
        for (key, val) in moved {
            let (_, sub) = route(&key, self.roots.len() as u32);
            let dest = if (sub >> old_depth) & 1 == 1 {
                new_idx as usize
            } else {
                page_idx
            };
            let r = hashpage::insert(&mut self.page(dest).write(), &key, &val)?;
            debug_assert!(
                !matches!(r, HashInsert::Full),
                "redistributed entries always fit a fresh page"
            );
        }
        Ok(())
    }

    /// Spills the full page itself — "select a page, unpin it, and spill
    /// it to disk as partial-aggregation results" (§8): its bytes are
    /// flushed to the set's file, the pool frame is freed, and a fresh
    /// page takes its slot in the directory.
    fn spill_page(&mut self, _root: usize, page_idx: usize) -> Result<()> {
        let pin = self.pages[page_idx]
            .take()
            .expect("hash pages are always present");
        let depth = hashpage::local_depth(&pin.read());
        self.spilled_entries += hashpage::n_items(&pin.read()) as u64;
        self.spilled_pages.push(pin.page_id().num);
        self.set.spill_page_out(pin)?;
        // The freed frame guarantees this allocation succeeds.
        let fresh = self.set.new_page()?;
        hashpage::init(&mut fresh.write(), self.n_buckets, depth)?;
        self.pages[page_idx] = Some(fresh);
        Ok(())
    }

    /// Re-aggregates spilled partials with the in-memory pages and
    /// returns every `(key, value)` pair, ending the lifetime of the
    /// hash set and its spill set (paper: "we re-aggregate those spilled
    /// partial aggregation results for each partition").
    pub fn finalize(mut self) -> Result<Vec<(Vec<u8>, V)>> {
        let mut result: FxHashMap<Vec<u8>, V> = FxHashMap::default();
        let fold =
            |result: &mut FxHashMap<Vec<u8>, V>, merge: &mut F, bytes: &[u8]| -> Result<()> {
                let mut pending: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
                hashpage::for_each(bytes, |k, v| pending.push((k.to_vec(), v.to_vec())));
                for (k, v_bytes) in pending {
                    let v = V::decode(&v_bytes)?;
                    match result.entry(k) {
                        std::collections::hash_map::Entry::Occupied(mut e) => merge(e.get_mut(), v),
                        std::collections::hash_map::Entry::Vacant(e) => {
                            e.insert(v);
                        }
                    }
                }
                Ok(())
            };
        // In-memory pages first; drop each pin as it is folded so the
        // pool frees up for reloading spilled pages.
        for slot in &mut self.pages {
            let pin = slot.take().expect("hash pages are always present");
            let guard = pin.read();
            fold(&mut result, &mut self.merge, &guard)?;
            drop(guard);
        }
        // Spilled partial-aggregation pages, reloaded from the set's file.
        let spilled = std::mem::take(&mut self.spilled_pages);
        for num in spilled {
            let pin = self.set.pin_page(num)?;
            let guard = pin.read();
            fold(&mut result, &mut self.merge, &guard)?;
            drop(guard);
        }
        // Expire and drop the backing set.
        self.set.end_lifetime()?;
        let id = self.set.id();
        self.set.node().drop_set(id)?;
        self.released = true;
        Ok(result.into_iter().collect())
    }
}

/// Convenience alias: string keys, `u64` counts, addition merge — the
/// shape of the paper's Table 4 `<string,int>` aggregation.
pub type CountingHashBuffer = VirtualHashBuffer<u64, fn(&mut u64, u64)>;

/// The distributed task algebra's accumulator shape: byte-string keys,
/// signed 64-bit partials, an op-specific merge (count/sum/min/max)
/// passed as a plain function pointer so sessions can hold the buffer
/// as a concrete type.
pub type ReduceBuffer = VirtualHashBuffer<i64, fn(&mut i64, i64)>;

/// Creates a counting (sum) hash buffer.
pub fn counting_hash_buffer(
    node: &StorageNode,
    name: &str,
    config: HashConfig,
) -> Result<CountingHashBuffer> {
    VirtualHashBuffer::create(node, name, config, |acc: &mut u64, v: u64| *acc += v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{NodeConfig, StorageNode};
    use pangea_common::KB;

    fn node(tag: &str, pool_kb: usize) -> StorageNode {
        let dir = std::env::temp_dir().join(format!(
            "pangea-hash-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        StorageNode::new(
            NodeConfig::new(dir)
                .with_pool_capacity(pool_kb * KB)
                .with_page_size(KB),
        )
        .unwrap()
    }

    #[test]
    fn aggregates_counts_in_memory() {
        let n = node("counts", 64);
        let mut h = counting_hash_buffer(&n, "agg", HashConfig::new(2)).unwrap();
        for i in 0..300u32 {
            h.insert_merge(format!("k{}", i % 30).as_bytes(), 1)
                .unwrap();
        }
        assert_eq!(h.get(b"k0").unwrap(), Some(10));
        assert_eq!(h.get(b"k29").unwrap(), Some(10));
        assert_eq!(h.get(b"nope").unwrap(), None);
        let out = h.finalize().unwrap();
        assert_eq!(out.len(), 30);
        assert!(out.iter().all(|(_, v)| *v == 10));
    }

    #[test]
    fn splits_grow_pages_under_memory_headroom() {
        let n = node("split", 256);
        let mut h = counting_hash_buffer(&n, "agg", HashConfig::new(1)).unwrap();
        assert_eq!(h.num_pages(), 1);
        for i in 0..2000u32 {
            h.insert_merge(format!("key-{i:06}").as_bytes(), 1).unwrap();
        }
        assert!(h.num_pages() > 1, "partition must have split");
        assert_eq!(h.spilled_entries(), 0, "no spill with plenty of memory");
        assert_eq!(h.in_memory_items(), 2000);
        let out = h.finalize().unwrap();
        assert_eq!(out.len(), 2000);
        assert!(out.iter().all(|(_, v)| *v == 1));
    }

    #[test]
    fn spills_and_reaggregates_under_pressure() {
        // 8 KB pool, 1 KB pages: only ~8 hash pages fit.
        let n = node("spill", 8);
        let mut h = counting_hash_buffer(&n, "agg", HashConfig::new(2)).unwrap();
        for round in 0..10u32 {
            for i in 0..120u32 {
                let _ = round;
                h.insert_merge(format!("key-{i:04}").as_bytes(), 1).unwrap();
            }
        }
        assert!(h.spilled_entries() > 0, "pressure must force spilling");
        let out = h.finalize().unwrap();
        assert_eq!(out.len(), 120, "re-aggregation dedups spilled partials");
        assert!(
            out.iter().all(|(_, v)| *v == 10),
            "every key aggregated across spills: {:?}",
            out.iter().find(|(_, v)| *v != 10)
        );
    }

    #[test]
    fn merge_function_is_respected() {
        let n = node("merge", 64);
        let mut h: VirtualHashBuffer<u64, _> =
            VirtualHashBuffer::create(&n, "max", HashConfig::new(2), |acc: &mut u64, v| {
                *acc = (*acc).max(v)
            })
            .unwrap();
        h.insert_merge(b"k", 3).unwrap();
        h.insert_merge(b"k", 9).unwrap();
        h.insert_merge(b"k", 5).unwrap();
        assert_eq!(h.get(b"k").unwrap(), Some(9));
    }

    #[test]
    fn string_values_resize_in_place_entries() {
        let n = node("strings", 64);
        let mut h: VirtualHashBuffer<String, _> =
            VirtualHashBuffer::create(&n, "cat", HashConfig::new(1), |acc: &mut String, v| {
                acc.push_str(&v)
            })
            .unwrap();
        h.insert_merge(b"k", "a".to_string()).unwrap();
        h.insert_merge(b"k", "bb".to_string()).unwrap();
        h.insert_merge(b"k", "ccc".to_string()).unwrap();
        assert_eq!(h.get(b"k").unwrap(), Some("abbccc".to_string()));
        let out = h.finalize().unwrap();
        assert_eq!(out, vec![(b"k".to_vec(), "abbccc".to_string())]);
    }

    #[test]
    fn finalize_releases_all_storage() {
        let n = node("release", 32);
        let mut h = counting_hash_buffer(&n, "agg", HashConfig::new(4)).unwrap();
        for i in 0..500u32 {
            h.insert_merge(format!("k{i}").as_bytes(), 1).unwrap();
        }
        let before = n.set_ids().len();
        let _ = h.finalize().unwrap();
        assert!(n.set_ids().len() < before, "hash + spill sets dropped");
        assert_eq!(n.pool().pool_stats().pinned_pages, 0);
    }

    #[test]
    fn zero_partitions_rejected() {
        let n = node("zero", 32);
        assert!(counting_hash_buffer(&n, "agg", HashConfig::new(0)).is_err());
    }
}
