//! Fig. 3 — k-means latency: Pangea (data-aware) vs the layered stacks.

use criterion::{criterion_group, criterion_main, Criterion};
use pangea_bench::fig3_4::{run_cell, Fig3Config};

fn bench(c: &mut Criterion) {
    let cfg = Fig3Config::quick();
    let points = cfg.scales[0];
    let mut g = c.benchmark_group("fig03_kmeans");
    g.sample_size(10);
    for system in [
        "pangea/data-aware",
        "pangea/lru",
        "spark/hdfs",
        "spark/ignite",
    ] {
        g.bench_function(system.replace('/', "_"), |b| {
            b.iter(|| {
                let (lat, _) = run_cell(&cfg, system, points);
                assert!(!lat.outcome.is_failure(), "{lat:?}");
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
