//! Fig. 4 — k-means memory usage. Memory is a report, not a timing;
//! this bench times the instrumented run and prints the peak-memory rows
//! once so `cargo bench` output carries the figure.

use criterion::{criterion_group, criterion_main, Criterion};
use pangea_bench::fig3_4::{run_cell, Fig3Config};

fn bench(c: &mut Criterion) {
    let cfg = Fig3Config::quick();
    let points = cfg.scales[0];
    for system in ["pangea/data-aware", "spark/hdfs", "spark/alluxio"] {
        let (_, mem) = run_cell(&cfg, system, points);
        println!("fig04 memory {system}: {}", mem.outcome);
    }
    let mut g = c.benchmark_group("fig04_memory");
    g.sample_size(10);
    g.bench_function("pangea_instrumented_run", |b| {
        b.iter(|| run_cell(&cfg, "pangea/data-aware", points))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
