//! Table 4 — key-value aggregation: STL map vs Pangea hashmap vs Redis.

use criterion::{criterion_group, criterion_main, Criterion};
use pangea_bench::tab4::{pangea_agg, redis_agg, stl_agg, HashAggConfig};

fn bench(c: &mut Criterion) {
    let cfg = HashAggConfig::quick();
    let distinct = cfg.scales[0];
    let mut g = c.benchmark_group("tab4_hash_agg");
    g.sample_size(10);
    g.bench_function("pangea_hashmap", |b| {
        b.iter(|| pangea_agg("b-t4p", &cfg, distinct).unwrap())
    });
    g.bench_function("stl_unordered_map", |b| {
        b.iter(|| stl_agg("b-t4s", &cfg, distinct).unwrap())
    });
    g.bench_function("redis", |b| b.iter(|| redis_agg(&cfg, distinct).unwrap()));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
