//! Table 2 — SLOC break-down of the query processor (a report; printed
//! once, with a trivial timing of the counter itself).

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    for row in pangea_bench::sloc::run() {
        println!("tab2 {}: {}", row.series, row.outcome);
    }
    c.bench_function("tab2_sloc_count", |b| b.iter(pangea_bench::sloc::run));
}

criterion_group!(benches, bench);
criterion_main!(benches);
