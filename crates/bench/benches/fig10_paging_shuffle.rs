//! Fig. 10 — page-replacement strategies under shuffle.

use criterion::{criterion_group, criterion_main, Criterion};
use pangea_bench::tab3_fig10::{pangea_shuffle, ShuffleBenchConfig, FIG10_STRATEGIES};

fn bench(c: &mut Criterion) {
    let cfg = ShuffleBenchConfig::quick();
    let bytes = cfg.per_worker_bytes[cfg.per_worker_bytes.len() - 1]; // spilling
    let mut g = c.benchmark_group("fig10_paging_shuffle");
    g.sample_size(10);
    for strategy in FIG10_STRATEGIES {
        g.bench_function(strategy, |b| {
            b.iter(|| pangea_shuffle("b-f10", &cfg, bytes, 1, strategy).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
