//! Fig. 6 — failure-recovery latency via heterogeneous replication.

use criterion::{criterion_group, criterion_main, Criterion};
use pangea_bench::fig5_6::{run_recovery, Fig6Config};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig06_recovery");
    g.sample_size(10);
    for nodes in [4u32, 8] {
        g.bench_function(format!("recover_{nodes}_nodes"), |b| {
            b.iter(|| {
                run_recovery(&Fig6Config {
                    node_counts: vec![nodes],
                    sf: 0.0005,
                })
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
