//! Fig. 7 — sequential access for transient data.

use criterion::{criterion_group, criterion_main, Criterion};
use pangea_bench::bench_dir;
use pangea_bench::fig7_8_9::{pangea_seq, SeqConfig};
use pangea_layered::{load_dataset, DataStore, SimAlluxio, VmObjectStore};

fn bench(c: &mut Criterion) {
    let cfg = SeqConfig::quick();
    let n = cfg.scales[cfg.scales.len() - 1]; // the paging regime
    let mut g = c.benchmark_group("fig07_seq_transient");
    g.sample_size(10);
    g.bench_function("pangea_write_back", |b| {
        b.iter(|| pangea_seq("b-f7p", &cfg, n, 1, "data-aware", true).unwrap())
    });
    g.bench_function("os_vm", |b| {
        b.iter(|| {
            let mut s = VmObjectStore::new(cfg.memory, &bench_dir("b-f7v"), None).unwrap();
            for i in 0..n {
                s.write(format!("obj-{i:074}").as_bytes()).unwrap();
            }
            s.scan(|_| {}).unwrap();
            s.clear();
        })
    });
    g.bench_function("alluxio_in_memory_scale", |b| {
        let objs: Vec<Vec<u8>> = (0..cfg.scales[0])
            .map(|i| format!("obj-{i:074}").into_bytes())
            .collect();
        b.iter(|| {
            let a = SimAlluxio::new(cfg.memory as u64);
            load_dataset(&a, "seq", objs.iter().map(|o| o.as_slice())).unwrap();
            a.scan("seq", &mut |_| Ok(())).unwrap();
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
