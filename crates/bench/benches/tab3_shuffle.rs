//! Table 3 — shuffle write/read: Pangea's shuffle service vs the
//! C-implemented Spark shuffle.

use criterion::{criterion_group, criterion_main, Criterion};
use pangea_bench::tab3_fig10::{cspark_shuffle, pangea_shuffle, ShuffleBenchConfig};

fn bench(c: &mut Criterion) {
    let cfg = ShuffleBenchConfig::quick();
    let bytes = cfg.per_worker_bytes[0];
    let mut g = c.benchmark_group("tab3_shuffle");
    g.sample_size(10);
    g.bench_function("pangea_1disk", |b| {
        b.iter(|| pangea_shuffle("b-t3p", &cfg, bytes, 1, "data-aware").unwrap())
    });
    g.bench_function("pangea_2disk", |b| {
        b.iter(|| pangea_shuffle("b-t3p2", &cfg, bytes, 2, "data-aware").unwrap())
    });
    g.bench_function("c_spark_shuffle", |b| {
        b.iter(|| cspark_shuffle("b-t3c", bytes).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
