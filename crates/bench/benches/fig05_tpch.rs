//! Fig. 5 — TPC-H query latency: Pangea (heterogeneous replicas) vs
//! Spark-over-HDFS (query-time repartitioning).

use criterion::{criterion_group, criterion_main, Criterion};
use pangea_bench::fig5_6::{build_engines, Fig5Config};
use pangea_query::QueryId;

fn bench(c: &mut Criterion) {
    let (pangea, spark) = build_engines(&Fig5Config::quick());
    // Warm Spark's RDD caches so iterations measure steady-state queries.
    for q in QueryId::ALL {
        spark.run(q).unwrap();
    }
    let mut g = c.benchmark_group("fig05_tpch");
    g.sample_size(10);
    for q in [QueryId::Q01, QueryId::Q06, QueryId::Q12, QueryId::Q17] {
        g.bench_function(format!("pangea_{}", q.label()), |b| {
            b.iter(|| pangea.run(q).unwrap())
        });
        g.bench_function(format!("spark_{}", q.label()), |b| {
            b.iter(|| spark.run(q).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
