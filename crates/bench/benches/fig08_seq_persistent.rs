//! Fig. 8 — sequential access for persistent data.

use criterion::{criterion_group, criterion_main, Criterion};
use pangea_bench::bench_dir;
use pangea_bench::fig7_8_9::{pangea_seq, SeqConfig};
use pangea_layered::{load_dataset, DataStore, OsFileSystem, SimHdfs};

fn bench(c: &mut Criterion) {
    let cfg = SeqConfig::quick();
    let n = cfg.scales[0];
    let objs: Vec<Vec<u8>> = (0..n)
        .map(|i| format!("obj-{i:074}").into_bytes())
        .collect();
    let mut g = c.benchmark_group("fig08_seq_persistent");
    g.sample_size(10);
    g.bench_function("pangea_write_through_1disk", |b| {
        b.iter(|| pangea_seq("b-f8p1", &cfg, n, 1, "data-aware", false).unwrap())
    });
    g.bench_function("pangea_write_through_2disk", |b| {
        b.iter(|| pangea_seq("b-f8p2", &cfg, n, 2, "data-aware", false).unwrap())
    });
    g.bench_function("hdfs_1disk", |b| {
        b.iter(|| {
            let h = SimHdfs::new(&bench_dir("b-f8h"), 1, 64 * 1024).unwrap();
            load_dataset(&h, "seq", objs.iter().map(|o| o.as_slice())).unwrap();
            h.scan("seq", &mut |_| Ok(())).unwrap();
        })
    });
    g.bench_function("os_file", |b| {
        b.iter(|| {
            let f = OsFileSystem::new(&bench_dir("b-f8o"), cfg.memory).unwrap();
            load_dataset(&f, "seq", objs.iter().map(|o| o.as_slice())).unwrap();
            f.scan("seq", &mut |_| Ok(())).unwrap();
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
