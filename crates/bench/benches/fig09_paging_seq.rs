//! Fig. 9 — page-replacement strategies under sequential access.

use criterion::{criterion_group, criterion_main, Criterion};
use pangea_bench::fig7_8_9::{pangea_seq, SeqConfig, FIG9_STRATEGIES};

fn bench(c: &mut Criterion) {
    let cfg = SeqConfig::quick();
    let n = cfg.scales[cfg.scales.len() - 1]; // beyond-memory regime
    let mut g = c.benchmark_group("fig09_paging_seq");
    g.sample_size(10);
    for strategy in FIG9_STRATEGIES {
        g.bench_function(format!("{strategy}_write_back"), |b| {
            b.iter(|| pangea_seq("b-f9", &cfg, n, 1, strategy, true).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
