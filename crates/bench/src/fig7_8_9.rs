//! Fig. 7 (sequential access, transient data), Fig. 8 (persistent data),
//! and Fig. 9 (page-replacement comparison for sequential access).
//!
//! Paper setup (§9.2.1): write 50–300 M 80-byte objects (4–24 GB) on a
//! 15 GB machine, scan five times, delete. Scaled here to 80-byte
//! objects at counts where the smaller scales fit the pool and the
//! larger ones page.
//!
//! Expected shapes:
//! * Fig. 7 — Pangea ≈ OS VM while the set fits memory, both ≫ Alluxio
//!   (interfacing overhead); beyond memory Pangea beats OS VM (MRU for
//!   sequential + no page stealing ⇒ less I/O); Alluxio fails (gap);
//! * Fig. 8 — writes comparable across systems; Pangea reads faster
//!   than OS-file and HDFS (no user↔kernel / client↔server copies);
//! * Fig. 9 — data-aware ≈ tuned DBMIN ≈ MRU, all ≫ LRU on the
//!   read-after-write scan loop.

use crate::report::{bench_dir, Outcome, Row};
use pangea_common::{Result, KB};
use pangea_core::{NodeConfig, ObjectIter, SetOptions, StorageNode};
use pangea_layered::{load_dataset, DataStore, OsFileSystem, SimAlluxio, SimHdfs, VmObjectStore};
use std::time::Instant;

/// Scan repetitions (the paper runs the scan five times).
pub const SCAN_ITERS: usize = 5;

/// Object payload size (the paper's 80-byte character arrays).
pub const OBJ_SIZE: usize = 80;

/// Sequential-access experiment parameters.
#[derive(Debug, Clone)]
pub struct SeqConfig {
    /// Object counts to sweep.
    pub scales: Vec<usize>,
    /// Pangea pool / Alluxio worker / OS VM / OS-file-cache bytes.
    pub memory: usize,
    /// Pangea page size.
    pub page_size: usize,
}

impl SeqConfig {
    /// Quick configuration: ~0.6 MB memory; scales fit / exceed it.
    pub fn quick() -> Self {
        Self {
            scales: vec![4_000, 12_000],
            memory: 640 * KB,
            page_size: 32 * KB,
        }
    }

    /// Fuller sweep mirroring the paper's six scale points.
    pub fn full() -> Self {
        Self {
            scales: vec![5_000, 10_000, 15_000, 20_000, 25_000, 30_000],
            memory: 1_280 * KB,
            page_size: 64 * KB,
        }
    }
}

fn object(i: usize) -> Vec<u8> {
    let mut v = vec![b'x'; OBJ_SIZE];
    v[..8].copy_from_slice(&(i as u64).to_le_bytes());
    v
}

/// One Pangea sequential run; returns (write_secs, read_secs_per_scan,
/// delete_secs).
pub fn pangea_seq(
    tag: &str,
    cfg: &SeqConfig,
    objects: usize,
    disks: usize,
    strategy: &str,
    write_back: bool,
) -> Result<(f64, f64, f64)> {
    let node = StorageNode::new(
        NodeConfig::new(bench_dir(tag))
            .with_pool_capacity(cfg.memory)
            .with_page_size(cfg.page_size)
            .with_disks(disks)
            .with_strategy(strategy),
    )?;
    let options = if write_back {
        SetOptions::write_back()
    } else {
        SetOptions::write_through()
    }
    .with_estimated_pages(((objects * (OBJ_SIZE + 4)) / cfg.page_size).max(1) as u64);
    let set = node.create_set("seq", options)?;
    let t = Instant::now();
    let mut w = set.writer();
    for i in 0..objects {
        w.add_object(&object(i))?;
    }
    w.finish()?;
    let write_s = t.elapsed().as_secs_f64();
    let t = Instant::now();
    for _ in 0..SCAN_ITERS {
        let mut sum = 0u64;
        let mut iters = set.page_iterators(1)?;
        while let Some(pin) = iters[0].next() {
            let pin = pin?;
            ObjectIter::new(&pin).for_each(|rec| {
                sum += rec.iter().map(|&b| b as u64).sum::<u64>();
            });
        }
        set.declare_idle()?;
        std::hint::black_box(sum);
    }
    let read_s = t.elapsed().as_secs_f64() / SCAN_ITERS as f64;
    let t = Instant::now();
    let id = set.id();
    set.end_lifetime()?;
    node.drop_set(id)?;
    let delete_s = t.elapsed().as_secs_f64();
    Ok((write_s, read_s, delete_s))
}

/// One store-backed (Alluxio / HDFS / OS-file) sequential run.
fn store_seq(store: &dyn DataStore, objects: usize) -> Result<(f64, f64, f64)> {
    let t = Instant::now();
    let objs: Vec<Vec<u8>> = (0..objects).map(object).collect();
    load_dataset(store, "seq", objs.iter().map(|o| o.as_slice()))?;
    let write_s = t.elapsed().as_secs_f64();
    let t = Instant::now();
    for _ in 0..SCAN_ITERS {
        let mut sum = 0u64;
        store.scan("seq", &mut |rec| {
            sum += rec.iter().map(|&b| b as u64).sum::<u64>();
            Ok(())
        })?;
        std::hint::black_box(sum);
    }
    let read_s = t.elapsed().as_secs_f64() / SCAN_ITERS as f64;
    let t = Instant::now();
    store.delete("seq")?;
    let delete_s = t.elapsed().as_secs_f64();
    Ok((write_s, read_s, delete_s))
}

/// One OS-VM sequential run.
fn osvm_seq(tag: &str, cfg: &SeqConfig, objects: usize) -> Result<(f64, f64, f64)> {
    let mut store = VmObjectStore::new(cfg.memory, &bench_dir(tag), None)?;
    let t = Instant::now();
    for i in 0..objects {
        store.write(&object(i))?;
    }
    let write_s = t.elapsed().as_secs_f64();
    let t = Instant::now();
    for _ in 0..SCAN_ITERS {
        let mut sum = 0u64;
        store.scan(|rec| {
            sum += rec.iter().map(|&b| b as u64).sum::<u64>();
        })?;
        std::hint::black_box(sum);
    }
    let read_s = t.elapsed().as_secs_f64() / SCAN_ITERS as f64;
    let t = Instant::now();
    store.clear();
    let delete_s = t.elapsed().as_secs_f64();
    Ok((write_s, read_s, delete_s))
}

fn push(rows: &mut Vec<Row>, series: &str, x: &str, r: Result<(f64, f64, f64)>) {
    match r {
        Ok((w, rd, del)) => {
            rows.push(Row::new(series, x, "write", Outcome::Seconds(w)));
            rows.push(Row::new(series, x, "read", Outcome::Seconds(rd)));
            rows.push(Row::new(series, x, "delete", Outcome::Seconds(del)));
        }
        Err(e) => {
            rows.push(Row::new(series, x, "write", Outcome::failed(&e)));
            rows.push(Row::new(series, x, "read", Outcome::failed(&e)));
            rows.push(Row::new(series, x, "delete", Outcome::failed(&e)));
        }
    }
}

/// Fig. 7: transient data — Pangea write-back × {1,2} disks, Alluxio,
/// OS VM.
pub fn run_fig7(cfg: &SeqConfig) -> Vec<Row> {
    let mut rows = Vec::new();
    for &n in &cfg.scales {
        let x = format!("{n}obj");
        push(
            &mut rows,
            "pangea-wb-1disk",
            &x,
            pangea_seq(&format!("f7p1-{n}"), cfg, n, 1, "data-aware", true),
        );
        push(
            &mut rows,
            "pangea-wb-2disk",
            &x,
            pangea_seq(&format!("f7p2-{n}"), cfg, n, 2, "data-aware", true),
        );
        let alluxio = SimAlluxio::new(cfg.memory as u64);
        push(&mut rows, "alluxio", &x, store_seq(&alluxio, n));
        push(
            &mut rows,
            "os-vm",
            &x,
            osvm_seq(&format!("f7v-{n}"), cfg, n),
        );
    }
    rows
}

/// Fig. 8: persistent data — OS file system, HDFS × {1,2} disks, Pangea
/// write-through × {1,2} disks.
pub fn run_fig8(cfg: &SeqConfig) -> Vec<Row> {
    let mut rows = Vec::new();
    for &n in &cfg.scales {
        let x = format!("{n}obj");
        let osfs =
            OsFileSystem::new(&bench_dir(&format!("f8o-{n}")), cfg.memory).expect("os file system");
        push(&mut rows, "os-file", &x, store_seq(&osfs, n));
        for disks in [1usize, 2] {
            let hdfs =
                SimHdfs::new(&bench_dir(&format!("f8h{disks}-{n}")), disks, 64 * KB).expect("hdfs");
            push(
                &mut rows,
                &format!("hdfs-{disks}disk"),
                &x,
                store_seq(&hdfs, n),
            );
            push(
                &mut rows,
                &format!("pangea-wt-{disks}disk"),
                &x,
                pangea_seq(
                    &format!("f8p{disks}-{n}"),
                    cfg,
                    n,
                    disks,
                    "data-aware",
                    false,
                ),
            );
        }
    }
    rows
}

/// The Fig. 9 strategy list.
pub const FIG9_STRATEGIES: [&str; 4] = ["data-aware", "dbmin-tuned", "mru", "lru"];

/// Fig. 9: page replacement for sequential access, write-through (a)
/// and write-back (b), at scales exceeding memory.
pub fn run_fig9(cfg: &SeqConfig) -> Vec<Row> {
    let mut rows = Vec::new();
    for &n in &cfg.scales {
        let x = format!("{n}obj");
        for strategy in FIG9_STRATEGIES {
            for (mode, write_back) in [("wt", false), ("wb", true)] {
                push(
                    &mut rows,
                    &format!("{strategy}-{mode}"),
                    &x,
                    pangea_seq(
                        &format!("f9-{strategy}-{mode}-{n}"),
                        cfg,
                        n,
                        1,
                        strategy,
                        write_back,
                    ),
                );
            }
        }
    }
    rows
}

/// Supporting measurement for the Fig. 7 discussion: page-out bytes of
/// Pangea vs the OS VM on the same oversized scan workload (the paper
/// reports the OS writing ~2.5× more).
pub fn pageout_bytes(cfg: &SeqConfig, objects: usize) -> Result<(u64, u64)> {
    let node = StorageNode::new(
        NodeConfig::new(bench_dir("pageout-p"))
            .with_pool_capacity(cfg.memory)
            .with_page_size(cfg.page_size),
    )?;
    let set = node.create_set("seq", SetOptions::write_back())?;
    let mut w = set.writer();
    for i in 0..objects {
        w.add_object(&object(i))?;
    }
    w.finish()?;
    for _ in 0..2 {
        let mut iters = set.page_iterators(1)?;
        while let Some(pin) = iters[0].next() {
            let _ = pin?;
        }
    }
    let pangea_out = node.disk_stats().snapshot().disk_write_bytes;

    let mut vm = VmObjectStore::new(cfg.memory, &bench_dir("pageout-v"), None)?;
    for i in 0..objects {
        vm.write(&object(i))?;
    }
    for _ in 0..2 {
        vm.scan(|_| {})?;
    }
    let vm_out = vm.vm().io_snapshot().disk_write_bytes;
    Ok((pangea_out, vm_out))
}

/// Convenience used by tests and the repro summary.
pub fn read_secs(rows: &[Row], series: &str, x: &str) -> Option<f64> {
    rows.iter()
        .find(|r| r.series == series && r.x == x && r.metric == "read")
        .and_then(|r| r.outcome.value())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SeqConfig {
        SeqConfig {
            scales: vec![1_000, 6_000],
            memory: 256 * KB,
            page_size: 16 * KB,
        }
    }

    #[test]
    fn fig7_alluxio_fails_beyond_memory_and_pangea_does_not() {
        let cfg = tiny();
        let rows = run_fig7(&cfg);
        // 6 000 × 84 B ≈ 500 KB > 256 KB: Alluxio must be a gap.
        let alluxio_big = rows
            .iter()
            .find(|r| r.series == "alluxio" && r.x == "6000obj" && r.metric == "write")
            .unwrap();
        assert!(alluxio_big.outcome.is_failure());
        assert!(read_secs(&rows, "pangea-wb-1disk", "6000obj").is_some());
        // In-memory scale: everyone succeeds.
        assert!(read_secs(&rows, "alluxio", "1000obj").is_some());
        assert!(read_secs(&rows, "os-vm", "6000obj").is_some());
    }

    #[test]
    fn pangea_pages_out_less_than_os_vm() {
        let cfg = tiny();
        let (pangea, osvm) = pageout_bytes(&cfg, 8_000).unwrap();
        assert!(pangea > 0, "working set exceeds memory; spills expected");
        assert!(
            osvm > pangea,
            "OS VM (LRU + stealing) must write more: {osvm} vs {pangea}"
        );
    }

    #[test]
    fn fig9_covers_all_strategies_without_failures() {
        let cfg = SeqConfig {
            scales: vec![4_000],
            memory: 256 * KB,
            page_size: 16 * KB,
        };
        let rows = run_fig9(&cfg);
        assert_eq!(rows.len(), 4 * 2 * 3);
        assert!(
            rows.iter().all(|r| !r.outcome.is_failure()),
            "tuned DBMIN never blocks: {rows:?}"
        );
    }
}
