//! Regenerates every table and figure of the paper's evaluation section
//! (§9) at the scaled-down sizes documented in DESIGN.md §2.
//!
//! Usage:
//!   repro            # everything
//!   repro fig3 fig4  # specific experiments
//!   repro --quick    # the fast configurations the Criterion benches use
//!
//! Experiments: fig3 fig4 tab2 fig5 fig6 fig7 fig8 fig9 tab3 fig10 tab4

use pangea_bench::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let wanted: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|s| s.as_str())
        .collect();
    let want = |name: &str| wanted.is_empty() || wanted.contains(&name);

    if want("fig3") || want("fig4") {
        let cfg = if quick {
            fig3_4::Fig3Config::quick()
        } else {
            fig3_4::Fig3Config::full()
        };
        let (fig3, fig4) = fig3_4::run(&cfg);
        if want("fig3") {
            print_rows("Fig. 3 — k-means latency (failed cases = gaps)", &fig3);
        }
        if want("fig4") {
            print_rows("Fig. 4 — k-means peak memory usage", &fig4);
        }
    }
    if want("tab2") {
        print_rows("Table 2 — query processor SLOC break-down", &sloc::run());
    }
    if want("fig5") {
        let cfg = if quick {
            fig5_6::Fig5Config::quick()
        } else {
            fig5_6::Fig5Config::full()
        };
        print_rows(
            "Fig. 5 — TPC-H latency, Pangea vs Spark/HDFS",
            &fig5_6::run(&cfg),
        );
    }
    if want("fig6") {
        let cfg = if quick {
            fig5_6::Fig6Config::quick()
        } else {
            fig5_6::Fig6Config::full()
        };
        print_rows(
            "Fig. 6 — recovery latency & colliding ratio vs cluster size",
            &fig5_6::run_recovery(&cfg),
        );
    }
    let seq_cfg = if quick {
        fig7_8_9::SeqConfig::quick()
    } else {
        fig7_8_9::SeqConfig::full()
    };
    if want("fig7") {
        print_rows(
            "Fig. 7 — sequential access, transient data",
            &fig7_8_9::run_fig7(&seq_cfg),
        );
        let top = seq_cfg.scales[seq_cfg.scales.len() - 1];
        if let Ok((pangea, osvm)) = fig7_8_9::pageout_bytes(&seq_cfg, top) {
            println!(
                "  page-out bytes at {top} objects: pangea {pangea} vs OS VM {osvm} \
                 ({:.1}x)",
                osvm as f64 / pangea.max(1) as f64
            );
        }
    }
    if want("fig8") {
        print_rows(
            "Fig. 8 — sequential access, persistent data",
            &fig7_8_9::run_fig8(&seq_cfg),
        );
    }
    if want("fig9") {
        print_rows(
            "Fig. 9 — page replacement for sequential access",
            &fig7_8_9::run_fig9(&seq_cfg),
        );
    }
    let sh_cfg = if quick {
        tab3_fig10::ShuffleBenchConfig::quick()
    } else {
        tab3_fig10::ShuffleBenchConfig::full()
    };
    if want("tab3") {
        print_rows(
            "Table 3 — shuffle write/read latency",
            &tab3_fig10::run_tab3(&sh_cfg),
        );
    }
    if want("fig10") {
        print_rows(
            "Fig. 10 — page replacement under shuffle",
            &tab3_fig10::run_fig10(&sh_cfg),
        );
    }
    if want("tab4") {
        let cfg = if quick {
            tab4::HashAggConfig::quick()
        } else {
            tab4::HashAggConfig::full()
        };
        print_rows("Table 4 — key-value aggregation", &tab4::run(&cfg));
    }
}
