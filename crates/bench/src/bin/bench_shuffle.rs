//! `BENCH_shuffle.json` — the map-shuffle benchmark trajectory: one
//! real loopback deployment (mgr + 3 `pangead`s), one fixed synthetic
//! corpus, two jobs over it:
//!
//! * **map-only** — tokenize flat-map, every token shipped raw to its
//!   hash destination, strict-serial pushes (window 1: one ingest batch
//!   round trip at a time — the pre-pipelining wire behavior);
//! * **map-only pipelined** — the identical job with an 8-deep
//!   correlated pipeline per destination: same shuffle bytes, same
//!   records, fewer wall-clock round trips;
//! * **map-combine-reduce** — the same tokenization, counted per word
//!   with source-side combine, so only per-key partials cross the wire.
//!
//! Reported per job: wall-clock seconds, input records/s, and
//! worker→worker shuffle payload bytes (from the task reports — the
//! driver provably moves zero). The combine ratio at the bottom is the
//! headline: how much of the shuffle the source-side fold deleted. An
//! `rpc` section aggregates every worker's `MetricsDump` across the
//! fleet: per-opcode request counts, payload bytes, and p50/p99
//! latency (log2-bucket upper bounds, in nanoseconds).
//!
//! Usage: `cargo run --release -p pangea-bench --bin bench_shuffle --
//! [--smoke] [--out PATH]`. `--smoke` shrinks the corpus for CI's
//! timeout discipline; the default output path is `BENCH_shuffle.json`
//! in the working directory.

use pangea_cluster::PartitionScheme;
use pangea_common::{NodeId, Result, KB, MB};
use pangea_coord::{MgrServer, RemoteCluster, WorkerAgent};
use pangea_core::{NodeConfig, StorageNode};
use pangea_net::{KeySpec, MapSpec, PangeaClient, PangeadServer, ReduceSpec, WireMetric};
use pangea_obs::{names, quantile_from_buckets, HISTOGRAM_BUCKETS};
use std::collections::BTreeMap;
use std::time::Duration;

const SECRET: &str = "bench-shuffle-secret";

#[derive(Default)]
struct OpAgg {
    count: u64,
    bytes: u64,
    buckets: Vec<u64>,
}

/// Aggregates every worker's `MetricsDump` into one per-opcode table:
/// counts and bytes sum, latency histograms merge bucket-wise (so the
/// fleet quantiles are exact over the merged distribution).
fn fleet_rpc_table(fleet: &[(PangeadServer, WorkerAgent)]) -> Result<BTreeMap<String, OpAgg>> {
    let mut table: BTreeMap<String, OpAgg> = BTreeMap::new();
    for (server, _) in fleet {
        let mut client = PangeaClient::connect_with_secret(server.local_addr(), Some(SECRET))?;
        let (metrics, _spans) = client.metrics_dump()?;
        for m in metrics {
            let (prefix, name) = match &m {
                WireMetric::Counter { name, .. } | WireMetric::Gauge { name, .. } => {
                    if let Some(op) = name.strip_prefix(names::RPC_COUNT_PREFIX) {
                        ("count", op.to_string())
                    } else if let Some(op) = name.strip_prefix(names::RPC_BYTES_PREFIX) {
                        ("bytes", op.to_string())
                    } else {
                        continue;
                    }
                }
                WireMetric::Histogram { name, .. } => {
                    match name.strip_prefix(names::RPC_LATENCY_NS_PREFIX) {
                        Some(op) => ("latency", op.to_string()),
                        None => continue,
                    }
                }
            };
            let agg = table.entry(name).or_default();
            match (prefix, m) {
                ("count", WireMetric::Counter { value, .. }) => agg.count += value,
                ("bytes", WireMetric::Counter { value, .. }) => agg.bytes += value,
                ("latency", WireMetric::Histogram { buckets, .. }) => {
                    agg.buckets.resize(agg.buckets.len().max(buckets.len()), 0);
                    for (slot, b) in agg.buckets.iter_mut().zip(&buckets) {
                        *slot += b;
                    }
                }
                _ => {}
            }
        }
    }
    Ok(table)
}

struct JobRow {
    name: &'static str,
    seconds: f64,
    records_in: u64,
    records_out: u64,
    shuffle_bytes: u64,
}

fn main() -> Result<()> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_shuffle.json".to_string());
    let lines = if smoke { 2_000 } else { 20_000 };

    let root = std::env::temp_dir().join(format!("pangea-bench-shuffle-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    let mgr = MgrServer::bind_with(
        "127.0.0.1:0",
        Duration::from_millis(500),
        Some(SECRET.into()),
    )?;
    let mgr_addr = mgr.local_addr().to_string();
    let mut fleet = Vec::new();
    for i in 0..3u32 {
        let node = StorageNode::new(
            NodeConfig::new(root.join(format!("node{i}")))
                .with_pool_capacity(8 * MB)
                .with_page_size(64 * KB),
        )?;
        let server = PangeadServer::bind_with_secret(node, "127.0.0.1:0", Some(SECRET.into()))?;
        let agent = WorkerAgent::register(
            &mgr_addr,
            Some(SECRET),
            &server.local_addr().to_string(),
            Some(NodeId(i)),
            Duration::from_millis(100),
        )?;
        fleet.push((server, agent));
    }
    let cluster = RemoteCluster::connect(&mgr_addr, Some(SECRET))?;

    // Fixed corpus: 8-word lines over a zipf-ish vocabulary (heavy
    // repetition, so combining has real work to do) — deterministic,
    // so runs are comparable across machines and commits.
    let docs = cluster.create_dist_set("docs", PartitionScheme::round_robin(6))?;
    let mut d = docs.loader()?;
    for i in 0..lines {
        let line = format!(
            "w{} w{} w{} w{} w{} w{} w{} w{}",
            i % 7,
            i % 13,
            i % 7,
            i % 101,
            i % 3,
            i % 13,
            i % 7,
            i % 997,
        );
        d.dispatch(line.as_bytes())?;
    }
    d.finish()?;

    let map = MapSpec::tokenize(b' ');
    let shuffle_bytes = |r: &pangea_cluster::MapShuffleReport| -> u64 {
        r.tasks.iter().map(|(_, t)| t.emitted_bytes).sum()
    };

    // Strict-serial baseline: window 1 is the pre-pipelining wire
    // behavior, kept addressable for exactly this A/B.
    cluster.set_pipeline_window(1);
    let t0 = std::time::Instant::now();
    let plain = cluster.map_shuffle(
        "docs",
        "tokens",
        &map,
        PartitionScheme::hash_whole("word", 6),
    )?;
    let plain_row = JobRow {
        name: "map_only",
        seconds: t0.elapsed().as_secs_f64(),
        records_in: plain.scanned,
        records_out: plain.records_out,
        shuffle_bytes: shuffle_bytes(&plain),
    };

    // The same job with an 8-deep correlated pipeline per destination:
    // identical records and shuffle bytes, the round trips overlapped.
    cluster.set_pipeline_window(8);
    let tp = std::time::Instant::now();
    let piped = cluster.map_shuffle(
        "docs",
        "tokens_pipelined",
        &map,
        PartitionScheme::hash_whole("word", 6),
    )?;
    let piped_row = JobRow {
        name: "map_only_pipelined",
        seconds: tp.elapsed().as_secs_f64(),
        records_in: piped.scanned,
        records_out: piped.records_out,
        shuffle_bytes: shuffle_bytes(&piped),
    };
    assert_eq!(
        piped_row.records_out, plain_row.records_out,
        "pipelining must not change what materializes"
    );
    assert_eq!(
        piped_row.shuffle_bytes, plain_row.shuffle_bytes,
        "pipelining must ship exactly the same payload"
    );

    let reduce = ReduceSpec::count(KeySpec::WholeRecord, b'|');
    let t1 = std::time::Instant::now();
    let reduced = cluster.map_reduce(
        "docs",
        "counts",
        &map,
        &reduce,
        PartitionScheme::hash_field("word", 6, b'|', 0),
    )?;
    let reduced_row = JobRow {
        name: "map_combine_reduce",
        seconds: t1.elapsed().as_secs_f64(),
        records_in: reduced.scanned,
        records_out: reduced.records_out,
        shuffle_bytes: shuffle_bytes(&reduced),
    };

    let ratio = if plain_row.shuffle_bytes > 0 {
        reduced_row.shuffle_bytes as f64 / plain_row.shuffle_bytes as f64
    } else {
        1.0
    };

    // Constrained-memory variant: the same job shape on a second fleet
    // whose pools are a small fraction of the task state, so the combine
    // and reduce accumulators must page. Reported with the fleet's
    // aggregated `paging.*` counters — the bound-memory throughput
    // trajectory next to the roomy one above.
    const TINY_POOL: usize = 64 * KB;
    const TINY_PAGE: usize = 4 * KB;
    let cmgr = MgrServer::bind_with(
        "127.0.0.1:0",
        Duration::from_millis(500),
        Some(SECRET.into()),
    )?;
    let cmgr_addr = cmgr.local_addr().to_string();
    let mut cfleet = Vec::new();
    for i in 0..3u32 {
        let node = StorageNode::new(
            NodeConfig::new(root.join(format!("tiny{i}")))
                .with_pool_capacity(TINY_POOL)
                .with_page_size(TINY_PAGE),
        )?;
        let server = PangeadServer::bind_with_secret(node, "127.0.0.1:0", Some(SECRET.into()))?;
        let agent = WorkerAgent::register(
            &cmgr_addr,
            Some(SECRET),
            &server.local_addr().to_string(),
            Some(NodeId(i)),
            Duration::from_millis(100),
        )?;
        cfleet.push((server, agent));
    }
    let ccluster = RemoteCluster::connect(&cmgr_addr, Some(SECRET))?;
    // Mostly-unique tokens: the per-mapper accumulator alone dwarfs the
    // pool, which is the point.
    let cdocs = ccluster.create_dist_set("docs", PartitionScheme::round_robin(6))?;
    let mut cd = cdocs.loader()?;
    for i in 0..lines {
        let line = format!(
            "w{} u{:06} u{:06} u{:06} u{:06} w{}",
            i % 7,
            i * 4,
            i * 4 + 1,
            i * 4 + 2,
            i * 4 + 3,
            i % 13,
        );
        cd.dispatch(line.as_bytes())?;
    }
    cd.finish()?;
    let t2 = std::time::Instant::now();
    let constrained = ccluster.map_reduce(
        "docs",
        "counts",
        &map,
        &reduce,
        PartitionScheme::hash_field("word", 6, b'|', 0),
    )?;
    let constrained_secs = t2.elapsed().as_secs_f64();
    let mut paging = (0u64, 0u64, 0u64, 0u64); // hits, misses, evictions, spill
    for (i, (server, _)) in cfleet.iter().enumerate() {
        let mut client = PangeaClient::connect_with_secret(server.local_addr(), Some(SECRET))?;
        // Presence gate: a worker whose MetricsDump lacks the paging
        // registry entries is a regression, not a quiet zero.
        let (metrics, _) = client.metrics_dump()?;
        for required in ["paging.spill_bytes", "paging.pool_capacity_bytes"] {
            assert!(
                metrics.iter().any(|m| m.name() == required),
                "constrained worker {i}: MetricsDump is missing {required}"
            );
        }
        let s = client.remote_stats()?;
        assert_eq!(s.pool_capacity_bytes, TINY_POOL as u64);
        paging.0 += s.paging_hits;
        paging.1 += s.paging_misses;
        paging.2 += s.paging_evictions;
        paging.3 += s.paging_spill_bytes;
    }
    assert!(
        paging.3 > 0,
        "the constrained fleet finished without spilling a byte — the \
         pools were not actually under pressure"
    );
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"shuffle\",\n");
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str(&format!("  \"input_lines\": {lines},\n  \"workers\": 3,\n"));
    for row in [&plain_row, &piped_row, &reduced_row] {
        json.push_str(&format!(
            "  \"{}\": {{ \"seconds\": {:.6}, \"records_in\": {}, \
             \"records_per_sec\": {:.1}, \"records_out\": {}, \
             \"shuffle_bytes\": {} }},\n",
            row.name,
            row.seconds,
            row.records_in,
            row.records_in as f64 / row.seconds.max(1e-9),
            row.records_out,
            row.shuffle_bytes,
        ));
    }
    json.push_str(&format!("  \"combine_shuffle_ratio\": {ratio:.4},\n"));
    json.push_str(&format!(
        "  \"pipeline_speedup\": {:.4},\n",
        plain_row.seconds / piped_row.seconds.max(1e-9)
    ));
    json.push_str(&format!(
        "  \"constrained\": {{ \"pool_bytes\": {TINY_POOL}, \"page_bytes\": {TINY_PAGE}, \
         \"seconds\": {:.6}, \"records_in\": {}, \"records_per_sec\": {:.1}, \
         \"records_out\": {}, \"paging\": {{ \"hits\": {}, \"misses\": {}, \
         \"evictions\": {}, \"spill_bytes\": {} }} }},\n",
        constrained_secs,
        constrained.scanned,
        constrained.scanned as f64 / constrained_secs.max(1e-9),
        constrained.records_out,
        paging.0,
        paging.1,
        paging.2,
        paging.3,
    ));
    // Fleet-wide per-opcode RPC profile, from every worker's
    // `MetricsDump` (the dump RPC itself is excluded: its counters tick
    // only after their own dump was snapshotted on the first worker,
    // making the row run-order dependent).
    let rpc = fleet_rpc_table(&fleet)?;
    json.push_str("  \"rpc\": {\n");
    let rows: Vec<String> = rpc
        .iter()
        .filter(|(op, agg)| agg.count > 0 && op.as_str() != "MetricsDump")
        .map(|(op, agg)| {
            let buckets = if agg.buckets.is_empty() {
                vec![0; HISTOGRAM_BUCKETS]
            } else {
                agg.buckets.clone()
            };
            format!(
                "    \"{op}\": {{ \"count\": {}, \"bytes\": {}, \"p50_ns\": {}, \"p99_ns\": {} }}",
                agg.count,
                agg.bytes,
                quantile_from_buckets(&buckets, 0.50),
                quantile_from_buckets(&buckets, 0.99),
            )
        })
        .collect();
    json.push_str(&rows.join(",\n"));
    json.push_str("\n  }\n}\n");
    std::fs::write(&out_path, &json)?;
    print!("{json}");
    eprintln!("wrote {out_path}");

    // The smoke run doubles as a regression gate: combining must
    // actually shrink the shuffle on this corpus.
    assert!(
        reduced_row.shuffle_bytes < plain_row.shuffle_bytes,
        "combine did not shrink the shuffle: {} vs {}",
        reduced_row.shuffle_bytes,
        plain_row.shuffle_bytes
    );

    for (_, agent) in fleet.iter_mut().chain(cfleet.iter_mut()) {
        agent.shutdown()?;
    }
    let _ = std::fs::remove_dir_all(&root);
    Ok(())
}
