//! Table 3 (shuffle write/read latency) and Fig. 10 (paging policies
//! under shuffle).
//!
//! Paper setup (§9.2.2): four writers + four readers moving ~10-byte
//! strings into four partitions, 500–6000 MB per thread; Pangea's
//! shuffle (≤ `numPartitions` spill files, small-page allocator) vs a
//! C++ re-implementation of Spark's shuffle
//! (`numCores × numPartitions` files, malloc + fwrite per record).
//!
//! Expected shape: Pangea writes ~1.1–1.4× faster; Pangea reads are
//! near-instant while the working set fits memory and stay well ahead
//! of the baseline after spilling starts; data-aware paging beats LRU
//! on reads.

use crate::report::{bench_dir, Outcome, Row};
use pangea_common::{fx_hash64, Result, KB};
use pangea_core::{NodeConfig, ObjectIter, ShuffleConfig, ShuffleService, StorageNode};
use pangea_layered::CSparkShuffle;
use std::time::Instant;

/// Writers / readers / partitions (the paper uses four of each).
pub const WORKERS: usize = 4;

/// Shuffle experiment parameters.
#[derive(Debug, Clone)]
pub struct ShuffleBenchConfig {
    /// Bytes written per worker (the paper's MB/thread axis, scaled).
    pub per_worker_bytes: Vec<usize>,
    /// Pangea pool bytes.
    pub memory: usize,
    /// Pangea page size.
    pub page_size: usize,
}

impl ShuffleBenchConfig {
    /// Quick configuration.
    pub fn quick() -> Self {
        Self {
            per_worker_bytes: vec![64 * KB, 256 * KB],
            memory: 512 * KB,
            page_size: 32 * KB,
        }
    }

    /// Fuller sweep (fits-in-memory through heavy spilling).
    pub fn full() -> Self {
        Self {
            per_worker_bytes: vec![128 * KB, 256 * KB, 384 * KB, 512 * KB, 640 * KB, 768 * KB],
            memory: 1_024 * KB,
            page_size: 32 * KB,
        }
    }
}

/// ~10-byte shuffle records, like the paper's small strings.
fn record(worker: usize, i: usize) -> Vec<u8> {
    format!("w{worker}k{i:07}").into_bytes()
}

fn partition_of(rec: &[u8]) -> u32 {
    (fx_hash64(rec) % WORKERS as u64) as u32
}

/// One Pangea shuffle run: returns (write_secs, read_secs).
pub fn pangea_shuffle(
    tag: &str,
    cfg: &ShuffleBenchConfig,
    per_worker: usize,
    disks: usize,
    strategy: &str,
) -> Result<(f64, f64)> {
    let node = StorageNode::new(
        NodeConfig::new(bench_dir(tag))
            .with_pool_capacity(cfg.memory)
            .with_page_size(cfg.page_size)
            .with_disks(disks)
            .with_strategy(strategy),
    )?;
    let svc = ShuffleService::create(
        &node,
        "sh",
        ShuffleConfig::new(WORKERS as u32).with_page_size(cfg.page_size),
    )?;
    let records_per_worker = per_worker / 10;
    let t = Instant::now();
    std::thread::scope(|scope| -> Result<()> {
        let mut handles = Vec::new();
        for w in 0..WORKERS {
            let svc = svc.clone();
            handles.push(scope.spawn(move || -> Result<()> {
                let mut buffers: Vec<_> = (0..WORKERS)
                    .map(|p| svc.virtual_buffer(pangea_common::PartitionId(p as u32)))
                    .collect::<Result<_>>()?;
                for i in 0..records_per_worker {
                    let rec = record(w, i);
                    buffers[partition_of(&rec) as usize].add_object(&rec)?;
                }
                for b in &mut buffers {
                    b.flush()?;
                }
                Ok(())
            }));
        }
        for h in handles {
            h.join().expect("shuffle writer panicked")?;
        }
        Ok(())
    })?;
    svc.finish_writes()?;
    let write_s = t.elapsed().as_secs_f64();
    let t = Instant::now();
    std::thread::scope(|scope| -> Result<()> {
        let mut handles = Vec::new();
        for p in 0..WORKERS {
            let svc = svc.clone();
            handles.push(scope.spawn(move || -> Result<()> {
                let set = svc.partition_set(pangea_common::PartitionId(p as u32))?;
                let mut sum = 0u64;
                for num in set.page_numbers() {
                    let pin = set.pin_page(num)?;
                    ObjectIter::new(&pin).for_each(|rec| {
                        sum += rec.iter().map(|&b| b as u64).sum::<u64>();
                    });
                }
                std::hint::black_box(sum);
                Ok(())
            }));
        }
        for h in handles {
            h.join().expect("shuffle reader panicked")?;
        }
        Ok(())
    })?;
    let read_s = t.elapsed().as_secs_f64();
    svc.end_lifetime()?;
    Ok((write_s, read_s))
}

/// One C-Spark-shuffle run: returns (write_secs, read_secs).
pub fn cspark_shuffle(tag: &str, per_worker: usize) -> Result<(f64, f64)> {
    let mut sh = CSparkShuffle::new(&bench_dir(tag), WORKERS, WORKERS)?;
    let records_per_worker = per_worker / 10;
    let t = Instant::now();
    for w in 0..WORKERS {
        for i in 0..records_per_worker {
            let rec = record(w, i);
            sh.write(w, partition_of(&rec) as usize, &rec)?;
        }
    }
    sh.finish_writes()?;
    let write_s = t.elapsed().as_secs_f64();
    let t = Instant::now();
    for p in 0..WORKERS {
        let mut sum = 0u64;
        sh.read_partition(p, |rec| {
            sum += rec.iter().map(|&b| b as u64).sum::<u64>();
            Ok(())
        })?;
        std::hint::black_box(sum);
    }
    let read_s = t.elapsed().as_secs_f64();
    Ok((write_s, read_s))
}

fn push(rows: &mut Vec<Row>, series: &str, x: &str, r: Result<(f64, f64)>) {
    match r {
        Ok((w, rd)) => {
            rows.push(Row::new(series, x, "write", Outcome::Seconds(w)));
            rows.push(Row::new(series, x, "read", Outcome::Seconds(rd)));
        }
        Err(e) => {
            rows.push(Row::new(series, x, "write", Outcome::failed(&e)));
            rows.push(Row::new(series, x, "read", Outcome::failed(&e)));
        }
    }
}

/// Table 3: C-Spark-shuffle vs Pangea × {1, 2} disks over the size sweep.
pub fn run_tab3(cfg: &ShuffleBenchConfig) -> Vec<Row> {
    let mut rows = Vec::new();
    for &bytes in &cfg.per_worker_bytes {
        let x = format!("{}KB/thread", bytes / KB);
        push(
            &mut rows,
            "c-spark-shuffle",
            &x,
            cspark_shuffle(&format!("t3c-{bytes}"), bytes),
        );
        for disks in [1usize, 2] {
            push(
                &mut rows,
                &format!("pangea-{disks}disk"),
                &x,
                pangea_shuffle(
                    &format!("t3p{disks}-{bytes}"),
                    cfg,
                    bytes,
                    disks,
                    "data-aware",
                ),
            );
        }
    }
    rows
}

/// The Fig. 10 strategy list.
pub const FIG10_STRATEGIES: [&str; 4] = ["data-aware", "dbmin-tuned", "mru", "lru"];

/// Fig. 10: paging policies under shuffle, at spilling sizes.
pub fn run_fig10(cfg: &ShuffleBenchConfig) -> Vec<Row> {
    let mut rows = Vec::new();
    for &bytes in &cfg.per_worker_bytes {
        let x = format!("{}KB/thread", bytes / KB);
        for strategy in FIG10_STRATEGIES {
            push(
                &mut rows,
                strategy,
                &x,
                pangea_shuffle(&format!("f10-{strategy}-{bytes}"), cfg, bytes, 1, strategy),
            );
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pangea_shuffle_beats_cspark_on_writes() {
        let cfg = ShuffleBenchConfig {
            per_worker_bytes: vec![128 * KB],
            memory: 512 * KB,
            page_size: 16 * KB,
        };
        let rows = run_tab3(&cfg);
        let get = |series: &str, metric: &str| {
            rows.iter()
                .find(|r| r.series == series && r.metric == metric)
                .and_then(|r| r.outcome.value())
                .expect("measured")
        };
        // The paper reports 1.1–1.4× on writes and bigger gaps on reads;
        // assert only the direction, which must hold at any scale.
        assert!(
            get("pangea-1disk", "write") < get("c-spark-shuffle", "write") * 1.5,
            "pangea write in the same ballpark or better"
        );
        assert!(rows.iter().all(|r| !r.outcome.is_failure()));
    }

    #[test]
    fn fig10_strategies_all_complete() {
        let cfg = ShuffleBenchConfig {
            per_worker_bytes: vec![192 * KB],
            memory: 256 * KB,
            page_size: 16 * KB,
        };
        let rows = run_fig10(&cfg);
        assert_eq!(rows.len(), 4 * 2);
        assert!(
            rows.iter().all(|r| !r.outcome.is_failure()),
            "failures: {:?}",
            rows.iter()
                .filter(|r| r.outcome.is_failure())
                .collect::<Vec<_>>()
        );
    }
}
