//! Fig. 5 (TPC-H latency, Pangea vs Spark-over-HDFS) and Fig. 6
//! (recovery latency vs cluster size).
//!
//! Paper setup: scale-100 TPC-H on 11 nodes; nine queries; Pangea picks
//! heterogeneous replicas (up to 20× on Q17). Recovery of the lineitem
//! table after one node failure on 10/20/30 workers, with colliding
//! ratios 9% / 3% / 0%.
//!
//! Expected shape: Pangea ≫ Spark on the join queries that use
//! co-partitioned replicas (Q04 Q12 Q13 Q14 Q17 Q22); comparable on the
//! pure scans (Q01 Q06). Recovery time small and roughly flat-to-
//! declining per node count; colliding ratio declines to zero.

use crate::report::{bench_dir, Outcome, Row};
use pangea_cluster::{ClusterConfig, PartitionScheme, SimCluster};
use pangea_common::{KB, MB};
use pangea_query::{PangeaTpch, QueryId, SparkTpch, TpchData};
use std::time::Instant;

/// Fig. 5 parameters.
#[derive(Debug, Clone)]
pub struct Fig5Config {
    /// TPC-H scale factor.
    pub sf: f64,
    /// Pangea worker nodes.
    pub nodes: u32,
    /// Spark shuffle partitions.
    pub partitions: u32,
}

impl Fig5Config {
    /// Quick configuration for Criterion runs.
    pub fn quick() -> Self {
        Self {
            sf: 0.002,
            nodes: 3,
            partitions: 6,
        }
    }

    /// Fuller configuration for the `repro` binary.
    pub fn full() -> Self {
        Self {
            sf: 0.01,
            nodes: 4,
            partitions: 8,
        }
    }
}

/// Builds both engines over the same data.
pub fn build_engines(cfg: &Fig5Config) -> (PangeaTpch, SparkTpch) {
    let data = TpchData::generate(cfg.sf);
    let cluster = SimCluster::bootstrap(
        ClusterConfig::new(bench_dir("fig5-pangea"), cfg.nodes)
            .with_pool_capacity(16 * MB)
            .with_page_size(32 * KB),
        "pangea-default-keypair",
    )
    .expect("bootstrap");
    let pangea = PangeaTpch::load(&cluster, &data).expect("pangea load");
    let spark = SparkTpch::load(
        &bench_dir("fig5-spark"),
        &data,
        64 * MB,
        cfg.partitions,
        None,
    )
    .expect("spark load");
    (pangea, spark)
}

/// Runs all nine queries on both engines.
pub fn run(cfg: &Fig5Config) -> Vec<Row> {
    let (pangea, spark) = build_engines(cfg);
    let mut rows = Vec::new();
    for q in QueryId::ALL {
        let t = Instant::now();
        let pr = pangea.run(q);
        let pt = t.elapsed();
        let t = Instant::now();
        let sr = spark.run(q);
        let st = t.elapsed();
        if let (Ok(a), Ok(b)) = (&pr, &sr) {
            assert_eq!(a, b, "{} cross-engine mismatch", q.label());
        }
        rows.push(Row::new(
            "pangea",
            q.label(),
            "latency",
            match pr {
                Ok(_) => Outcome::secs(pt),
                Err(e) => Outcome::failed(&e),
            },
        ));
        rows.push(Row::new(
            "spark/hdfs",
            q.label(),
            "latency",
            match sr {
                Ok(_) => Outcome::secs(st),
                Err(e) => Outcome::failed(&e),
            },
        ));
    }
    rows
}

/// Fig. 6 parameters.
#[derive(Debug, Clone)]
pub struct Fig6Config {
    /// Worker counts to sweep (the paper: 10/20/30).
    pub node_counts: Vec<u32>,
    /// TPC-H scale factor for the lineitem table.
    pub sf: f64,
}

impl Fig6Config {
    /// Quick configuration.
    pub fn quick() -> Self {
        Self {
            node_counts: vec![4, 8],
            sf: 0.001,
        }
    }

    /// Fuller configuration (the paper's 10/20/30 workers).
    pub fn full() -> Self {
        Self {
            node_counts: vec![10, 20, 30],
            sf: 0.005,
        }
    }
}

/// Runs the recovery sweep: loads lineitem with two hash replicas,
/// kills one node, recovers it, and reports latency + colliding ratio.
pub fn run_recovery(cfg: &Fig6Config) -> Vec<Row> {
    let data = TpchData::generate(cfg.sf);
    let mut rows = Vec::new();
    for &nodes in &cfg.node_counts {
        let cluster = SimCluster::bootstrap(
            ClusterConfig::new(bench_dir(&format!("fig6-{nodes}")), nodes)
                .with_pool_capacity(8 * MB)
                .with_page_size(32 * KB),
            "pangea-default-keypair",
        )
        .expect("bootstrap");
        let set = cluster
            .create_dist_set("lineitem", PartitionScheme::round_robin(nodes))
            .expect("create");
        let mut d = set.loader().expect("loader");
        for li in &data.lineitem {
            d.dispatch(&li.to_line()).expect("dispatch");
        }
        d.finish().expect("finish");
        let field = |idx: usize| {
            move |rec: &[u8]| {
                rec.split(|&b| b == b'|')
                    .nth(idx)
                    .unwrap_or_default()
                    .to_vec()
            }
        };
        let r1 = cluster
            .register_replica(
                "lineitem",
                "lineitem_ok",
                PartitionScheme::hash("orderkey", nodes * 2, field(0)),
            )
            .expect("replica 1");
        let report = cluster
            .register_replica(
                "lineitem",
                "lineitem_pk",
                PartitionScheme::hash("partkey", nodes * 2, field(1)),
            )
            .expect("replica 2");
        let _ = r1;
        let x = format!("{nodes}nodes");
        rows.push(Row::new(
            "pangea",
            &x,
            "colliding-ratio",
            Outcome::Seconds(report.colliding_ratio()),
        ));
        cluster.kill_node(pangea_common::NodeId(0)).expect("kill");
        let rec = cluster
            .recover_node(pangea_common::NodeId(0))
            .expect("recover");
        rows.push(Row::new(
            "pangea",
            &x,
            "recovery",
            Outcome::secs(rec.duration),
        ));
        rows.push(Row::new(
            "pangea",
            &x,
            "objects-restored",
            Outcome::Count(rec.objects_restored),
        ));
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q17_shape_pangea_wins_big() {
        let rows = run(&Fig5Config {
            sf: 0.002,
            nodes: 2,
            partitions: 4,
        });
        let find = |series: &str, q: &str| {
            rows.iter()
                .find(|r| r.series == series && r.x == q)
                .and_then(|r| r.outcome.value())
                .expect("measured")
        };
        // Timings at test scale are tiny and noisy per query; assert
        // the aggregate shape (Pangea total below the Spark total, which
        // pays the HDFS load plus query-time shuffles) and the headline
        // Q17 direction.
        let total = |series: &str| {
            QueryId::ALL
                .iter()
                .map(|q| find(series, q.label()))
                .sum::<f64>()
        };
        assert!(
            total("pangea") < total("spark/hdfs"),
            "pangea total must beat spark total"
        );
        assert!(
            find("pangea", "Q17") < find("spark/hdfs", "Q17") * 2.0,
            "pangea Q17 must not lose badly"
        );
        assert_eq!(rows.len(), 18);
    }

    #[test]
    fn recovery_ratio_declines_with_nodes() {
        let rows = run_recovery(&Fig6Config {
            node_counts: vec![2, 6],
            sf: 0.0005,
        });
        let ratio = |x: &str| {
            rows.iter()
                .find(|r| r.x == x && r.metric == "colliding-ratio")
                .and_then(|r| r.outcome.value())
                .expect("ratio")
        };
        assert!(ratio("2nodes") > ratio("6nodes"));
        assert!(rows
            .iter()
            .filter(|r| r.metric == "recovery")
            .all(|r| r.outcome.value().is_some()));
    }
}
