//! Result-row plumbing shared by the `repro` binary and the Criterion
//! benches: every experiment runner returns [`Row`]s; failures the paper
//! plots as gaps are carried as [`Outcome::Failed`] rows.

use pangea_common::PangeaError;
use std::fmt;
use std::time::Duration;

/// A measured value, or the gap the paper plots for failed systems.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// Wall-clock seconds.
    Seconds(f64),
    /// Bytes (memory reports).
    Bytes(u64),
    /// A count.
    Count(u64),
    /// The system failed (plotted as a gap); carries the failure text.
    Failed(String),
}

impl Outcome {
    /// Wraps a duration.
    pub fn secs(d: Duration) -> Self {
        Outcome::Seconds(d.as_secs_f64())
    }

    /// Converts an error into the gap representation.
    pub fn failed(e: &PangeaError) -> Self {
        Outcome::Failed(e.to_string())
    }

    /// The numeric value, if the run succeeded.
    pub fn value(&self) -> Option<f64> {
        match self {
            Outcome::Seconds(s) => Some(*s),
            Outcome::Bytes(b) => Some(*b as f64),
            Outcome::Count(c) => Some(*c as f64),
            Outcome::Failed(_) => None,
        }
    }

    /// True when this row is a gap.
    pub fn is_failure(&self) -> bool {
        matches!(self, Outcome::Failed(_))
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Outcome::Seconds(s) => write!(f, "{s:.3}s"),
            Outcome::Bytes(b) => {
                write!(f, "{}", pangea_common::units::fmt_bytes(*b as usize))
            }
            Outcome::Count(c) => write!(f, "{c}"),
            Outcome::Failed(_) => write!(f, "FAILED"),
        }
    }
}

/// One data point of one experiment.
#[derive(Debug, Clone)]
pub struct Row {
    /// The series (system/configuration) label.
    pub series: String,
    /// The x-axis value label (scale point, query id, …).
    pub x: String,
    /// The metric label (`write`, `read`, `latency`, `memory`, …).
    pub metric: String,
    /// The measurement.
    pub outcome: Outcome,
}

impl Row {
    /// Builds one row.
    pub fn new(
        series: impl Into<String>,
        x: impl Into<String>,
        metric: impl Into<String>,
        outcome: Outcome,
    ) -> Self {
        Self {
            series: series.into(),
            x: x.into(),
            metric: metric.into(),
            outcome,
        }
    }
}

/// Prints one experiment's rows as an aligned table.
pub fn print_rows(title: &str, rows: &[Row]) {
    println!("\n=== {title} ===");
    let w1 = rows
        .iter()
        .map(|r| r.series.len())
        .max()
        .unwrap_or(6)
        .max(6);
    let w2 = rows.iter().map(|r| r.x.len()).max().unwrap_or(4).max(4);
    let w3 = rows
        .iter()
        .map(|r| r.metric.len())
        .max()
        .unwrap_or(6)
        .max(6);
    println!("{:<w1$}  {:<w2$}  {:<w3$}  value", "series", "x", "metric");
    for r in rows {
        println!(
            "{:<w1$}  {:<w2$}  {:<w3$}  {}",
            r.series, r.x, r.metric, r.outcome
        );
    }
}

/// A scratch directory for one experiment run.
pub fn bench_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("pangea-bench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcomes_format_and_classify() {
        assert_eq!(Outcome::Seconds(1.5).to_string(), "1.500s");
        assert_eq!(Outcome::Count(7).to_string(), "7");
        let gap = Outcome::failed(&PangeaError::SystemFailure("x".into()));
        assert_eq!(gap.to_string(), "FAILED");
        assert!(gap.is_failure());
        assert!(gap.value().is_none());
        assert_eq!(Outcome::Seconds(2.0).value(), Some(2.0));
    }
}
