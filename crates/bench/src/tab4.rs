//! Table 4 (key–value aggregation): STL `unordered_map` vs the Pangea
//! hashmap (virtual hash buffer) vs Redis.
//!
//! Paper setup (§9.2.3): aggregate 50–300 M random `<string,int>` pairs
//! following the incise.org benchmark. The STL map starts swapping
//! virtual memory at 200 M keys (47 s → 7657 s); the Pangea hashmap
//! only starts spilling at 300 M; Redis pays a round trip per operation
//! and fails outright at 300 M.
//!
//! Scaled here: distinct-key counts swept against fixed memory budgets
//! chosen so the same three regimes appear — STL thrashes first (its
//! allocator wastes more), Pangea spills gracefully, Redis hits
//! `maxmemory` at the top scale.

use crate::report::{bench_dir, Outcome, Row};
use pangea_common::{Result, KB};
use pangea_core::{counting_hash_buffer, HashConfig, NodeConfig, StorageNode};
use pangea_layered::{RedisLike, StlVmMap};
use std::time::Instant;

/// Aggregation experiment parameters.
#[derive(Debug, Clone)]
pub struct HashAggConfig {
    /// Distinct-key counts to sweep.
    pub scales: Vec<usize>,
    /// Pangea pool bytes.
    pub pangea_memory: usize,
    /// STL process memory budget (smaller effective capacity: the STL
    /// node allocator wastes more per entry, as the paper observes).
    pub stl_budget: u64,
    /// Redis `maxmemory`.
    pub redis_budget: u64,
}

impl HashAggConfig {
    /// Quick configuration.
    pub fn quick() -> Self {
        Self {
            scales: vec![2_000, 8_000],
            pangea_memory: 512 * KB,
            stl_budget: 256 * KB as u64,
            redis_budget: 512 * KB as u64,
        }
    }

    /// Fuller sweep mirroring the paper's six scale points.
    pub fn full() -> Self {
        Self {
            scales: vec![5_000, 10_000, 15_000, 20_000, 25_000, 30_000],
            pangea_memory: 1_024 * KB,
            stl_budget: 768 * KB as u64,
            redis_budget: 1_024 * KB as u64,
        }
    }
}

fn key(i: usize, distinct: usize) -> Vec<u8> {
    // Two inserts per distinct key on average (aggregation happens).
    format!("key-{:09}", i % distinct).into_bytes()
}

/// Pangea hashmap run.
pub fn pangea_agg(tag: &str, cfg: &HashAggConfig, distinct: usize) -> Result<f64> {
    let node = StorageNode::new(
        NodeConfig::new(bench_dir(tag))
            .with_pool_capacity(cfg.pangea_memory)
            .with_page_size(16 * KB),
    )?;
    let t = Instant::now();
    // The paper initializes the hashmap with 200 root partitions.
    let mut h = counting_hash_buffer(&node, "agg", HashConfig::new(16))?;
    for i in 0..distinct * 2 {
        h.insert_merge(&key(i, distinct), 1)?;
    }
    let out = h.finalize()?;
    debug_assert_eq!(out.len(), distinct);
    std::hint::black_box(out.len());
    Ok(t.elapsed().as_secs_f64())
}

/// Swap-device bandwidth for the STL baseline: page faults must cost
/// real time for the paper's 47 s → 7 657 s blow-up regime to appear.
const STL_SWAP_BW: u64 = 200 * pangea_common::MB as u64;

/// STL `unordered_map` run.
pub fn stl_agg(tag: &str, cfg: &HashAggConfig, distinct: usize) -> Result<f64> {
    let mut m = StlVmMap::new(cfg.stl_budget, &bench_dir(tag), Some(STL_SWAP_BW))?;
    let t = Instant::now();
    for i in 0..distinct * 2 {
        m.merge(&key(i, distinct), 1)?;
    }
    std::hint::black_box(m.len());
    Ok(t.elapsed().as_secs_f64())
}

/// Redis run.
pub fn redis_agg(cfg: &HashAggConfig, distinct: usize) -> Result<f64> {
    let mut r = RedisLike::new(cfg.redis_budget);
    let t = Instant::now();
    for i in 0..distinct * 2 {
        r.incr_by(&key(i, distinct), 1)?;
    }
    std::hint::black_box(r.len());
    Ok(t.elapsed().as_secs_f64())
}

/// Runs the whole Table 4 grid.
pub fn run(cfg: &HashAggConfig) -> Vec<Row> {
    let mut rows = Vec::new();
    for &distinct in &cfg.scales {
        let x = format!("{distinct}keys");
        let mut push = |series: &str, r: Result<f64>| {
            rows.push(Row::new(
                series,
                &x,
                "latency",
                match r {
                    Ok(s) => Outcome::Seconds(s),
                    Err(e) => Outcome::failed(&e),
                },
            ));
        };
        push(
            "stl-unordered-map",
            stl_agg(&format!("t4s-{distinct}"), cfg, distinct),
        );
        push(
            "pangea-hashmap",
            pangea_agg(&format!("t4p-{distinct}"), cfg, distinct),
        );
        push("redis", redis_agg(cfg, distinct));
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn redis_fails_at_the_top_scale_pangea_survives() {
        let cfg = HashAggConfig {
            scales: vec![500, 6_000],
            pangea_memory: 256 * KB,
            stl_budget: 64 * KB as u64,
            redis_budget: 64 * KB as u64,
        };
        let rows = run(&cfg);
        let cell = |series: &str, x: &str| {
            rows.iter()
                .find(|r| r.series == series && r.x == x)
                .unwrap()
        };
        assert!(cell("redis", "500keys").outcome.value().is_some());
        assert!(
            cell("redis", "6000keys").outcome.is_failure(),
            "Redis must hit maxmemory"
        );
        assert!(
            cell("pangea-hashmap", "6000keys").outcome.value().is_some(),
            "Pangea spills instead of failing"
        );
        assert!(cell("stl-unordered-map", "6000keys")
            .outcome
            .value()
            .is_some());
    }
}
