//! # pangea-bench
//!
//! The reproduction harness: one runner module per paper table/figure
//! (see DESIGN.md §4 for the experiment index), a shared row/report
//! format, and the `repro` binary that prints every row the paper
//! reports. The Criterion benches under `benches/` call the same
//! runners with quick configurations.

pub mod fig3_4;
pub mod fig5_6;
pub mod fig7_8_9;
pub mod report;
pub mod sloc;
pub mod tab3_fig10;
pub mod tab4;

pub use report::{bench_dir, print_rows, Outcome, Row};
