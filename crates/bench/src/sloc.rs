//! Table 2: source-code break-down of the Pangea-based relational query
//! processor.
//!
//! The paper reports 5 889 SLOC across eleven components (scan, join,
//! map builders, aggregation, filter, hash, flatten, pipeline, query
//! scheduling). This module counts the corresponding components of this
//! repository — sources are embedded at compile time, so the table always
//! reflects the built code.

use crate::report::{Outcome, Row};

/// One component of the query processor.
struct Component {
    paper_name: &'static str,
    files: &'static [(&'static str, &'static str)],
}

macro_rules! src {
    ($path:literal) => {
        ($path, include_str!(concat!("../../", $path)))
    };
}

const COMPONENTS: &[Component] = &[
    Component {
        paper_name: "Scan",
        files: &[src!("core/src/scan.rs")],
    },
    Component {
        paper_name: "Join",
        files: &[src!("query/src/pangea_exec.rs")],
    },
    Component {
        paper_name: "Build broadcast/partitioned hash map",
        files: &[src!("core/src/join.rs")],
    },
    Component {
        paper_name: "Aggregate (local + final)",
        files: &[src!("core/src/hash.rs"), src!("core/src/hashpage.rs")],
    },
    Component {
        paper_name: "Filter / Hash / Flatten",
        files: &[src!("query/src/schema.rs"), src!("query/src/exec.rs")],
    },
    Component {
        paper_name: "Pipeline",
        files: &[src!("core/src/seq.rs"), src!("core/src/shuffle.rs")],
    },
    Component {
        paper_name: "QueryScheduling",
        files: &[
            src!("cluster/src/manager.rs"),
            src!("cluster/src/partition.rs"),
        ],
    },
];

/// Counts source lines of code (non-empty, non-comment-only lines).
pub fn sloc(source: &str) -> u64 {
    source
        .lines()
        .map(str::trim)
        .filter(|l| {
            !l.is_empty() && !l.starts_with("//") && !l.starts_with("/*") && !l.starts_with('*')
        })
        .count() as u64
}

/// Builds the Table 2 rows.
pub fn run() -> Vec<Row> {
    let mut rows = Vec::new();
    let mut total = 0;
    for c in COMPONENTS {
        let lines: u64 = c.files.iter().map(|(_, text)| sloc(text)).sum();
        total += lines;
        rows.push(Row::new(c.paper_name, "-", "sloc", Outcome::Count(lines)));
    }
    rows.push(Row::new("Total", "-", "sloc", Outcome::Count(total)));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sloc_skips_blank_and_comment_lines() {
        let src = "fn a() {}\n\n// comment\n  // indented comment\nlet x = 1;\n";
        assert_eq!(sloc(src), 2);
    }

    #[test]
    fn table2_has_components_and_plausible_total() {
        let rows = run();
        assert_eq!(rows.len(), COMPONENTS.len() + 1);
        let total = rows.last().unwrap().outcome.value().unwrap();
        // The paper's processor is 5 889 SLOC; ours should be the same
        // order of magnitude.
        assert!(total > 1_000.0, "total {total} too small");
        assert!(total < 50_000.0, "total {total} implausible");
    }
}
