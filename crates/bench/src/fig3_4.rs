//! Fig. 3 (k-means latency) and Fig. 4 (memory usage).
//!
//! Paper setup: 1–3 billion 10-d points on 11 nodes, five iterations;
//! Pangea × {Data-aware, LRU, MRU, DBMIN-1, DBMIN-1000, DBMIN-adaptive}
//! vs Spark × {HDFS, Alluxio, Ignite}. Scaled here (DESIGN.md §2): the
//! same per-worker code paths at point counts chosen so the smallest
//! scale fits the pool and the larger ones page.
//!
//! Expected shape: Pangea/data-aware fastest (the paper reports up to
//! 6×); DBMIN-adaptive and DBMIN-1000 block under pressure; Spark over
//! Alluxio double-caches (high memory, slow iterations); Ignite fails
//! at the largest scale.

use crate::report::{bench_dir, Outcome, Row};
use pangea_common::{KB, MB};
use pangea_kmeans::{run_kmeans, KmeansConfig, PangeaKmeans, SparkKmeans};
use pangea_layered::{DataStore, SimAlluxio, SimHdfs, SimIgnite};
use std::sync::Arc;

/// Scaled experiment parameters.
#[derive(Debug, Clone)]
pub struct Fig3Config {
    /// Point counts (the paper's 1B/2B/3B, scaled).
    pub scales: Vec<usize>,
    /// Pangea pool bytes per run (sized so `scales[0]` fits).
    pub pangea_pool: usize,
    /// Spark executor memory.
    pub spark_memory: usize,
    /// Alluxio worker memory (double-caching pressure).
    pub alluxio_memory: u64,
    /// Ignite off-heap maximum (fails at the largest scale).
    pub ignite_off_heap: u64,
    /// Training iterations.
    pub iterations: usize,
    /// Disk bandwidth for every system's storage (bytes/s): converts
    /// I/O volume into wall-clock so the storage effects the paper
    /// measures dominate the micro-scale CPU noise.
    pub disk_bandwidth: u64,
}

impl Fig3Config {
    /// Quick configuration for Criterion runs.
    ///
    /// Memory parity rule (paper §9.1.1: "The total of Spark executor
    /// memory and Alluxio worker memory is also limited to 50GB"): the
    /// Spark executor gets the same total RAM as Pangea's unified pool —
    /// the *split* into storage/execution pools (and double caching under
    /// Alluxio) is exactly the un-coordinated-resource cost the paper
    /// measures.
    pub fn quick() -> Self {
        Self {
            scales: vec![1_500, 3_000],
            pangea_pool: 256 * KB,
            spark_memory: 256 * KB,
            alluxio_memory: 192 * KB as u64,
            ignite_off_heap: 384 * KB as u64,
            iterations: 2,
            disk_bandwidth: 100 * MB as u64,
        }
    }

    /// Fuller configuration for the `repro` binary.
    pub fn full() -> Self {
        Self {
            scales: vec![4_000, 8_000, 12_000],
            pangea_pool: 640 * KB,
            spark_memory: 640 * KB,
            // Sized so the smallest scale fits the worker (like the
            // paper's 1 B points) and the larger two are gaps.
            alluxio_memory: 448 * KB as u64,
            ignite_off_heap: 1_200 * KB as u64,
            iterations: 5,
            disk_bandwidth: 100 * MB as u64,
        }
    }
}

/// The Fig. 3 systems list, in paper order.
pub const FIG3_SYSTEMS: [&str; 9] = [
    "pangea/data-aware",
    "pangea/lru",
    "pangea/mru",
    "pangea/dbmin-1",
    "pangea/dbmin-1000",
    "pangea/dbmin-adaptive",
    "spark/hdfs",
    "spark/alluxio",
    "spark/ignite",
];

/// Runs one (system, scale) cell; returns (latency, peak-memory) rows.
pub fn run_cell(cfg: &Fig3Config, system: &str, points: usize) -> (Row, Row) {
    let kcfg = KmeansConfig {
        iterations: cfg.iterations,
        ..KmeansConfig::new(points)
    };
    let tag = format!("fig3-{}-{points}", system.replace('/', "-"));
    let outcome = match system {
        s if s.starts_with("pangea/") => {
            let strategy = &s["pangea/".len()..];
            PangeaKmeans::with_bandwidth(
                &bench_dir(&tag),
                cfg.pangea_pool,
                strategy,
                Some(cfg.disk_bandwidth),
            )
            .and_then(|mut b| run_kmeans(&mut b, &kcfg))
        }
        "spark/hdfs" => {
            SimHdfs::with_bandwidth(&bench_dir(&tag), 1, 64 * KB, Some(cfg.disk_bandwidth))
                .and_then(|h| {
                    let mut b = SparkKmeans::new(Arc::new(h), cfg.spark_memory);
                    run_kmeans(&mut b, &kcfg)
                })
        }
        "spark/alluxio" => {
            // Double caching (§9.1.1): the Alluxio worker takes its share
            // out of the same RAM total, shrinking the executor — and the
            // data is then cached twice (worker memory + RDD cache).
            SimHdfs::with_bandwidth(&bench_dir(&tag), 1, 64 * KB, Some(cfg.disk_bandwidth))
                .and_then(|h| {
                    let store: Arc<dyn DataStore> = Arc::new(SimAlluxio::with_under_store(
                        cfg.alluxio_memory,
                        Arc::new(h),
                    ));
                    let executor = cfg.spark_memory.saturating_sub(cfg.alluxio_memory as usize);
                    let mut b = SparkKmeans::new(store, executor.max(64 * KB));
                    run_kmeans(&mut b, &kcfg)
                })
        }
        "spark/ignite" => {
            let store: Arc<dyn DataStore> = Arc::new(SimIgnite::new(cfg.ignite_off_heap));
            let mut b = SparkKmeans::new(store, cfg.spark_memory);
            run_kmeans(&mut b, &kcfg)
        }
        other => panic!("unknown Fig. 3 system '{other}'"),
    };
    let x = format!("{points}pts");
    match outcome {
        Ok(out) => (
            Row::new(system, &x, "latency", Outcome::secs(out.total_time())),
            Row::new(
                system,
                &x,
                "peak-memory",
                Outcome::Bytes(out.peak_mem_bytes),
            ),
        ),
        Err(e) => (
            Row::new(system, &x, "latency", Outcome::failed(&e)),
            Row::new(system, &x, "peak-memory", Outcome::failed(&e)),
        ),
    }
}

/// Runs the whole Fig. 3 + Fig. 4 grid. Returns (fig3_rows, fig4_rows).
pub fn run(cfg: &Fig3Config) -> (Vec<Row>, Vec<Row>) {
    let mut fig3 = Vec::new();
    let mut fig4 = Vec::new();
    for system in FIG3_SYSTEMS {
        for &points in &cfg.scales {
            let (lat, mem) = run_cell(cfg, system, points);
            fig3.push(lat);
            fig4.push(mem);
        }
    }
    (fig3, fig4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_aware_beats_spark_stacks_and_gaps_appear() {
        let cfg = Fig3Config {
            scales: vec![800],
            pangea_pool: 256 * KB,
            spark_memory: 512 * KB,
            alluxio_memory: 24 * KB as u64, // forces the Alluxio gap
            ignite_off_heap: 2 * MB as u64,
            iterations: 1,
            disk_bandwidth: 500 * MB as u64,
        };
        let (p, _) = run_cell(&cfg, "pangea/data-aware", 800);
        assert!(p.outcome.value().is_some(), "pangea must succeed: {p:?}");
        let (a, _) = run_cell(&cfg, "spark/alluxio", 800);
        assert!(a.outcome.is_failure(), "tiny Alluxio must be a gap");
        let (h, _) = run_cell(&cfg, "spark/hdfs", 800);
        assert!(h.outcome.value().is_some());
    }
}
