//! k-means directly on a Pangea storage node (the paper's §9.1.1
//! implementation: "We use one write-through locality set to store input
//! data, and use one write-back locality set to store the points with
//! norms for fast distance computation").

use crate::{squared_norm, KmeansBackend};
use pangea_common::{Record, Result};
use pangea_core::{HashConfig, NodeConfig, ObjectIter, SetOptions, StorageNode, VirtualHashBuffer};
use std::path::Path;

/// The Pangea k-means backend. The paging strategy is configurable so
/// Fig. 3 can sweep Pangea × {data-aware, LRU, MRU, DBMIN-…}.
#[derive(Debug)]
pub struct PangeaKmeans {
    node: StorageNode,
    agg_runs: u64,
    point_bytes: u64,
}

impl PangeaKmeans {
    /// A fresh single-worker node under `dir` with the given pool size
    /// and paging strategy.
    pub fn new(dir: &Path, pool_capacity: usize, strategy: &str) -> Result<Self> {
        Self::with_bandwidth(dir, pool_capacity, strategy, None)
    }

    /// As [`PangeaKmeans::new`] with an optional disk bandwidth (benches
    /// pace the disks so I/O volume converts to wall-clock).
    pub fn with_bandwidth(
        dir: &Path,
        pool_capacity: usize,
        strategy: &str,
        disk_bandwidth: Option<u64>,
    ) -> Result<Self> {
        let mut cfg = NodeConfig::new(dir)
            .with_pool_capacity(pool_capacity)
            .with_page_size(8 * pangea_common::KB)
            .with_strategy(strategy);
        if let Some(bw) = disk_bandwidth {
            cfg = cfg.with_disk_bandwidth(bw);
        }
        let node = StorageNode::new(cfg)?;
        Ok(Self::with_node(node))
    }

    /// Wraps an existing node (cluster benches).
    pub fn with_node(node: StorageNode) -> Self {
        Self {
            node,
            agg_runs: 0,
            point_bytes: 0,
        }
    }

    /// The underlying storage node (stats, pool).
    pub fn node(&self) -> &StorageNode {
        &self.node
    }

    fn estimated_pages(&self, bytes: u64) -> u64 {
        (bytes / self.node.default_page_size() as u64).max(1)
    }
}

impl KmeansBackend for PangeaKmeans {
    fn name(&self) -> String {
        format!("pangea/{}", self.node.strategy_name())
    }

    fn load_points(&mut self, points: &[Vec<f64>]) -> Result<()> {
        self.point_bytes = points.iter().map(|p| (p.encoded_len() + 4) as u64).sum();
        // User data: write-through (persisted as imported; §9.1.1). The
        // page estimate feeds only the DBMIN baselines.
        let set = self.node.create_set(
            "points",
            SetOptions::write_through()
                .with_estimated_pages(self.estimated_pages(self.point_bytes)),
        )?;
        let mut w = set.writer();
        for p in points {
            w.add_record(p)?;
        }
        w.finish()
    }

    fn init_norms(&mut self) -> Result<()> {
        let points = self
            .node
            .get_set("points")
            .ok_or_else(|| pangea_common::PangeaError::usage("points not loaded"))?;
        // Job data: write-back (transient; spilled only under pressure).
        let norms = self.node.create_set(
            "points_norms",
            SetOptions::write_back().with_estimated_pages(
                self.estimated_pages(self.point_bytes + self.point_bytes / 10),
            ),
        )?;
        let mut w = norms.writer();
        let mut iters = points.page_iterators(1)?;
        while let Some(pin) = iters[0].next() {
            let pin = pin?;
            let mut it = ObjectIter::new(&pin);
            while let Some(rec) = it.next() {
                let p = <Vec<f64> as Record>::decode(rec)?;
                let mut with_norm = Vec::with_capacity(p.len() + 1);
                with_norm.push(squared_norm(&p));
                with_norm.extend_from_slice(&p);
                w.add_record(&with_norm)?;
            }
        }
        w.finish()?;
        points.declare_idle()
    }

    fn for_each_norm(&mut self, f: &mut dyn FnMut(&[f64]) -> Result<()>) -> Result<()> {
        let norms = self
            .node
            .get_set("points_norms")
            .ok_or_else(|| pangea_common::PangeaError::usage("norms not built"))?;
        let mut iters = norms.page_iterators(1)?;
        while let Some(pin) = iters[0].next() {
            let pin = pin?;
            let mut it = ObjectIter::new(&pin);
            while let Some(rec) = it.next() {
                let v = <Vec<f64> as Record>::decode(rec)?;
                f(&v)?;
            }
        }
        norms.declare_idle()
    }

    fn aggregate_pass(
        &mut self,
        dims: usize,
        assign: &dyn Fn(&[f64]) -> u32,
    ) -> Result<Vec<(u32, Vec<f64>)>> {
        self.agg_runs += 1;
        // Hash data: the virtual hash buffer (cluster → [sums…, count]).
        let mut agg: VirtualHashBuffer<Vec<f64>, _> = VirtualHashBuffer::create(
            &self.node,
            &format!("kmeans.agg{}", self.agg_runs),
            HashConfig::new(2),
            |acc: &mut Vec<f64>, v: Vec<f64>| {
                for (a, b) in acc.iter_mut().zip(v) {
                    *a += b;
                }
            },
        )?;
        let norms = self
            .node
            .get_set("points_norms")
            .ok_or_else(|| pangea_common::PangeaError::usage("norms not built"))?;
        let mut contribution = vec![0.0f64; dims + 1];
        let mut iters = norms.page_iterators(1)?;
        while let Some(pin) = iters[0].next() {
            let pin = pin?;
            let mut it = ObjectIter::new(&pin);
            while let Some(rec) = it.next() {
                let v = <Vec<f64> as Record>::decode(rec)?;
                let cluster = assign(&v);
                contribution[..dims].copy_from_slice(&v[1..]);
                contribution[dims] = 1.0;
                agg.insert_merge(&cluster.to_le_bytes(), contribution.clone())?;
            }
        }
        norms.declare_idle()?;
        let mut out = Vec::new();
        for (key, sums) in agg.finalize()? {
            let cluster =
                u32::from_le_bytes(key.as_slice().try_into().map_err(|_| {
                    pangea_common::PangeaError::Corruption("bad cluster key".into())
                })?);
            out.push((cluster, sums));
        }
        out.sort_by_key(|(c, _)| *c);
        Ok(out)
    }

    fn mem_bytes(&self) -> u64 {
        self.node.pool().used() as u64
    }

    fn cleanup(&mut self) -> Result<()> {
        for name in ["points_norms", "points"] {
            if let Some(set) = self.node.get_set(name) {
                let id = set.id();
                set.end_lifetime()?;
                self.node.drop_set(id)?;
            }
        }
        Ok(())
    }
}
