//! k-means on the layered stack (paper §9.1.1): a Spark executor over a
//! pluggable store (HDFS / Alluxio / Ignite).
//!
//! * Input points are a dataset in the store; the executor caches them
//!   as an RDD (paying per-record deserialization + per-object
//!   allocation at the boundary);
//! * points-with-norms is a *materialized* RDD (MEMORY_AND_DISK): the
//!   partitions that fit the storage pool stay cached, the rest spill
//!   and are re-read every iteration — the paper's Alluxio observation
//!   ("3× slower iterations" once double caching shrinks working memory);
//! * the per-iteration aggregation reserves execution-pool memory,
//!   which under pressure evicts cached partitions (Spark's unified
//!   memory manager).

use crate::{squared_norm, KmeansBackend};
use pangea_common::{FxHashMap, Record, Result};
use pangea_layered::{DataStore, SimSpark, SparkConfig};
use std::sync::Arc;

/// The Spark-over-store k-means backend.
pub struct SparkKmeans {
    spark: SimSpark,
    store: Arc<dyn DataStore>,
    dims_hint: usize,
}

impl std::fmt::Debug for SparkKmeans {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SparkKmeans")
            .field("store", &self.store.name())
            .finish()
    }
}

impl SparkKmeans {
    /// An executor with `executor_memory` bytes over `store`.
    pub fn new(store: Arc<dyn DataStore>, executor_memory: usize) -> Self {
        let spark = SimSpark::new(
            Arc::clone(&store),
            SparkConfig::new(executor_memory, 64 * pangea_common::KB),
        );
        Self {
            spark,
            store,
            dims_hint: 0,
        }
    }

    /// The executor (wave/eviction accounting).
    pub fn spark(&self) -> &SimSpark {
        &self.spark
    }

    /// The backing store.
    pub fn store(&self) -> &Arc<dyn DataStore> {
        &self.store
    }
}

impl KmeansBackend for SparkKmeans {
    fn name(&self) -> String {
        format!("spark/{}", self.store.name())
    }

    fn load_points(&mut self, points: &[Vec<f64>]) -> Result<()> {
        self.dims_hint = points.first().map(|p| p.len()).unwrap_or(0);
        for p in points {
            let mut bytes = Vec::with_capacity(p.encoded_len());
            p.encode(&mut bytes);
            self.store.append("points", &bytes)?;
        }
        self.store.seal("points")?;
        self.spark.cache_rdd("points")
    }

    fn init_norms(&mut self) -> Result<()> {
        let mut norm_records: Vec<Vec<u8>> = Vec::new();
        self.spark.map_partitions("points", |rec| {
            let p = <Vec<f64> as Record>::decode(rec)?;
            let mut with_norm = Vec::with_capacity(p.len() + 1);
            with_norm.push(squared_norm(&p));
            with_norm.extend_from_slice(&p);
            let mut bytes = Vec::with_capacity(with_norm.encoded_len());
            with_norm.encode(&mut bytes);
            norm_records.push(bytes);
            Ok(())
        })?;
        self.spark
            .materialize_rdd("points_norms", norm_records.into_iter())
    }

    fn for_each_norm(&mut self, f: &mut dyn FnMut(&[f64]) -> Result<()>) -> Result<()> {
        self.spark.map_partitions("points_norms", |rec| {
            let v = <Vec<f64> as Record>::decode(rec)?;
            f(&v)
        })
    }

    fn aggregate_pass(
        &mut self,
        dims: usize,
        assign: &dyn Fn(&[f64]) -> u32,
    ) -> Result<Vec<(u32, Vec<f64>)>> {
        // Execution-pool reservation for the aggregation hash state; may
        // evict cached partitions (unified memory manager).
        let reservation = (64 * (dims + 2) * 8).max(4096);
        self.spark.reserve_execution(reservation)?;
        let mut totals: FxHashMap<u32, Vec<f64>> = FxHashMap::default();
        let result = self.spark.map_partitions("points_norms", |rec| {
            let v = <Vec<f64> as Record>::decode(rec)?;
            let cluster = assign(&v);
            let entry = totals.entry(cluster).or_insert_with(|| vec![0.0; dims + 1]);
            for (a, b) in entry[..dims].iter_mut().zip(&v[1..]) {
                *a += b;
            }
            entry[dims] += 1.0;
            Ok(())
        });
        self.spark.release_execution(reservation);
        result?;
        let mut out: Vec<(u32, Vec<f64>)> = totals.into_iter().collect();
        out.sort_by_key(|(c, _)| *c);
        Ok(out)
    }

    fn mem_bytes(&self) -> u64 {
        self.spark.mem_bytes() + self.store.mem_bytes()
    }

    fn cleanup(&mut self) -> Result<()> {
        self.spark.uncache("points_norms");
        self.spark.uncache("points");
        self.store.delete("points")?;
        Ok(())
    }
}
