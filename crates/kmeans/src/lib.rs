//! # pangea-kmeans
//!
//! The paper's k-means workload (Fig. 1, §9.1.1): the storage benchmark
//! behind Fig. 3 (latency) and Fig. 4 (memory usage).
//!
//! The dataflow follows Fig. 1:
//!
//! 1. **User data** — the input points, persistent (`write-through` on
//!    Pangea; a dataset in HDFS/Alluxio/Ignite under Spark);
//! 2. **Initialization** — one pass computes per-point norms and samples
//!    initial centroids; points-with-norms is **job data** (`write-back`
//!    locality set on Pangea; a materialized RDD under Spark);
//! 3. **Iterative training loop** — each iteration assigns every point
//!    to its nearest centroid via the norm shortcut
//!    `‖x−c‖² = ‖x‖² − 2·x·c + ‖c‖²` and hash-aggregates per-cluster
//!    sums (**hash data**; the virtual hash buffer on Pangea).
//!
//! Both backends run identical arithmetic on identical points, so their
//! final centroids must match exactly — the tests use this as a
//! cross-backend oracle.

pub mod pangea_backend;
pub mod spark_backend;

pub use pangea_backend::PangeaKmeans;
pub use spark_backend::SparkKmeans;

use pangea_common::Result;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// Workload parameters (the paper: 1–3 billion 10-d points, five
/// iterations; benches scale the point count per DESIGN.md §2).
#[derive(Debug, Clone)]
pub struct KmeansConfig {
    /// Number of points.
    pub points: usize,
    /// Dimensions per point (the paper uses 10).
    pub dims: usize,
    /// Number of clusters.
    pub k: usize,
    /// Training iterations after initialization (the paper runs 5).
    pub iterations: usize,
    /// Generator seed.
    pub seed: u64,
}

impl KmeansConfig {
    /// A workload of `points` 10-d points, k = 8, 5 iterations.
    pub fn new(points: usize) -> Self {
        Self {
            points,
            dims: 10,
            k: 8,
            iterations: 5,
            seed: 7,
        }
    }

    /// Overrides the iteration count.
    pub fn with_iterations(mut self, n: usize) -> Self {
        self.iterations = n;
        self
    }
}

/// Deterministically generates input points around `k` well-spread
/// hidden centers.
pub fn generate_points(cfg: &KmeansConfig) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let centers: Vec<Vec<f64>> = (0..cfg.k)
        .map(|c| {
            (0..cfg.dims)
                .map(|d| ((c * 37 + d * 11) % 100) as f64)
                .collect()
        })
        .collect();
    (0..cfg.points)
        .map(|i| {
            let c = &centers[i % cfg.k];
            c.iter().map(|&x| x + rng.random_range(-3.0..3.0)).collect()
        })
        .collect()
}

/// Timing + memory outcome of one run (a Fig. 3 / Fig. 4 row).
#[derive(Debug, Clone)]
pub struct KmeansOutcome {
    /// Backend label.
    pub system: String,
    /// Final centroids.
    pub centroids: Vec<Vec<f64>>,
    /// Initialization (load + norms + sampling) wall time.
    pub init_time: Duration,
    /// Per-iteration wall times.
    pub iter_times: Vec<Duration>,
    /// Peak RAM observed across the run (all layers).
    pub peak_mem_bytes: u64,
}

impl KmeansOutcome {
    /// Total wall time.
    pub fn total_time(&self) -> Duration {
        self.init_time + self.iter_times.iter().sum::<Duration>()
    }

    /// Mean per-iteration time.
    pub fn avg_iter_time(&self) -> Duration {
        if self.iter_times.is_empty() {
            Duration::ZERO
        } else {
            self.iter_times.iter().sum::<Duration>() / self.iter_times.len() as u32
        }
    }
}

/// A storage backend the k-means driver runs against.
///
/// Norm records are `[‖x‖², x₀ … x_{d−1}]`; `aggregate_pass` must, for
/// every norm record, route `[x₀ … x_{d−1}, 1]` to the cluster returned
/// by `assign(record)` with element-wise-sum merging, and return the
/// merged totals.
pub trait KmeansBackend {
    /// Label for benchmark output.
    fn name(&self) -> String;
    /// Stores the input points (user data).
    fn load_points(&mut self, points: &[Vec<f64>]) -> Result<()>;
    /// One pass over the points producing the norms job dataset.
    fn init_norms(&mut self) -> Result<()>;
    /// Streams every norm record (diagnostics / tests).
    fn for_each_norm(&mut self, f: &mut dyn FnMut(&[f64]) -> Result<()>) -> Result<()>;
    /// One assign + hash-aggregate pass (see trait docs).
    fn aggregate_pass(
        &mut self,
        dims: usize,
        assign: &dyn Fn(&[f64]) -> u32,
    ) -> Result<Vec<(u32, Vec<f64>)>>;
    /// Current RAM bytes across the backend's layers.
    fn mem_bytes(&self) -> u64;
    /// Releases transient data.
    fn cleanup(&mut self) -> Result<()>;
}

pub(crate) fn squared_norm(p: &[f64]) -> f64 {
    p.iter().map(|x| x * x).sum()
}

fn nearest(centroids: &[Vec<f64>], cnorms: &[f64], point: &[f64], pnorm: f64) -> u32 {
    let mut best = 0u32;
    let mut best_d = f64::INFINITY;
    for (c, (centroid, &cn)) in centroids.iter().zip(cnorms).enumerate() {
        let dot: f64 = centroid.iter().zip(point).map(|(a, b)| a * b).sum();
        let d = pnorm - 2.0 * dot + cn;
        if d < best_d {
            best_d = d;
            best = c as u32;
        }
    }
    best
}

/// Runs the full workload (Fig. 1 dataflow) against a backend.
pub fn run_kmeans(backend: &mut dyn KmeansBackend, cfg: &KmeansConfig) -> Result<KmeansOutcome> {
    let points = generate_points(cfg);
    let mut peak = 0u64;

    let t0 = Instant::now();
    backend.load_points(&points)?;
    backend.init_norms()?;
    // Initial centroids: the first k points (deterministic sampling).
    let mut centroids: Vec<Vec<f64>> = points.iter().take(cfg.k).cloned().collect();
    let init_time = t0.elapsed();
    peak = peak.max(backend.mem_bytes());

    let mut iter_times = Vec::with_capacity(cfg.iterations);
    for _ in 0..cfg.iterations {
        let t = Instant::now();
        let cnorms: Vec<f64> = centroids.iter().map(|c| squared_norm(c)).collect();
        let assign = |rec: &[f64]| -> u32 {
            let (norm, coords) = rec.split_first().expect("non-empty norm record");
            nearest(&centroids, &cnorms, coords, *norm)
        };
        let totals = backend.aggregate_pass(cfg.dims, &assign)?;
        centroids = new_centroids(&totals, cfg);
        iter_times.push(t.elapsed());
        peak = peak.max(backend.mem_bytes());
    }
    let system = backend.name();
    backend.cleanup()?;
    Ok(KmeansOutcome {
        system,
        centroids,
        init_time,
        iter_times,
        peak_mem_bytes: peak,
    })
}

fn new_centroids(totals: &[(u32, Vec<f64>)], cfg: &KmeansConfig) -> Vec<Vec<f64>> {
    let mut out = vec![vec![0.0; cfg.dims]; cfg.k];
    for (cluster, sums) in totals {
        let count = sums[cfg.dims];
        if count > 0.0 {
            out[*cluster as usize] = sums[..cfg.dims].iter().map(|s| s / count).collect();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pangea_layered::{SimAlluxio, SimHdfs, SimIgnite};
    use std::path::PathBuf;
    use std::sync::Arc;

    fn dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "pangea-kmeans-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn small_cfg() -> KmeansConfig {
        KmeansConfig {
            points: 400,
            dims: 4,
            k: 3,
            iterations: 3,
            seed: 7,
        }
    }

    #[test]
    fn points_are_deterministic() {
        let cfg = small_cfg();
        let a = generate_points(&cfg);
        let b = generate_points(&cfg);
        assert_eq!(a, b);
        assert_eq!(a.len(), 400);
        assert_eq!(a[0].len(), 4);
    }

    #[test]
    fn pangea_and_spark_backends_agree_exactly() {
        let cfg = small_cfg();
        let mut pangea =
            PangeaKmeans::new(&dir("agree-p"), 4 * pangea_common::MB, "data-aware").unwrap();
        let pangea_out = run_kmeans(&mut pangea, &cfg).unwrap();
        let hdfs = Arc::new(SimHdfs::new(&dir("agree-s"), 1, 64 * 1024).unwrap());
        let mut spark = SparkKmeans::new(hdfs, 8 * pangea_common::MB);
        let spark_out = run_kmeans(&mut spark, &cfg).unwrap();
        assert_eq!(pangea_out.centroids, spark_out.centroids);
        assert!(pangea_out
            .centroids
            .iter()
            .any(|c| c.iter().any(|&x| x != 0.0)));
    }

    #[test]
    fn all_spark_stores_agree() {
        let cfg = small_cfg();
        let hdfs = Arc::new(SimHdfs::new(&dir("st-h"), 1, 64 * 1024).unwrap());
        let alluxio = Arc::new(SimAlluxio::new(32 * pangea_common::MB as u64));
        let ignite = Arc::new(SimIgnite::new(32 * pangea_common::MB as u64));
        let mut outs = Vec::new();
        for store in [
            Arc::clone(&hdfs) as Arc<dyn pangea_layered::DataStore>,
            alluxio,
            ignite,
        ] {
            let mut spark = SparkKmeans::new(store, 8 * pangea_common::MB);
            outs.push(run_kmeans(&mut spark, &cfg).unwrap());
        }
        assert_eq!(outs[0].centroids, outs[1].centroids);
        assert_eq!(outs[1].centroids, outs[2].centroids);
    }

    #[test]
    fn pangea_handles_memory_pressure_by_spilling() {
        // Pool far smaller than the working set: must page, not fail.
        let cfg = KmeansConfig {
            points: 3000,
            dims: 8,
            k: 4,
            iterations: 2,
            seed: 1,
        };
        let mut pangea =
            PangeaKmeans::new(&dir("pressure"), 96 * pangea_common::KB, "data-aware").unwrap();
        let out = run_kmeans(&mut pangea, &cfg).unwrap();
        assert!(
            pangea.node().disk_stats().snapshot().pages_flushed > 0,
            "working set exceeded the pool; spills expected"
        );
        assert_eq!(out.centroids.len(), 4);
    }

    #[test]
    fn dbmin_adaptive_blocks_like_fig3() {
        // DBMIN-adaptive blocks when the desired locality-set sizes
        // exceed memory — the paper's "failed cases shown as gaps".
        let cfg = KmeansConfig {
            points: 3000,
            dims: 8,
            k: 4,
            iterations: 1,
            seed: 1,
        };
        let mut pangea =
            PangeaKmeans::new(&dir("dbmin"), 96 * pangea_common::KB, "dbmin-adaptive").unwrap();
        let r = run_kmeans(&mut pangea, &cfg);
        match r {
            Err(e) => assert!(e.is_reported_as_gap(), "unexpected error: {e}"),
            Ok(_) => panic!("DBMIN-adaptive must block under pressure"),
        }
    }

    #[test]
    fn spark_over_small_alluxio_fails_as_gap() {
        let cfg = KmeansConfig {
            points: 5000,
            dims: 8,
            k: 4,
            iterations: 1,
            seed: 1,
        };
        let alluxio = Arc::new(SimAlluxio::new(64 * pangea_common::KB as u64));
        let mut spark = SparkKmeans::new(alluxio, 8 * pangea_common::MB);
        let err = run_kmeans(&mut spark, &cfg).unwrap_err();
        assert!(err.is_reported_as_gap());
    }
}
