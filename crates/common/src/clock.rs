//! The logical access clock driving the paging cost model.
//!
//! The paper's data-aware eviction (§6) estimates the reuse probability of a
//! page from λ = 1/(t_now − t_ref), where ticks advance on every page
//! access. Using a logical counter rather than wall time makes the policy —
//! and therefore every paging test in this repository — fully deterministic.

use std::sync::atomic::{AtomicU64, Ordering};

/// A point on the logical access timeline.
pub type Tick = u64;

/// A monotonically increasing logical clock shared by one storage node.
///
/// Every page access (pin, read, write) bumps the clock by one tick. The
/// paging system reads the current tick to compute time-since-last-reference
/// for its λ estimate.
#[derive(Debug, Default)]
pub struct AccessClock {
    now: AtomicU64,
}

impl AccessClock {
    /// Creates a clock starting at tick 0.
    pub const fn new() -> Self {
        Self {
            now: AtomicU64::new(0),
        }
    }

    /// Advances the clock by one tick and returns the *new* tick value.
    ///
    /// The returned value is unique across concurrent callers, so it can be
    /// used directly as an access-recency stamp.
    #[inline]
    pub fn advance(&self) -> Tick {
        self.now.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Returns the current tick without advancing.
    #[inline]
    pub fn now(&self) -> Tick {
        self.now.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn advance_is_monotonic_and_unique() {
        let c = AccessClock::new();
        assert_eq!(c.now(), 0);
        let a = c.advance();
        let b = c.advance();
        assert_eq!(a, 1);
        assert_eq!(b, 2);
        assert_eq!(c.now(), 2);
    }

    #[test]
    fn concurrent_advances_never_collide() {
        let clock = Arc::new(AccessClock::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = Arc::clone(&clock);
            handles.push(std::thread::spawn(move || {
                (0..1000).map(|_| c.advance()).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<Tick> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 8 * 1000, "ticks must be unique");
        assert_eq!(clock.now(), 8 * 1000);
    }
}
