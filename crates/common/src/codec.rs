//! Length-prefixed record codec.
//!
//! Two roles:
//!
//! 1. **Pangea page layout** — pages written by the sequential-write service
//!    contain a stream of length-prefixed records; the object iterator of the
//!    sequential-read service parses them back (paper §8).
//! 2. **Layer-boundary cost model** — the layered baselines must pay real
//!    serialization and copy costs at every layer crossing (paper §1,
//!    "Interfacing Overhead"). They do that by encoding/decoding through this
//!    codec, so the overhead is executed, not estimated.
//!
//! The format is deliberately simple: a `u32` little-endian length followed
//! by the payload bytes. Records are self-framing so a page can be scanned
//! without an index.

use crate::error::{PangeaError, Result};

/// Types that can be written into Pangea pages and read back.
///
/// Implementations should be cheap; the hot paths encode directly into page
/// memory without intermediate buffers where possible.
pub trait Record: Sized {
    /// Appends this record's payload bytes to `out` (no length prefix).
    fn encode(&self, out: &mut Vec<u8>);

    /// Decodes a record from its payload bytes.
    fn decode(bytes: &[u8]) -> Result<Self>;

    /// Encoded payload size, used for capacity planning. Implementations
    /// must return exactly the number of bytes `encode` appends.
    fn encoded_len(&self) -> usize;
}

impl Record for Vec<u8> {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self);
    }

    fn decode(bytes: &[u8]) -> Result<Self> {
        Ok(bytes.to_vec())
    }

    fn encoded_len(&self) -> usize {
        self.len()
    }
}

impl Record for String {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self.as_bytes());
    }

    fn decode(bytes: &[u8]) -> Result<Self> {
        String::from_utf8(bytes.to_vec())
            .map_err(|e| PangeaError::Corruption(format!("invalid utf-8 record: {e}")))
    }

    fn encoded_len(&self) -> usize {
        self.len()
    }
}

impl Record for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    fn decode(bytes: &[u8]) -> Result<Self> {
        let arr: [u8; 8] = bytes
            .try_into()
            .map_err(|_| PangeaError::Corruption("u64 record with wrong length".into()))?;
        Ok(u64::from_le_bytes(arr))
    }

    fn encoded_len(&self) -> usize {
        8
    }
}

impl Record for i64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    fn decode(bytes: &[u8]) -> Result<Self> {
        let arr: [u8; 8] = bytes
            .try_into()
            .map_err(|_| PangeaError::Corruption("i64 record with wrong length".into()))?;
        Ok(i64::from_le_bytes(arr))
    }

    fn encoded_len(&self) -> usize {
        8
    }
}

impl Record for Vec<f64> {
    fn encode(&self, out: &mut Vec<u8>) {
        for v in self {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }

    fn decode(bytes: &[u8]) -> Result<Self> {
        if !bytes.len().is_multiple_of(8) {
            return Err(PangeaError::Corruption(
                "f64 vector record not a multiple of 8 bytes".into(),
            ));
        }
        Ok(bytes
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    fn encoded_len(&self) -> usize {
        self.len() * 8
    }
}

/// Encodes one record with its length prefix into a fresh buffer.
pub fn encode_record<R: Record>(r: &R) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + r.encoded_len());
    out.extend_from_slice(&(r.encoded_len() as u32).to_le_bytes());
    r.encode(&mut out);
    out
}

/// Decodes one length-prefixed record from the front of `bytes`, returning
/// the record and the number of bytes consumed.
pub fn decode_record<R: Record>(bytes: &[u8]) -> Result<(R, usize)> {
    let mut reader = ByteReader::new(bytes);
    let r = reader.read_record()?;
    Ok((r, reader.position()))
}

/// Sequentially writes length-prefixed records into a byte buffer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a writer with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Appends one length-prefixed record.
    pub fn write_record<R: Record>(&mut self, r: &R) {
        self.buf
            .extend_from_slice(&(r.encoded_len() as u32).to_le_bytes());
        r.encode(&mut self.buf);
    }

    /// Appends raw bytes with a length prefix.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.buf
            .extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(bytes);
    }

    /// Current encoded length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Borrows the encoded bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }
}

/// Sequentially reads length-prefixed records from a byte slice.
#[derive(Debug)]
pub struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Wraps a byte slice for reading.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Bytes consumed so far.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// True when all records have been read.
    pub fn is_exhausted(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    /// Reads the next record's payload without copying.
    pub fn read_bytes(&mut self) -> Result<&'a [u8]> {
        if self.pos + 4 > self.bytes.len() {
            return Err(PangeaError::Corruption(
                "truncated record length prefix".into(),
            ));
        }
        let len =
            u32::from_le_bytes(self.bytes[self.pos..self.pos + 4].try_into().unwrap()) as usize;
        let start = self.pos + 4;
        let end = start + len;
        if end > self.bytes.len() {
            return Err(PangeaError::Corruption(format!(
                "record of {len} B overruns buffer of {} B",
                self.bytes.len()
            )));
        }
        self.pos = end;
        Ok(&self.bytes[start..end])
    }

    /// Reads and decodes the next record.
    pub fn read_record<R: Record>(&mut self) -> Result<R> {
        let payload = self.read_bytes()?;
        R::decode(payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_mixed_records() {
        let mut w = ByteWriter::new();
        w.write_record(&"hello".to_string());
        w.write_record(&42u64);
        w.write_record(&vec![1.0f64, 2.5, -3.25]);
        let buf = w.into_bytes();

        let mut r = ByteReader::new(&buf);
        assert_eq!(r.read_record::<String>().unwrap(), "hello");
        assert_eq!(r.read_record::<u64>().unwrap(), 42);
        assert_eq!(r.read_record::<Vec<f64>>().unwrap(), vec![1.0, 2.5, -3.25]);
        assert!(r.is_exhausted());
    }

    #[test]
    fn truncated_prefix_is_an_error() {
        let buf = [5u8, 0, 0]; // only 3 of 4 length bytes
        let mut r = ByteReader::new(&buf);
        assert!(matches!(r.read_bytes(), Err(PangeaError::Corruption(_))));
    }

    #[test]
    fn overrunning_payload_is_an_error() {
        let mut buf = (10u32).to_le_bytes().to_vec();
        buf.extend_from_slice(b"short"); // claims 10, provides 5
        let mut r = ByteReader::new(&buf);
        assert!(matches!(r.read_bytes(), Err(PangeaError::Corruption(_))));
    }

    #[test]
    fn empty_record_roundtrips() {
        let enc = encode_record(&Vec::<u8>::new());
        let (dec, used) = decode_record::<Vec<u8>>(&enc).unwrap();
        assert!(dec.is_empty());
        assert_eq!(used, 4);
    }

    #[test]
    fn wrong_width_u64_rejected() {
        let mut w = ByteWriter::new();
        w.write_bytes(&[1, 2, 3]); // 3 bytes, not 8
        let buf = w.into_bytes();
        let mut r = ByteReader::new(&buf);
        assert!(r.read_record::<u64>().is_err());
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut w = ByteWriter::new();
        w.write_bytes(&[0xff, 0xfe]);
        let buf = w.into_bytes();
        let mut r = ByteReader::new(&buf);
        assert!(r.read_record::<String>().is_err());
    }

    #[test]
    fn encoded_len_contract_holds() {
        let s = "abcdef".to_string();
        let mut out = Vec::new();
        s.encode(&mut out);
        assert_eq!(out.len(), s.encoded_len());
        let v = vec![0.5f64; 7];
        let mut out = Vec::new();
        v.encode(&mut out);
        assert_eq!(out.len(), v.encoded_len());
    }
}
