//! Token-bucket byte-rate throttling.
//!
//! The paper's experiments ran on AWS SSDs whose bandwidth bounds every
//! paging and persistence result. We reproduce bandwidth-bound behaviour on
//! arbitrary host hardware by routing every simulated-disk and network byte
//! through a [`Throttle`]: a token bucket refilled at a configured rate.
//! Benchmarks enable throttling so wall-clock shapes track I/O volume;
//! unit tests construct unlimited throttles so they stay fast.

use parking_lot::Mutex;
use std::time::{Duration, Instant};

/// Maximum burst the bucket may accumulate, as a multiple of 10 ms of rate.
/// A small burst keeps latencies smooth without letting a long idle period
/// grant a huge free transfer.
const BURST_WINDOW: Duration = Duration::from_millis(10);

#[derive(Debug)]
struct Bucket {
    tokens: f64,
    last_refill: Instant,
}

/// A byte-rate limiter. `None` rate means unlimited.
#[derive(Debug)]
pub struct Throttle {
    /// Bytes per second, or `None` for unlimited.
    rate: Option<f64>,
    bucket: Mutex<Bucket>,
}

impl Throttle {
    /// A throttle that never blocks. Used by unit tests and by in-memory
    /// paths that the paper treats as free.
    pub fn unlimited() -> Self {
        Self {
            rate: None,
            bucket: Mutex::new(Bucket {
                tokens: 0.0,
                last_refill: Instant::now(),
            }),
        }
    }

    /// A throttle limited to `bytes_per_sec`.
    ///
    /// # Panics
    /// Panics if `bytes_per_sec` is zero.
    pub fn bytes_per_sec(bytes_per_sec: u64) -> Self {
        assert!(bytes_per_sec > 0, "throttle rate must be positive");
        Self {
            rate: Some(bytes_per_sec as f64),
            bucket: Mutex::new(Bucket {
                tokens: 0.0,
                last_refill: Instant::now(),
            }),
        }
    }

    /// Returns the configured rate, if any.
    pub fn rate(&self) -> Option<u64> {
        self.rate.map(|r| r as u64)
    }

    /// Consumes `n` bytes of budget, sleeping as needed to respect the rate.
    ///
    /// Unlimited throttles return immediately.
    pub fn consume(&self, n: usize) {
        let Some(rate) = self.rate else { return };
        if n == 0 {
            return;
        }
        let burst = rate * BURST_WINDOW.as_secs_f64();
        let mut need = n as f64;
        loop {
            let wait = {
                let mut b = self.bucket.lock();
                let now = Instant::now();
                let elapsed = now.duration_since(b.last_refill).as_secs_f64();
                b.tokens = (b.tokens + elapsed * rate).min(burst.max(need.min(burst)));
                b.last_refill = now;
                if b.tokens >= need {
                    b.tokens -= need;
                    return;
                }
                // Drain what we have and compute how long the rest takes.
                need -= b.tokens;
                b.tokens = 0.0;
                Duration::from_secs_f64(need / rate)
            };
            // Sleep outside the lock so concurrent users make progress.
            std::thread::sleep(wait.min(Duration::from_millis(50)));
        }
    }

    /// Computes the transfer time `n` bytes would take at the configured
    /// rate without sleeping (used to report modelled time in benches).
    pub fn model_duration(&self, n: usize) -> Duration {
        match self.rate {
            None => Duration::ZERO,
            Some(r) => Duration::from_secs_f64(n as f64 / r),
        }
    }
}

impl Default for Throttle {
    fn default() -> Self {
        Self::unlimited()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_blocks() {
        let t = Throttle::unlimited();
        let start = Instant::now();
        t.consume(usize::MAX / 2);
        assert!(start.elapsed() < Duration::from_millis(50));
        assert_eq!(t.rate(), None);
    }

    #[test]
    fn limited_rate_enforced_within_tolerance() {
        // 10 MB/s, move 2 MB => ~200 ms.
        let t = Throttle::bytes_per_sec(10 * 1024 * 1024);
        let start = Instant::now();
        for _ in 0..8 {
            t.consume(256 * 1024);
        }
        let elapsed = start.elapsed();
        assert!(
            elapsed >= Duration::from_millis(120),
            "too fast: {elapsed:?}"
        );
        assert!(elapsed < Duration::from_secs(2), "too slow: {elapsed:?}");
    }

    #[test]
    fn zero_bytes_is_free() {
        let t = Throttle::bytes_per_sec(1); // 1 B/s: anything nonzero stalls
        let start = Instant::now();
        t.consume(0);
        assert!(start.elapsed() < Duration::from_millis(50));
    }

    #[test]
    fn model_duration_matches_rate() {
        let t = Throttle::bytes_per_sec(1_000_000);
        assert_eq!(t.model_duration(500_000), Duration::from_millis(500));
        assert_eq!(Throttle::unlimited().model_duration(123), Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        let _ = Throttle::bytes_per_sec(0);
    }
}
