//! Byte-size constants and formatting helpers.

/// One kibibyte.
pub const KB: usize = 1024;
/// One mebibyte.
pub const MB: usize = 1024 * KB;
/// One gibibyte.
pub const GB: usize = 1024 * MB;

/// Formats a byte count with a binary unit suffix (`"1.50 MB"`).
pub fn fmt_bytes(bytes: usize) -> String {
    const UNITS: [&str; 4] = ["B", "KB", "MB", "GB"];
    let mut v = bytes as f64;
    let mut unit = 0;
    while v >= 1024.0 && unit < UNITS.len() - 1 {
        v /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{v:.2} {}", UNITS[unit])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_powers_of_1024() {
        assert_eq!(MB, 1024 * 1024);
        assert_eq!(GB, 1024 * MB);
    }

    #[test]
    fn formats_each_magnitude() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(1536), "1.50 KB");
        assert_eq!(fmt_bytes(3 * MB / 2), "1.50 MB");
        assert_eq!(fmt_bytes(2 * GB), "2.00 GB");
    }
}
