//! The workspace-wide error type.

use crate::ids::{Epoch, NodeId, PageId, SetId};
use std::fmt;
use std::io;
use std::sync::Arc;

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, PangeaError>;

/// Errors produced anywhere in the Pangea reproduction.
///
/// Several variants intentionally model *paper-observable failures* — e.g.
/// [`PangeaError::DbminBlocked`] reproduces DBMIN refusing admission when the
/// total desired locality-set size exceeds memory (Fig. 3 "failed cases shown
/// as gaps"), and [`PangeaError::SystemFailure`] reproduces hard baseline
/// failures such as Ignite's segmentation fault at 2 billion points.
#[derive(Debug, Clone)]
pub enum PangeaError {
    /// An underlying file-system operation failed.
    Io(Arc<io::Error>),
    /// The referenced locality set does not exist in the catalog.
    SetNotFound(SetId),
    /// The referenced page does not exist (neither buffered nor on disk).
    PageNotFound(PageId),
    /// The buffer pool cannot satisfy an allocation even after eviction:
    /// every remaining page is pinned.
    OutOfMemory {
        /// Bytes that were requested.
        requested: usize,
        /// Total pool capacity in bytes.
        capacity: usize,
        /// Bytes currently pinned and therefore unevictable.
        pinned: usize,
    },
    /// DBMIN admission control blocked the request because the sum of the
    /// desired locality-set sizes exceeds the available buffer pool.
    DbminBlocked {
        /// Sum of desired sizes, in pages (normalized to bytes).
        desired_bytes: usize,
        /// Available pool bytes.
        available_bytes: usize,
    },
    /// A baseline system failed hard (e.g. Ignite segfault, Redis OOM);
    /// reported as a failure row in benchmark output, matching the paper's
    /// "failed cases shown as gaps".
    SystemFailure(String),
    /// Cluster bootstrap was attempted with an invalid key (paper §3.3:
    /// "A non-valid key will cause the whole system to terminate").
    AuthenticationFailed,
    /// A wire peer failed (or skipped) the shared-secret handshake and
    /// was rejected before any request was served.
    Unauthenticated(String),
    /// The server is at its connection cap and refused the connection
    /// before serving any request. Typed so callers can back off and
    /// redial instead of parsing error prose.
    Busy(String),
    /// A membership operation carried an out-of-date registration epoch —
    /// the sender is a stale incarnation of a node slot that has since
    /// been replaced (or swept dead) by the manager.
    StaleEpoch {
        /// The node slot the operation addressed.
        node: NodeId,
        /// The epoch the sender holds.
        held: Epoch,
        /// The slot's current epoch at the manager.
        current: Epoch,
    },
    /// The referenced node is not part of the cluster or has failed.
    NodeUnavailable(NodeId),
    /// More nodes failed concurrently than the replication scheme tolerates.
    UnrecoverableFailure(String),
    /// Persistent data failed an integrity check when read back.
    Corruption(String),
    /// A remote node reported a failure over the wire protocol. The
    /// original error kind does not survive the trip; the message does.
    /// (Kinds clients dispatch on — [`PangeaError::Unauthenticated`],
    /// [`PangeaError::StaleEpoch`], [`PangeaError::ScanTooLarge`] —
    /// travel typed instead.)
    Remote(String),
    /// A one-shot scan reply would exceed the wire frame budget; read
    /// the set page-by-page through `FetchPage` instead. Typed so
    /// remote readers can fall back without parsing error prose.
    ScanTooLarge {
        /// The set whose scan was refused.
        set: String,
        /// The per-reply byte budget that would have been exceeded.
        budget: u64,
    },
    /// A declarative wire form was required but the value is backed by
    /// an in-process closure (a UDF) that cannot cross the wire — e.g. a
    /// `PartitionScheme::hash` scheme handed to a distributed
    /// map-shuffle, which ships the task to every worker. Typed so
    /// callers can fall back to the driver-routed path (or rebuild the
    /// scheme with `hash_field`/`hash_whole`) without parsing prose.
    NotWireSafe(String),
    /// An API was used incorrectly (e.g. writing to a read-configured set).
    InvalidUsage(String),
    /// Invalid configuration (page size 0, no disks, ...).
    InvalidConfig(String),
}

impl PangeaError {
    /// Builds an [`PangeaError::InvalidUsage`] from anything displayable.
    pub fn usage(msg: impl fmt::Display) -> Self {
        Self::InvalidUsage(msg.to_string())
    }

    /// Builds an [`PangeaError::InvalidConfig`] from anything displayable.
    pub fn config(msg: impl fmt::Display) -> Self {
        Self::InvalidConfig(msg.to_string())
    }

    /// True when the error models a *system-level* failure that the paper
    /// plots as a gap (DBMIN blocking, baseline crash, OOM).
    pub fn is_reported_as_gap(&self) -> bool {
        matches!(
            self,
            Self::DbminBlocked { .. } | Self::SystemFailure(_) | Self::OutOfMemory { .. }
        )
    }
}

impl fmt::Display for PangeaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "I/O error: {e}"),
            Self::SetNotFound(s) => write!(f, "locality set {s} not found"),
            Self::PageNotFound(p) => write!(f, "page {p} not found"),
            Self::OutOfMemory {
                requested,
                capacity,
                pinned,
            } => write!(
                f,
                "buffer pool out of memory: requested {requested} B, \
                 capacity {capacity} B, {pinned} B pinned"
            ),
            Self::DbminBlocked {
                desired_bytes,
                available_bytes,
            } => write!(
                f,
                "DBMIN blocked: desired locality-set total {desired_bytes} B \
                 exceeds available {available_bytes} B"
            ),
            Self::SystemFailure(m) => write!(f, "system failure: {m}"),
            Self::AuthenticationFailed => write!(f, "invalid key pair; system terminated"),
            Self::Unauthenticated(m) => write!(f, "unauthenticated peer rejected: {m}"),
            Self::Busy(m) => write!(f, "server busy: {m}"),
            Self::StaleEpoch {
                node,
                held,
                current,
            } => write!(
                f,
                "stale epoch for {node}: sender holds {held}, manager is at {current}"
            ),
            Self::NodeUnavailable(n) => write!(f, "{n} is unavailable"),
            Self::UnrecoverableFailure(m) => write!(f, "unrecoverable failure: {m}"),
            Self::Corruption(m) => write!(f, "data corruption: {m}"),
            Self::Remote(m) => write!(f, "remote node error: {m}"),
            Self::ScanTooLarge { set, budget } => write!(
                f,
                "scan of '{set}' exceeds {budget} B in one reply; \
                 page through FetchPage instead"
            ),
            Self::NotWireSafe(m) => write!(f, "not wire-safe: {m}"),
            Self::InvalidUsage(m) => write!(f, "invalid usage: {m}"),
            Self::InvalidConfig(m) => write!(f, "invalid configuration: {m}"),
        }
    }
}

impl std::error::Error for PangeaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e.as_ref()),
            _ => None,
        }
    }
}

impl From<io::Error> for PangeaError {
    fn from(e: io::Error) -> Self {
        Self::Io(Arc::new(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_errors_convert_and_chain() {
        let e: PangeaError = io::Error::new(io::ErrorKind::NotFound, "gone").into();
        assert!(e.to_string().contains("gone"));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn gap_classification_matches_paper_failures() {
        assert!(PangeaError::DbminBlocked {
            desired_bytes: 10,
            available_bytes: 5
        }
        .is_reported_as_gap());
        assert!(PangeaError::SystemFailure("ignite segfault".into()).is_reported_as_gap());
        assert!(!PangeaError::SetNotFound(SetId(1)).is_reported_as_gap());
    }

    #[test]
    fn display_is_human_readable() {
        let msg = PangeaError::OutOfMemory {
            requested: 4096,
            capacity: 8192,
            pinned: 8192,
        }
        .to_string();
        assert!(msg.contains("4096"));
        assert!(msg.contains("pinned"));
    }
}
