//! A fast, non-cryptographic hasher for hot internal hash maps.
//!
//! The performance guide recommends replacing SipHash for hot paths where
//! HashDoS is not a concern. `rustc-hash` is not on the sanctioned dependency
//! list, so this is a self-contained implementation of the same FxHash
//! algorithm (multiply-xor over machine words, as used by rustc and Firefox).

use std::hash::{BuildHasherDefault, Hasher};

/// Seed constant: 2^64 / golden ratio, the classic Fibonacci-hashing
/// multiplier.
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash hasher state.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
            // Length-tag the tail so "a" and "a\0" differ.
            self.add_to_hash(rem.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// Hashes a byte slice to a `u64` in one call.
///
/// This is the hash used for shuffle partitioning and for the in-page hash
/// tables of the hash service.
#[inline]
pub fn fx_hash64(bytes: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_inputs_hash_equal() {
        assert_eq!(fx_hash64(b"lineitem"), fx_hash64(b"lineitem"));
    }

    #[test]
    fn different_inputs_hash_differently() {
        // Not guaranteed in general, but these must differ for a sane hash.
        assert_ne!(fx_hash64(b"a"), fx_hash64(b"b"));
        assert_ne!(fx_hash64(b"a"), fx_hash64(b"a\0"));
        assert_ne!(fx_hash64(b""), fx_hash64(b"\0"));
    }

    #[test]
    fn tail_handling_covers_every_remainder_length() {
        let base: Vec<u8> = (0u8..32).collect();
        let mut seen = std::collections::HashSet::new();
        for len in 0..=16 {
            assert!(
                seen.insert(fx_hash64(&base[..len])),
                "collision at len {len}"
            );
        }
    }

    #[test]
    fn distribution_is_not_degenerate() {
        // Hash 10_000 distinct keys into 64 buckets; every bucket should
        // receive something and no bucket should hold more than 5x its share.
        let mut buckets = [0u32; 64];
        for i in 0..10_000u64 {
            let h = fx_hash64(&i.to_le_bytes());
            buckets[(h % 64) as usize] += 1;
        }
        let expected = 10_000 / 64;
        for (i, &b) in buckets.iter().enumerate() {
            assert!(b > 0, "bucket {i} empty");
            assert!(b < expected * 5, "bucket {i} overloaded: {b}");
        }
    }
}
