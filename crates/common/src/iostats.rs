//! I/O statistics counters.
//!
//! Every disk, buffer pool, and network path in the workspace feeds these
//! counters. The paper's analysis repeatedly argues from I/O *volume* (e.g.
//! "the average size of data written to disk by page-out operations is
//! 5074.2 MB (2.5× of Pangea)", §9.2.1); the benches report the same volumes
//! from these counters so the shape of each comparison is auditable even on
//! hardware whose raw speeds differ from the paper's testbed.

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared, thread-safe counters for one subsystem (a disk manager, a buffer
/// pool, a simulated network, ...).
#[derive(Debug, Default)]
pub struct IoStats {
    disk_reads: AtomicU64,
    disk_read_bytes: AtomicU64,
    disk_writes: AtomicU64,
    disk_write_bytes: AtomicU64,
    pages_evicted: AtomicU64,
    pages_flushed: AtomicU64,
    net_messages: AtomicU64,
    net_bytes: AtomicU64,
    serializations: AtomicU64,
    serialized_bytes: AtomicU64,
    copies: AtomicU64,
    copied_bytes: AtomicU64,
    repairs: AtomicU64,
    repair_bytes: AtomicU64,
    shuffles: AtomicU64,
    shuffle_bytes: AtomicU64,
}

impl IoStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one disk read of `bytes`.
    #[inline]
    pub fn record_disk_read(&self, bytes: usize) {
        self.disk_reads.fetch_add(1, Ordering::Relaxed);
        self.disk_read_bytes
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Records one disk write of `bytes`.
    #[inline]
    pub fn record_disk_write(&self, bytes: usize) {
        self.disk_writes.fetch_add(1, Ordering::Relaxed);
        self.disk_write_bytes
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Records one page eviction from a buffer pool.
    #[inline]
    pub fn record_eviction(&self) {
        self.pages_evicted.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one dirty-page flush.
    #[inline]
    pub fn record_flush(&self) {
        self.pages_flushed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one network message of `bytes`.
    #[inline]
    pub fn record_net(&self, bytes: usize) {
        self.net_messages.fetch_add(1, Ordering::Relaxed);
        self.net_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Records one (de)serialization pass over `bytes` — the "interfacing
    /// overhead" the paper charges layered systems for.
    #[inline]
    pub fn record_serialization(&self, bytes: usize) {
        self.serializations.fetch_add(1, Ordering::Relaxed);
        self.serialized_bytes
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Records one buffer-to-buffer copy of `bytes` (client↔server, layer
    /// crossings).
    #[inline]
    pub fn record_copy(&self, bytes: usize) {
        self.copies.fetch_add(1, Ordering::Relaxed);
        self.copied_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Records one peer-repair transfer of `bytes` — payload moved
    /// directly between workers during replica recovery, attributed
    /// separately from ordinary dispatch traffic so a recovery run can
    /// prove its data flowed worker→worker rather than through the
    /// driver (which records `net` bytes, never `repair` bytes).
    #[inline]
    pub fn record_repair(&self, bytes: usize) {
        self.repairs.fetch_add(1, Ordering::Relaxed);
        self.repair_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Records one map-shuffle transfer of `bytes` — payload a mapper
    /// streamed directly to a destination worker during a distributed
    /// map-shuffle, attributed separately from dispatch traffic so a
    /// shuffle run can prove its data flowed worker→worker rather than
    /// through the driver (the driver records `net` bytes, never
    /// `shuffle` bytes — mirroring [`IoStats::record_repair`]).
    #[inline]
    pub fn record_shuffle(&self, bytes: usize) {
        self.shuffles.fetch_add(1, Ordering::Relaxed);
        self.shuffle_bytes
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Takes a consistent-enough snapshot for reporting.
    pub fn snapshot(&self) -> IoStatsSnapshot {
        IoStatsSnapshot {
            disk_reads: self.disk_reads.load(Ordering::Relaxed),
            disk_read_bytes: self.disk_read_bytes.load(Ordering::Relaxed),
            disk_writes: self.disk_writes.load(Ordering::Relaxed),
            disk_write_bytes: self.disk_write_bytes.load(Ordering::Relaxed),
            pages_evicted: self.pages_evicted.load(Ordering::Relaxed),
            pages_flushed: self.pages_flushed.load(Ordering::Relaxed),
            net_messages: self.net_messages.load(Ordering::Relaxed),
            net_bytes: self.net_bytes.load(Ordering::Relaxed),
            serializations: self.serializations.load(Ordering::Relaxed),
            serialized_bytes: self.serialized_bytes.load(Ordering::Relaxed),
            copies: self.copies.load(Ordering::Relaxed),
            copied_bytes: self.copied_bytes.load(Ordering::Relaxed),
            repairs: self.repairs.load(Ordering::Relaxed),
            repair_bytes: self.repair_bytes.load(Ordering::Relaxed),
            shuffles: self.shuffles.load(Ordering::Relaxed),
            shuffle_bytes: self.shuffle_bytes.load(Ordering::Relaxed),
        }
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        self.disk_reads.store(0, Ordering::Relaxed);
        self.disk_read_bytes.store(0, Ordering::Relaxed);
        self.disk_writes.store(0, Ordering::Relaxed);
        self.disk_write_bytes.store(0, Ordering::Relaxed);
        self.pages_evicted.store(0, Ordering::Relaxed);
        self.pages_flushed.store(0, Ordering::Relaxed);
        self.net_messages.store(0, Ordering::Relaxed);
        self.net_bytes.store(0, Ordering::Relaxed);
        self.serializations.store(0, Ordering::Relaxed);
        self.serialized_bytes.store(0, Ordering::Relaxed);
        self.copies.store(0, Ordering::Relaxed);
        self.copied_bytes.store(0, Ordering::Relaxed);
        self.repairs.store(0, Ordering::Relaxed);
        self.repair_bytes.store(0, Ordering::Relaxed);
        self.shuffles.store(0, Ordering::Relaxed);
        self.shuffle_bytes.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of [`IoStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStatsSnapshot {
    /// Number of disk read operations.
    pub disk_reads: u64,
    /// Total bytes read from disk.
    pub disk_read_bytes: u64,
    /// Number of disk write operations.
    pub disk_writes: u64,
    /// Total bytes written to disk.
    pub disk_write_bytes: u64,
    /// Pages evicted from a buffer pool.
    pub pages_evicted: u64,
    /// Dirty pages flushed.
    pub pages_flushed: u64,
    /// Network messages sent.
    pub net_messages: u64,
    /// Network bytes sent.
    pub net_bytes: u64,
    /// Serialization/deserialization passes.
    pub serializations: u64,
    /// Bytes passed through (de)serialization.
    pub serialized_bytes: u64,
    /// Buffer-to-buffer copies.
    pub copies: u64,
    /// Bytes copied between buffers.
    pub copied_bytes: u64,
    /// Peer-repair transfers (worker→worker recovery pushes).
    pub repairs: u64,
    /// Payload bytes moved worker→worker during replica recovery.
    pub repair_bytes: u64,
    /// Map-shuffle transfers (worker→worker shuffle pushes).
    pub shuffles: u64,
    /// Payload bytes moved worker→worker during distributed map-shuffle.
    pub shuffle_bytes: u64,
}

impl IoStatsSnapshot {
    /// Component-wise difference `self - earlier`; saturates at zero.
    pub fn delta_since(&self, earlier: &IoStatsSnapshot) -> IoStatsSnapshot {
        IoStatsSnapshot {
            disk_reads: self.disk_reads.saturating_sub(earlier.disk_reads),
            disk_read_bytes: self.disk_read_bytes.saturating_sub(earlier.disk_read_bytes),
            disk_writes: self.disk_writes.saturating_sub(earlier.disk_writes),
            disk_write_bytes: self
                .disk_write_bytes
                .saturating_sub(earlier.disk_write_bytes),
            pages_evicted: self.pages_evicted.saturating_sub(earlier.pages_evicted),
            pages_flushed: self.pages_flushed.saturating_sub(earlier.pages_flushed),
            net_messages: self.net_messages.saturating_sub(earlier.net_messages),
            net_bytes: self.net_bytes.saturating_sub(earlier.net_bytes),
            serializations: self.serializations.saturating_sub(earlier.serializations),
            serialized_bytes: self
                .serialized_bytes
                .saturating_sub(earlier.serialized_bytes),
            copies: self.copies.saturating_sub(earlier.copies),
            copied_bytes: self.copied_bytes.saturating_sub(earlier.copied_bytes),
            repairs: self.repairs.saturating_sub(earlier.repairs),
            repair_bytes: self.repair_bytes.saturating_sub(earlier.repair_bytes),
            shuffles: self.shuffles.saturating_sub(earlier.shuffles),
            shuffle_bytes: self.shuffle_bytes.saturating_sub(earlier.shuffle_bytes),
        }
    }

    /// Total bytes that touched a disk in either direction.
    pub fn disk_bytes_total(&self) -> u64 {
        self.disk_read_bytes + self.disk_write_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = IoStats::new();
        s.record_disk_read(100);
        s.record_disk_read(50);
        s.record_disk_write(10);
        s.record_eviction();
        s.record_flush();
        s.record_net(7);
        s.record_serialization(32);
        s.record_copy(64);
        s.record_repair(48);
        s.record_shuffle(24);
        let snap = s.snapshot();
        assert_eq!(snap.disk_reads, 2);
        assert_eq!(snap.disk_read_bytes, 150);
        assert_eq!(snap.disk_writes, 1);
        assert_eq!(snap.disk_write_bytes, 10);
        assert_eq!(snap.pages_evicted, 1);
        assert_eq!(snap.pages_flushed, 1);
        assert_eq!(snap.net_messages, 1);
        assert_eq!(snap.net_bytes, 7);
        assert_eq!(snap.serialized_bytes, 32);
        assert_eq!(snap.copied_bytes, 64);
        assert_eq!(snap.repairs, 1);
        assert_eq!(snap.repair_bytes, 48);
        assert_eq!(snap.shuffles, 1);
        assert_eq!(snap.shuffle_bytes, 24);
        assert_eq!(snap.disk_bytes_total(), 160);
    }

    #[test]
    fn delta_and_reset() {
        let s = IoStats::new();
        s.record_disk_write(10);
        let a = s.snapshot();
        s.record_disk_write(30);
        let b = s.snapshot();
        let d = b.delta_since(&a);
        assert_eq!(d.disk_writes, 1);
        assert_eq!(d.disk_write_bytes, 30);
        s.reset();
        assert_eq!(s.snapshot(), IoStatsSnapshot::default());
    }
}
