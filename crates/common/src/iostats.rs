//! I/O statistics counters.
//!
//! Every disk, buffer pool, and network path in the workspace feeds these
//! counters. The paper's analysis repeatedly argues from I/O *volume* (e.g.
//! "the average size of data written to disk by page-out operations is
//! 5074.2 MB (2.5× of Pangea)", §9.2.1); the benches report the same volumes
//! from these counters so the shape of each comparison is auditable even on
//! hardware whose raw speeds differ from the paper's testbed.
//!
//! Since the observability PR, [`IoStats`] is a *view* over a
//! [`pangea_obs::Registry`]: every counter is registered under an
//! `io.`-prefixed name, so a `MetricsDump` of the owning process reports
//! the same numbers these typed accessors do. The typed API (and its
//! exact byte accounting, which the SimNetwork parity and remote
//! payload-delta tests assert on) is unchanged.

use pangea_obs::{names, Counter, Registry};
use std::sync::Arc;

/// Shared, thread-safe counters for one subsystem (a disk manager, a buffer
/// pool, a simulated network, ...), backed by named registry counters.
#[derive(Debug)]
pub struct IoStats {
    registry: Arc<Registry>,
    disk_reads: Counter,
    disk_read_bytes: Counter,
    disk_writes: Counter,
    disk_write_bytes: Counter,
    pages_evicted: Counter,
    pages_flushed: Counter,
    net_messages: Counter,
    net_bytes: Counter,
    serializations: Counter,
    serialized_bytes: Counter,
    copies: Counter,
    copied_bytes: Counter,
    repairs: Counter,
    repair_bytes: Counter,
    shuffles: Counter,
    shuffle_map_bytes: Counter,
    shuffle_reduce_bytes: Counter,
}

impl Default for IoStats {
    fn default() -> Self {
        Self::new()
    }
}

impl IoStats {
    /// Creates zeroed counters over a fresh registry.
    pub fn new() -> Self {
        Self::with_registry(Arc::new(Registry::new()))
    }

    /// Creates the `io.*` counter views over an existing registry, so a
    /// process's RPC metrics and its I/O volumes share one
    /// `MetricsDump`.
    pub fn with_registry(registry: Arc<Registry>) -> Self {
        Self {
            disk_reads: registry.counter(names::IO_DISK_READS),
            disk_read_bytes: registry.counter(names::IO_DISK_READ_BYTES),
            disk_writes: registry.counter(names::IO_DISK_WRITES),
            disk_write_bytes: registry.counter(names::IO_DISK_WRITE_BYTES),
            pages_evicted: registry.counter(names::IO_PAGES_EVICTED),
            pages_flushed: registry.counter(names::IO_PAGES_FLUSHED),
            net_messages: registry.counter(names::IO_NET_MESSAGES),
            net_bytes: registry.counter(names::IO_NET_BYTES),
            serializations: registry.counter(names::IO_SERIALIZATIONS),
            serialized_bytes: registry.counter(names::IO_SERIALIZED_BYTES),
            copies: registry.counter(names::IO_COPIES),
            copied_bytes: registry.counter(names::IO_COPIED_BYTES),
            repairs: registry.counter(names::IO_REPAIRS),
            repair_bytes: registry.counter(names::IO_REPAIR_BYTES),
            shuffles: registry.counter(names::IO_SHUFFLES),
            shuffle_map_bytes: registry.counter(names::IO_SHUFFLE_BYTES_MAP),
            shuffle_reduce_bytes: registry.counter(names::IO_SHUFFLE_BYTES_REDUCE),
            registry,
        }
    }

    /// The registry these counters are registered in — the seam the
    /// daemons use to put RPC metrics and I/O volumes in one dump.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Records one disk read of `bytes`.
    #[inline]
    pub fn record_disk_read(&self, bytes: usize) {
        self.disk_reads.inc();
        self.disk_read_bytes.add(bytes as u64);
    }

    /// Records one disk write of `bytes`.
    #[inline]
    pub fn record_disk_write(&self, bytes: usize) {
        self.disk_writes.inc();
        self.disk_write_bytes.add(bytes as u64);
    }

    /// Records one page eviction from a buffer pool.
    #[inline]
    pub fn record_eviction(&self) {
        self.pages_evicted.inc();
    }

    /// Records one dirty-page flush.
    #[inline]
    pub fn record_flush(&self) {
        self.pages_flushed.inc();
    }

    /// Records one network message of `bytes`.
    #[inline]
    pub fn record_net(&self, bytes: usize) {
        self.net_messages.inc();
        self.net_bytes.add(bytes as u64);
    }

    /// Records one (de)serialization pass over `bytes` — the "interfacing
    /// overhead" the paper charges layered systems for.
    #[inline]
    pub fn record_serialization(&self, bytes: usize) {
        self.serializations.inc();
        self.serialized_bytes.add(bytes as u64);
    }

    /// Records one buffer-to-buffer copy of `bytes` (client↔server, layer
    /// crossings).
    #[inline]
    pub fn record_copy(&self, bytes: usize) {
        self.copies.inc();
        self.copied_bytes.add(bytes as u64);
    }

    /// Records one peer-repair transfer of `bytes` — payload moved
    /// directly between workers during replica recovery, attributed
    /// separately from ordinary dispatch traffic so a recovery run can
    /// prove its data flowed worker→worker rather than through the
    /// driver (which records `net` bytes, never `repair` bytes).
    #[inline]
    pub fn record_repair(&self, bytes: usize) {
        self.repairs.inc();
        self.repair_bytes.add(bytes as u64);
    }

    /// Records one map-shuffle transfer of `bytes` — payload a mapper
    /// streamed directly to a destination worker during a distributed
    /// map-shuffle, attributed separately from dispatch traffic so a
    /// shuffle run can prove its data flowed worker→worker rather than
    /// through the driver (the driver records `net` bytes, never
    /// `shuffle` bytes — mirroring [`IoStats::record_repair`]). This is
    /// the map-mode label; reducing sessions use
    /// [`IoStats::record_shuffle_reduce`].
    #[inline]
    pub fn record_shuffle(&self, bytes: usize) {
        self.shuffles.inc();
        self.shuffle_map_bytes.add(bytes as u64);
    }

    /// Records one *reducing* shuffle transfer of `bytes`: payload that
    /// flowed into a combine/reduce ingest session rather than a plain
    /// map-only append. Totals still land in
    /// [`IoStatsSnapshot::shuffle_bytes`]; the map/reduce split is the
    /// `io.shuffle_bytes.{map,reduce}` label pair.
    #[inline]
    pub fn record_shuffle_reduce(&self, bytes: usize) {
        self.shuffles.inc();
        self.shuffle_reduce_bytes.add(bytes as u64);
    }

    /// Takes a consistent-enough snapshot for reporting.
    pub fn snapshot(&self) -> IoStatsSnapshot {
        let shuffle_map_bytes = self.shuffle_map_bytes.get();
        let shuffle_reduce_bytes = self.shuffle_reduce_bytes.get();
        IoStatsSnapshot {
            disk_reads: self.disk_reads.get(),
            disk_read_bytes: self.disk_read_bytes.get(),
            disk_writes: self.disk_writes.get(),
            disk_write_bytes: self.disk_write_bytes.get(),
            pages_evicted: self.pages_evicted.get(),
            pages_flushed: self.pages_flushed.get(),
            net_messages: self.net_messages.get(),
            net_bytes: self.net_bytes.get(),
            serializations: self.serializations.get(),
            serialized_bytes: self.serialized_bytes.get(),
            copies: self.copies.get(),
            copied_bytes: self.copied_bytes.get(),
            repairs: self.repairs.get(),
            repair_bytes: self.repair_bytes.get(),
            shuffles: self.shuffles.get(),
            shuffle_bytes: shuffle_map_bytes + shuffle_reduce_bytes,
            shuffle_map_bytes,
            shuffle_reduce_bytes,
        }
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        self.disk_reads.set(0);
        self.disk_read_bytes.set(0);
        self.disk_writes.set(0);
        self.disk_write_bytes.set(0);
        self.pages_evicted.set(0);
        self.pages_flushed.set(0);
        self.net_messages.set(0);
        self.net_bytes.set(0);
        self.serializations.set(0);
        self.serialized_bytes.set(0);
        self.copies.set(0);
        self.copied_bytes.set(0);
        self.repairs.set(0);
        self.repair_bytes.set(0);
        self.shuffles.set(0);
        self.shuffle_map_bytes.set(0);
        self.shuffle_reduce_bytes.set(0);
    }
}

/// A point-in-time copy of [`IoStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStatsSnapshot {
    /// Number of disk read operations.
    pub disk_reads: u64,
    /// Total bytes read from disk.
    pub disk_read_bytes: u64,
    /// Number of disk write operations.
    pub disk_writes: u64,
    /// Total bytes written to disk.
    pub disk_write_bytes: u64,
    /// Pages evicted from a buffer pool.
    pub pages_evicted: u64,
    /// Dirty pages flushed.
    pub pages_flushed: u64,
    /// Network messages sent.
    pub net_messages: u64,
    /// Network bytes sent.
    pub net_bytes: u64,
    /// Serialization/deserialization passes.
    pub serializations: u64,
    /// Bytes passed through (de)serialization.
    pub serialized_bytes: u64,
    /// Buffer-to-buffer copies.
    pub copies: u64,
    /// Bytes copied between buffers.
    pub copied_bytes: u64,
    /// Peer-repair transfers (worker→worker recovery pushes).
    pub repairs: u64,
    /// Payload bytes moved worker→worker during replica recovery.
    pub repair_bytes: u64,
    /// Map-shuffle transfers (worker→worker shuffle pushes).
    pub shuffles: u64,
    /// Payload bytes moved worker→worker during distributed map-shuffle
    /// (both modes; always `shuffle_map_bytes + shuffle_reduce_bytes`).
    pub shuffle_bytes: u64,
    /// Shuffle payload delivered to map-only (plain append) sessions.
    pub shuffle_map_bytes: u64,
    /// Shuffle payload delivered to combining/reducing sessions.
    pub shuffle_reduce_bytes: u64,
}

impl IoStatsSnapshot {
    /// Component-wise difference `self - earlier`; saturates at zero.
    pub fn delta_since(&self, earlier: &IoStatsSnapshot) -> IoStatsSnapshot {
        IoStatsSnapshot {
            disk_reads: self.disk_reads.saturating_sub(earlier.disk_reads),
            disk_read_bytes: self.disk_read_bytes.saturating_sub(earlier.disk_read_bytes),
            disk_writes: self.disk_writes.saturating_sub(earlier.disk_writes),
            disk_write_bytes: self
                .disk_write_bytes
                .saturating_sub(earlier.disk_write_bytes),
            pages_evicted: self.pages_evicted.saturating_sub(earlier.pages_evicted),
            pages_flushed: self.pages_flushed.saturating_sub(earlier.pages_flushed),
            net_messages: self.net_messages.saturating_sub(earlier.net_messages),
            net_bytes: self.net_bytes.saturating_sub(earlier.net_bytes),
            serializations: self.serializations.saturating_sub(earlier.serializations),
            serialized_bytes: self
                .serialized_bytes
                .saturating_sub(earlier.serialized_bytes),
            copies: self.copies.saturating_sub(earlier.copies),
            copied_bytes: self.copied_bytes.saturating_sub(earlier.copied_bytes),
            repairs: self.repairs.saturating_sub(earlier.repairs),
            repair_bytes: self.repair_bytes.saturating_sub(earlier.repair_bytes),
            shuffles: self.shuffles.saturating_sub(earlier.shuffles),
            shuffle_bytes: self.shuffle_bytes.saturating_sub(earlier.shuffle_bytes),
            shuffle_map_bytes: self
                .shuffle_map_bytes
                .saturating_sub(earlier.shuffle_map_bytes),
            shuffle_reduce_bytes: self
                .shuffle_reduce_bytes
                .saturating_sub(earlier.shuffle_reduce_bytes),
        }
    }

    /// Total bytes that touched a disk in either direction.
    pub fn disk_bytes_total(&self) -> u64 {
        self.disk_read_bytes + self.disk_write_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = IoStats::new();
        s.record_disk_read(100);
        s.record_disk_read(50);
        s.record_disk_write(10);
        s.record_eviction();
        s.record_flush();
        s.record_net(7);
        s.record_serialization(32);
        s.record_copy(64);
        s.record_repair(48);
        s.record_shuffle(24);
        let snap = s.snapshot();
        assert_eq!(snap.disk_reads, 2);
        assert_eq!(snap.disk_read_bytes, 150);
        assert_eq!(snap.disk_writes, 1);
        assert_eq!(snap.disk_write_bytes, 10);
        assert_eq!(snap.pages_evicted, 1);
        assert_eq!(snap.pages_flushed, 1);
        assert_eq!(snap.net_messages, 1);
        assert_eq!(snap.net_bytes, 7);
        assert_eq!(snap.serialized_bytes, 32);
        assert_eq!(snap.copied_bytes, 64);
        assert_eq!(snap.repairs, 1);
        assert_eq!(snap.repair_bytes, 48);
        assert_eq!(snap.shuffles, 1);
        assert_eq!(snap.shuffle_bytes, 24);
        assert_eq!(snap.disk_bytes_total(), 160);
    }

    #[test]
    fn delta_and_reset() {
        let s = IoStats::new();
        s.record_disk_write(10);
        let a = s.snapshot();
        s.record_disk_write(30);
        let b = s.snapshot();
        let d = b.delta_since(&a);
        assert_eq!(d.disk_writes, 1);
        assert_eq!(d.disk_write_bytes, 30);
        s.reset();
        assert_eq!(s.snapshot(), IoStatsSnapshot::default());
    }

    #[test]
    fn shuffle_modes_split_but_total_holds() {
        let s = IoStats::new();
        s.record_shuffle(100);
        s.record_shuffle_reduce(40);
        let snap = s.snapshot();
        assert_eq!(snap.shuffles, 2);
        assert_eq!(snap.shuffle_map_bytes, 100);
        assert_eq!(snap.shuffle_reduce_bytes, 40);
        assert_eq!(snap.shuffle_bytes, 140);
    }

    #[test]
    fn io_counters_are_visible_through_the_registry() {
        let s = IoStats::new();
        s.record_net(9);
        let snap = s.registry().snapshot();
        let net = snap
            .iter()
            .find(|m| m.name == "io.net_bytes")
            .expect("io.net_bytes registered");
        assert_eq!(net.value, pangea_obs::MetricValue::Counter(9));
    }
}
