//! Strongly-typed identifiers used across the workspace.
//!
//! Each identifier is a thin newtype over an integer so that, for example, a
//! [`SetId`] can never be passed where a [`NodeId`] is expected. All of them
//! are `Copy` and hash with the fast [`crate::FxHasher`].

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $inner:ty, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub $inner);

        impl $name {
            /// Returns the raw integer value.
            #[inline]
            pub const fn raw(self) -> $inner {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$inner> for $name {
            fn from(v: $inner) -> Self {
                Self(v)
            }
        }
    };
}

id_type!(
    /// Identifies a locality set (one dataset managed uniformly; paper §3.2).
    SetId, u64, "set#"
);
id_type!(
    /// Identifies a worker node in the (simulated) cluster.
    NodeId, u32, "node#"
);
id_type!(
    /// Identifies a shuffle / hash partition.
    PartitionId, u32, "part#"
);
id_type!(
    /// Identifies a replication group: the collection of locality sets that
    /// hold the same objects under different physical organizations (§7).
    ReplicaGroupId, u64, "rg#"
);
id_type!(
    /// A worker's registration incarnation with the cluster manager
    /// (paper §3.3). Every (re-)registration of a node slot gets a fresh,
    /// strictly larger epoch, so a zombie worker that missed its own
    /// replacement can be told apart from the current incarnation: its
    /// heartbeats carry a stale epoch and are rejected.
    Epoch, u64, "epoch#"
);

/// The ordinal of a page within its locality set on one node.
pub type PageNum = u64;

/// Globally identifies a page: the locality set it belongs to plus its
/// ordinal within that set.
///
/// Pages are the unit of buffering, eviction and file I/O. All pages of one
/// locality set share a size (paper §3.2), but different sets may use
/// different page sizes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageId {
    /// The owning locality set.
    pub set: SetId,
    /// Page ordinal within the set (0-based, dense).
    pub num: PageNum,
}

impl PageId {
    /// Creates a page id from a set and page ordinal.
    #[inline]
    pub const fn new(set: SetId, num: PageNum) -> Self {
        Self { set, num }
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/p{}", self.set, self.num)
    }
}

impl fmt::Debug for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FxHashMap;

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(SetId(3).to_string(), "set#3");
        assert_eq!(NodeId(1).to_string(), "node#1");
        assert_eq!(PartitionId(9).to_string(), "part#9");
        assert_eq!(PageId::new(SetId(2), 7).to_string(), "set#2/p7");
    }

    #[test]
    fn ids_roundtrip_raw() {
        assert_eq!(SetId::from(42).raw(), 42);
        assert_eq!(NodeId::from(7).raw(), 7);
    }

    #[test]
    fn page_ids_are_ordered_within_set_first() {
        let a = PageId::new(SetId(1), 9);
        let b = PageId::new(SetId(2), 0);
        assert!(a < b, "ordering must be by set id first");
        let c = PageId::new(SetId(1), 10);
        assert!(a < c, "then by page number");
    }

    #[test]
    fn page_ids_usable_as_map_keys() {
        let mut m: FxHashMap<PageId, u32> = FxHashMap::default();
        m.insert(PageId::new(SetId(1), 0), 10);
        m.insert(PageId::new(SetId(1), 1), 11);
        assert_eq!(m[&PageId::new(SetId(1), 1)], 11);
    }
}
