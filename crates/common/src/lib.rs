//! # pangea-common
//!
//! Shared foundations for the Pangea reproduction: identifiers, the error
//! type, a fast non-cryptographic hasher, the logical access clock used by
//! the paging cost model, byte-rate throttles that stand in for real disk
//! and network bandwidth limits, I/O statistics counters, and the record
//! codec that models (de)serialization work at layer boundaries.
//!
//! Every other crate in the workspace depends on this one; it has no
//! dependencies on the rest of the workspace.

pub mod clock;
pub mod codec;
pub mod error;
pub mod hash;
pub mod ids;
pub mod iostats;
pub mod throttle;
pub mod units;

pub use clock::{AccessClock, Tick};
pub use codec::{decode_record, encode_record, ByteReader, ByteWriter, Record};
pub use error::{PangeaError, Result};
pub use hash::{fx_hash64, FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use ids::{Epoch, NodeId, PageId, PageNum, PartitionId, ReplicaGroupId, SetId};
pub use iostats::{IoStats, IoStatsSnapshot};
pub use throttle::Throttle;
pub use units::{GB, KB, MB};
